"""Telemetry-overhead gate: the full observability pipeline must stay
cheap enough to leave on in long experiments.

Interleaved best-of-N STREAM runs through the real datapath with the
whole pipeline enabled (metrics registration + snapshot, structured
event log, sim-time profiler at the default stride) versus everything
off. The acceptance budget is <=10% wall-clock overhead in the full
run (smoke runs on shared CI runners get a relaxed bound — they time a
much shorter run, so fixed costs weigh disproportionately).

A second section times the exposition path itself — rendering a
full-testbed registry to Prometheus text and strict-parsing it back —
because a scrape handler that takes longer than a sim quantum would
distort live experiments.

Results merge into ``BENCH_obs.json`` at the repository root so
overhead regressions show up in review diffs, mirroring
``BENCH_kernel.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.mem import MIB
from repro.obs import (
    MetricsRegistry,
    disable_events,
    disable_profiling,
    enable_events,
    enable_profiling,
    parse_prometheus,
    render_prometheus,
)
from repro.osmodel import PagePolicy
from repro.testbed import RemoteBuffer, Testbed

SMOKE = os.environ.get("OBS_PERF_SMOKE", "") not in ("", "0")

#: Results land at the repository root, next to BENCH_kernel.json.
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_obs.json",
)

STREAM_BYTES = (128 * 1024) if SMOKE else MIB
#: Acceptance budget: full telemetry costs <= 10% STREAM wall-clock.
#: The smoke bound is looser because the smoke run is ~8x shorter, so
#: per-run fixed costs (registry build, journal setup) loom larger and
#: shared CI runners add noise.
OVERHEAD_BUDGET = 0.30 if SMOKE else 0.10
PROFILER_STRIDE = 1024  # the documented default


def _merge_results(section: str, payload: dict) -> None:
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    results["smoke"] = SMOKE
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _best_of(runs: int, fn):
    best = float("inf")
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best, result


def _stream_workload() -> Testbed:
    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    buffer = RemoteBuffer.allocate(
        testbed.node0,
        STREAM_BYTES,
        policy=PagePolicy.BIND,
        numa_nodes=[attachment.plan.numa_node_id],
        batched=True,
    )
    blob = bytes(range(256)) * (STREAM_BYTES // 256)
    buffer.write(0, blob)
    assert buffer.read(0, STREAM_BYTES) == blob
    buffer.free()
    return testbed


def _baseline_run() -> dict:
    _stream_workload()
    return {}


def _telemetry_run() -> dict:
    """The whole pipeline, end to end, inside the timed region.

    Matches what ``python -m repro metrics`` does: journal + profiler
    on during the run, then registry registration and a snapshot —
    the scrape a live experiment would serve.
    """
    enable_events()
    enable_profiling(stride=PROFILER_STRIDE)
    try:
        testbed = _stream_workload()
    finally:
        profiler = disable_profiling()
    registry = MetricsRegistry()
    testbed.register_observability(registry)
    series = len(registry.snapshot())
    log = disable_events()
    return {
        "events_logged": log.total,
        "profile_samples": profiler.samples_taken,
        "metrics_series": series,
    }


def test_full_telemetry_overhead_within_budget():
    runs = 3 if SMOKE else 5
    _telemetry_run()  # warm-up (imports, allocator, code paths)
    # Interleave by measuring baseline after telemetry too, so slow
    # machine drift hits both sides.
    telemetry_s, stats = _best_of(runs, _telemetry_run)
    baseline_s, _ = _best_of(runs, _baseline_run)
    overhead = telemetry_s / baseline_s - 1.0
    print(
        f"STREAM {STREAM_BYTES >> 10} KiB x2: {baseline_s:.3f}s off, "
        f"{telemetry_s:.3f}s full telemetry "
        f"({overhead * 100.0:+.1f}% overhead; "
        f"{stats['events_logged']} events, "
        f"{stats['profile_samples']} samples, "
        f"{stats['metrics_series']} series)"
    )
    _merge_results(
        "stream_telemetry_overhead",
        {
            "bytes_each_way": STREAM_BYTES,
            "runs": runs,
            "profiler_stride": PROFILER_STRIDE,
            "baseline_s": round(baseline_s, 4),
            "telemetry_s": round(telemetry_s, 4),
            "overhead": round(overhead, 4),
            "budget": OVERHEAD_BUDGET,
            "events_logged": stats["events_logged"],
            "profile_samples": stats["profile_samples"],
            "metrics_series": stats["metrics_series"],
        },
    )
    assert overhead <= OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead * 100.0:.1f}% exceeds the "
        f"{OVERHEAD_BUDGET * 100.0:.0f}% budget"
    )


def test_exposition_render_and_parse_cost():
    """Scrape cost: render + strict-parse a full-testbed registry."""
    testbed = _stream_workload()
    registry = MetricsRegistry()
    testbed.register_observability(registry)
    reps = 20 if SMOKE else 50

    def scrape():
        for _ in range(reps):
            parse_prometheus(render_prometheus(registry))

    scrape()  # warm-up
    best_s, _ = _best_of(3, scrape)
    per_scrape_ms = best_s / reps * 1e3
    series = len(parse_prometheus(render_prometheus(registry))["samples"])
    print(
        f"exposition round-trip: {per_scrape_ms:.2f} ms/scrape "
        f"({series} series)"
    )
    _merge_results(
        "exposition_round_trip",
        {
            "series": series,
            "reps": reps,
            "per_scrape_ms": round(per_scrape_ms, 3),
            "budget_ms": 250.0,
        },
    )
    # A scrape of a full testbed must stay comfortably interactive.
    assert per_scrape_ms <= 250.0
