"""repro.sweep — parallel experiment engine with a result cache.

The layer every large-scale campaign runs on (see
``docs/performance.md``): describe each run as a declarative, hashable
:class:`RunSpec`; fan independent specs out over worker processes with
:class:`SweepEngine`; and front execution with the content-addressed
:class:`ResultCache` so a configuration is never simulated twice for
the same code. Parallel results are bit-identical to serial ones
(``tests/test_sweep_determinism.py`` enforces this), and warm re-runs
return without simulating at all.

Quick use::

    from repro.sweep import make_spec, SweepEngine

    specs = [make_spec("slice:fig8.config", kind=k, samples=30_000)
             for k in ("local", "scale-out")]
    outcomes = SweepEngine(jobs="auto").run(specs)

Figure regeneration goes through :func:`run_figures` (the
``python -m repro figures --jobs N`` CLI is a thin wrapper over it).
"""

from .bootstrap import (
    derive_seed,
    normalize_jobs,
    pool_initargs,
    pool_worker_init,
    resolve_jobs,
    worker_run_snapshot,
)
from .cache import ResultCache, default_cache_dir
from .engine import SweepEngine, SweepOutcome, resolve_target
from .fingerprint import combine_fingerprints, file_digest, source_fingerprint
from .runner import figure_specs, run_figures
from .spec import RunSpec, make_spec

__all__ = [
    "RunSpec",
    "make_spec",
    "ResultCache",
    "default_cache_dir",
    "SweepEngine",
    "SweepOutcome",
    "normalize_jobs",
    "resolve_jobs",
    "pool_worker_init",
    "pool_initargs",
    "derive_seed",
    "worker_run_snapshot",
    "resolve_target",
    "figure_specs",
    "run_figures",
    "source_fingerprint",
    "file_digest",
    "combine_fingerprints",
]
