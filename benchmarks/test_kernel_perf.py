"""Perf-regression harness: optimized kernel + batched datapath.

Two families of measurements, both persisted to ``BENCH_kernel.json``
at the repository root so regressions are visible in review diffs:

* **Kernel microbenchmarks** — identical workload shapes run on the
  seed engine (kept verbatim in :mod:`baseline_engine`) and on
  :mod:`repro.sim.engine`. The headline shape is the bare-float timer
  loop (the hot path of every serializer/pump in the model); the other
  shapes keep the remaining dispatch paths honest.
* **STREAM wall-clock** — a bulk write+readback through the *real*
  testbed datapath (bus → M1 → RMMU → LLC framing → wire → donor DRAM)
  with batching on vs off. Simulated timestamps are bit-identical
  between the modes (see ``tests/test_bulk_equivalence.py``); this
  benchmark checks the batched mode buys real wall-clock.

Set ``KERNEL_PERF_SMOKE=1`` for a fast CI-sized run with relaxed
thresholds (the full run asserts the ISSUE targets: >=3x kernel,
>=2x STREAM).
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

import baseline_engine
from repro import accel
from repro.mem import MIB
from repro.osmodel import PagePolicy
from repro.sim import engine as fast_engine
from repro.testbed import RemoteBuffer, Testbed

SMOKE = os.environ.get("KERNEL_PERF_SMOKE", "") not in ("", "0")

#: Results land at the repository root, next to ROADMAP.md.
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_kernel.json",
)

# Required speedups (full run = the ISSUE acceptance targets; smoke
# keeps CI honest without being flaky on loaded shared runners).
KERNEL_TARGET = 2.0 if SMOKE else 3.0
STREAM_TARGET = 1.4 if SMOKE else 2.0


def _merge_results(section: str, payload: dict) -> None:
    results = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as handle:
            results = json.load(handle)
    results[section] = payload
    results["smoke"] = SMOKE
    with open(RESULTS_PATH, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _best_of(runs: int, fn):
    """Best-of-N wall-clock (minimum is the least noisy estimator)."""
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


# --------------------------------------------------------------------------
# Kernel microbenchmark shapes. Each returns (workload_fn, event_count)
# for one engine module; the workload is identical model behaviour
# expressed in each kernel's idiom.
# --------------------------------------------------------------------------

PROCS = 16 if SMOKE else 64
ITERS = 500 if SMOKE else 2000


def _timer_loop(module, bare_numbers):
    """P concurrent processes each burning N short timeouts."""
    sim = module.Simulator()

    def ticker():
        if bare_numbers:
            for _ in range(ITERS):
                yield 1e-9
        else:
            for _ in range(ITERS):
                yield sim.timeout(1e-9)

    for _ in range(PROCS):
        sim.process(ticker())
    sim.run()
    return PROCS * ITERS


def _spawn_join(module):
    """Fan-out/fan-in: parents repeatedly spawn and join children."""
    sim = module.Simulator()

    def child():
        yield sim.timeout(1e-9)
        return 1

    def parent():
        total = 0
        for _ in range(ITERS // 2):
            total += yield sim.process(child())
        return total

    for _ in range(PROCS):
        sim.process(parent())
    sim.run()
    return PROCS * (ITERS // 2) * 2


def _signal_pingpong(module):
    """Two processes handing a token back and forth through Signals."""
    sim = module.Simulator()
    pairs = PROCS // 2

    def player(mine, theirs, serve):
        if serve:
            theirs.fire(0)
        for _ in range(ITERS):
            value = yield mine
            theirs.fire(value + 1)

    for pair in range(pairs):
        ping = module.Signal(name=f"ping{pair}")
        pong = module.Signal(name=f"pong{pair}")
        sim.process(player(ping, pong, serve=False))
        sim.process(player(pong, ping, serve=True))
    sim.run()
    return pairs * ITERS * 2


def test_kernel_microbench_speedup():
    shapes = {
        "timer_loop_bare": (
            lambda: _timer_loop(baseline_engine, bare_numbers=False),
            lambda: _timer_loop(fast_engine, bare_numbers=True),
        ),
        "timer_loop_objects": (
            lambda: _timer_loop(baseline_engine, bare_numbers=False),
            lambda: _timer_loop(fast_engine, bare_numbers=False),
        ),
        "spawn_join": (
            lambda: _spawn_join(baseline_engine),
            lambda: _spawn_join(fast_engine),
        ),
        "signal_pingpong": (
            lambda: _signal_pingpong(baseline_engine),
            lambda: _signal_pingpong(fast_engine),
        ),
    }
    runs = 2 if SMOKE else 3
    report = {}
    for name, (run_baseline, run_fast) in shapes.items():
        events = run_fast()  # warm-up + event count
        baseline_s = _best_of(runs, run_baseline)
        optimized_s = _best_of(runs, run_fast)
        report[name] = {
            "events": events,
            "baseline_s": round(baseline_s, 6),
            "optimized_s": round(optimized_s, 6),
            "baseline_events_per_s": round(events / baseline_s),
            "optimized_events_per_s": round(events / optimized_s),
            "speedup": round(baseline_s / optimized_s, 3),
        }
        print(
            f"{name}: {events / baseline_s:,.0f} -> "
            f"{events / optimized_s:,.0f} events/s "
            f"({baseline_s / optimized_s:.2f}x)"
        )
    report["headline"] = report["timer_loop_bare"]["speedup"]
    report["target"] = KERNEL_TARGET
    _merge_results("kernel", report)
    assert report["headline"] >= KERNEL_TARGET, (
        f"kernel fast path {report['headline']:.2f}x < "
        f"{KERNEL_TARGET}x target"
    )
    # The non-headline shapes must at least not regress.
    for name in ("timer_loop_objects", "spawn_join", "signal_pingpong"):
        assert report[name]["speedup"] >= 1.0, (
            f"{name} regressed: {report[name]['speedup']:.2f}x"
        )


# --------------------------------------------------------------------------
# STREAM wall-clock through the full datapath, batched vs unbatched.
# --------------------------------------------------------------------------

STREAM_BYTES = (128 * 1024) if SMOKE else MIB


def _stream_run(batched: bool) -> None:
    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    buffer = RemoteBuffer.allocate(
        testbed.node0,
        STREAM_BYTES,
        policy=PagePolicy.BIND,
        numa_nodes=[attachment.plan.numa_node_id],
        batched=batched,
    )
    blob = bytes(range(256)) * (STREAM_BYTES // 256)
    buffer.write(0, blob)
    assert buffer.read(0, STREAM_BYTES) == blob
    buffer.free()


def test_stream_batching_speedup():
    runs = 2 if SMOKE else 3
    _stream_run(batched=True)  # warm-up
    unbatched_s = _best_of(runs, lambda: _stream_run(batched=False))
    batched_s = _best_of(runs, lambda: _stream_run(batched=True))
    speedup = unbatched_s / batched_s
    print(
        f"STREAM {STREAM_BYTES >> 10} KiB x2 (write+read): "
        f"{unbatched_s:.3f}s unbatched, {batched_s:.3f}s batched "
        f"({speedup:.2f}x)"
    )
    _merge_results(
        "stream",
        {
            "bytes_each_way": STREAM_BYTES,
            "unbatched_s": round(unbatched_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(speedup, 3),
            "target": STREAM_TARGET,
        },
    )
    assert speedup >= STREAM_TARGET, (
        f"bulk batching {speedup:.2f}x < {STREAM_TARGET}x target"
    )


# --------------------------------------------------------------------------
# Accel backend benchmarks: the numpy kernels against the pure-Python
# reference on batch shapes sized like the bulk datapath's, plus an
# honest per-backend wall-clock of the full STREAM datapath.
# --------------------------------------------------------------------------

#: Elements per kernel batch (datapath batches are smaller; this sizes
#: the shapes where vectorization is supposed to pay).
BACKEND_BATCH = 4096 if SMOKE else 16384
#: Kernel invocations per timed run (one call is too short to time).
BACKEND_REPS = 20 if SMOKE else 50
#: numpy must beat the reference by this factor on >= 2 kernel shapes.
BACKEND_KERNEL_TARGET = 1.3 if SMOKE else 2.0
#: Per-backend STREAM regression gate: the numpy backend may not cost
#: more than ~10% wall-clock over the python reference end to end.
BACKEND_STREAM_FLOOR = 0.9


def _require_numpy_backend():
    if "numpy" not in accel.available_backends():
        pytest.skip("numpy backend unavailable")


def _backend_shapes():
    """(name -> kernel invocation) on batch inputs shaped like traffic."""
    rng = random.Random(13)
    sizes = [rng.randrange(64, 2081) for _ in range(BACKEND_BATCH)]
    rate = 9.6969696969e10  # 4x25G after 64B/66B coding
    entries = [
        (1 + 16 * index, (index % 2) + 1, 16)
        for index in range(BACKEND_BATCH // 16)
    ]
    starts = [index * 3.3e-8 for index in range(BACKEND_BATCH)]
    lines = [rng.randrange(1, 64) for _ in range(BACKEND_BATCH)]
    samples = [rng.random() * 1e-6 for _ in range(BACKEND_BATCH)]
    return {
        "serialization_schedule": lambda mod: mod.serialization_schedule(
            1e-3, sizes, rate
        ),
        "frame_digest": lambda mod: mod.frame_digest(7, entries),
        "bank_service_windows": lambda mod: mod.bank_service_windows(
            starts, lines, 16, 85e-9, 1.0e-9
        ),
        "sort_values": lambda mod: mod.sort_values(samples),
    }


def test_backend_kernel_speedup():
    _require_numpy_backend()
    python_mod = accel.get_backend("python")
    numpy_mod = accel.get_backend("numpy")
    runs = 2 if SMOKE else 3
    report = {
        "batch": BACKEND_BATCH,
        "reps": BACKEND_REPS,
        "target": BACKEND_KERNEL_TARGET,
    }
    wins = 0
    for name, shape in _backend_shapes().items():
        # Differential guard first: a fast wrong kernel is worthless.
        assert shape(python_mod) == shape(numpy_mod)
        python_s = _best_of(
            runs,
            lambda shape=shape: [
                shape(python_mod) for _ in range(BACKEND_REPS)
            ],
        )
        numpy_s = _best_of(
            runs,
            lambda shape=shape: [
                shape(numpy_mod) for _ in range(BACKEND_REPS)
            ],
        )
        speedup = python_s / numpy_s
        report[name] = {
            "python_s": round(python_s, 6),
            "numpy_s": round(numpy_s, 6),
            "speedup": round(speedup, 3),
        }
        wins += speedup >= BACKEND_KERNEL_TARGET
        print(
            f"{name} (n={BACKEND_BATCH}): {python_s * 1e3:.2f}ms python, "
            f"{numpy_s * 1e3:.2f}ms numpy ({speedup:.2f}x)"
        )
    report["shapes_at_target"] = int(wins)
    _merge_results("backend_kernels", report)
    assert wins >= 2, (
        f"numpy >= {BACKEND_KERNEL_TARGET}x on only {wins}/4 kernel shapes"
    )


def test_backend_bank_service_windows_never_loses():
    """The numpy backend must never lose to the reference on this kernel.

    ``bank_service_windows`` does one float add and one int min per
    element — cheaper than the list<->array round-trips at any batch
    size — so the numpy backend delegates to the reference outright
    (asserted by identity below). With the code paths identical the
    effective ratio is pinned at 1.0 by construction; the measured
    ratio is still recorded so the artifact would expose a future
    re-vectorization that regresses.
    """
    _require_numpy_backend()
    python_mod = accel.get_backend("python")
    numpy_mod = accel.get_backend("numpy")
    same_path = (
        numpy_mod.bank_service_windows is python_mod.bank_service_windows
    )
    shape = _backend_shapes()["bank_service_windows"]
    assert shape(python_mod) == shape(numpy_mod)
    runs = 2 if SMOKE else 3
    python_s = float("inf")
    numpy_s = float("inf")
    # Interleaved best-of so host drift biases neither side.
    for _ in range(runs):
        python_s = min(python_s, _best_of(1, lambda: [
            shape(python_mod) for _ in range(BACKEND_REPS)
        ]))
        numpy_s = min(numpy_s, _best_of(1, lambda: [
            shape(numpy_mod) for _ in range(BACKEND_REPS)
        ]))
    ratio = python_s / numpy_s
    effective = 1.0 if same_path else ratio
    print(
        f"bank_service_windows (n={BACKEND_BATCH}): "
        f"{python_s * 1e3:.2f}ms python, {numpy_s * 1e3:.2f}ms numpy "
        f"({ratio:.2f}x measured, same_code_path={same_path})"
    )
    _merge_results(
        "backend_bank_service_windows",
        {
            "batch": BACKEND_BATCH,
            "reps": BACKEND_REPS,
            "python_s": round(python_s, 6),
            "numpy_s": round(numpy_s, 6),
            "speedup": round(ratio, 3),
            "same_code_path": same_path,
        },
    )
    assert effective >= 1.0, (
        f"numpy bank_service_windows loses to the reference: "
        f"{ratio:.2f}x < 1.0"
    )


def test_backend_stream_parity():
    """Full-datapath wall-clock per backend, recorded side by side.

    The event loop, not the kernels, dominates STREAM, so numpy is not
    required to win here — it is required not to *lose* more than the
    regression budget, proving vectorization never taxes the real
    datapath.
    """
    _require_numpy_backend()
    runs = 3 if SMOKE else 4
    _stream_run(batched=True)  # warm-up (current backend; shared state)
    python_s = float("inf")
    numpy_s = float("inf")
    # Interleave the two backends' timed runs so slow host drift
    # (thermal, cache, GC growth) biases neither side.
    for _ in range(runs):
        with accel.use_backend("python"):
            python_s = min(python_s, _best_of(1, lambda: _stream_run(True)))
        with accel.use_backend("numpy"):
            numpy_s = min(numpy_s, _best_of(1, lambda: _stream_run(True)))
    ratio = python_s / numpy_s
    print(
        f"STREAM {STREAM_BYTES >> 10} KiB x2 per backend: "
        f"{python_s:.3f}s python, {numpy_s:.3f}s numpy ({ratio:.2f}x)"
    )
    _merge_results(
        "backend_stream",
        {
            "bytes_each_way": STREAM_BYTES,
            "python_s": round(python_s, 4),
            "numpy_s": round(numpy_s, 4),
            "numpy_speedup": round(ratio, 3),
            "floor": BACKEND_STREAM_FLOOR,
        },
    )
    assert ratio >= BACKEND_STREAM_FLOOR, (
        f"numpy backend regressed STREAM: {ratio:.2f}x < "
        f"{BACKEND_STREAM_FLOOR}x of the python backend"
    )
