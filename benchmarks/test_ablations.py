"""Ablation benches for the design choices DESIGN.md calls out.

These drive the *flit-level* simulated datapath (not the analytic
models): real transactions through RMMU → routing → LLC → wire → C1 →
donor DRAM, varying one design parameter at a time:

* LLC frame size (flits/frame) — padding waste vs replay granularity;
* Rx credit depth — backpressure vs in-flight parallelism;
* link loss rate — replay cost on goodput;
* channel bonding — measured bandwidth gain on the real datapath;
* NUMA balancing — average access latency before/after page migration.
"""

import pytest
from conftest import print_table, save_results

from repro.core import LlcConfig
from repro.mem import CACHELINE_BYTES, MIB
from repro.net import FaultInjector
from repro.osmodel import NumaBalancer, PagePolicy
from repro.testbed import Testbed


def _measure_goodput(testbed, window, workers=8, loads_per_worker=48):
    """Closed-loop bandwidth: N workers stream cacheline loads."""
    sim = testbed.sim
    lines_per_worker = loads_per_worker

    def worker(worker_index):
        base = window.start + worker_index * lines_per_worker * CACHELINE_BYTES
        for line in range(lines_per_worker):
            yield testbed.node0.bus.load(
                base + line * CACHELINE_BYTES, CACHELINE_BYTES
            )

    start = sim.now
    procs = [sim.process(worker(i), name=f"w{i}") for i in range(workers)]

    def waiter():
        yield sim.all_of(procs)

    sim.run_process(waiter())
    elapsed = sim.now - start
    total_bytes = workers * loads_per_worker * CACHELINE_BYTES
    return total_bytes / elapsed


def _build(llc_config=None, bonded=False, fault=None):
    injectors = {0: fault} if fault else None
    testbed = Testbed(llc_config=llc_config, fault_injectors=injectors)
    attachment = testbed.attach(
        "node0", 2 * MIB, memory_host="node1", bonded=bonded
    )
    window = testbed.remote_window_range(attachment)
    return testbed, window


class TestLlcAblations:
    def test_ablation_frame_size(self, once):
        def sweep():
            results = {}
            for flits in (5, 16, 32):
                testbed, window = _build(LlcConfig(flits_per_frame=flits))
                results[flits] = _measure_goodput(testbed, window)
            return results

        results = once(sweep)
        print_table(
            "Ablation — LLC frame size",
            ["flits/frame", "goodput (GB/s)"],
            [(k, f"{v / 1e9:.2f}") for k, v in sorted(results.items())],
        )
        save_results("ablation_frame_size",
                     {str(k): v for k, v in results.items()})
        # All frame sizes must deliver working goodput; tiny frames pay
        # per-frame header overhead and cannot beat the default.
        assert all(value > 0.5e9 for value in results.values())
        assert results[5] <= results[16] * 1.05

    def test_ablation_credit_depth(self, once):
        def sweep():
            results = {}
            for slots in (4, 32, 256):
                testbed, window = _build(LlcConfig(rx_queue_slots=slots))
                results[slots] = _measure_goodput(testbed, window)
            return results

        results = once(sweep)
        print_table(
            "Ablation — Rx credit depth",
            ["rx slots", "goodput (GB/s)"],
            [(k, f"{v / 1e9:.2f}") for k, v in sorted(results.items())],
        )
        save_results("ablation_credit_depth",
                     {str(k): v for k, v in results.items()})
        # Starved credits throttle the pipeline: monotone improvement.
        assert results[4] < results[32] <= results[256] * 1.2
        # "The depth of the Rx ingress queues has been carefully
        # calculated to avoid credits starvation" — the default (256)
        # must not be the bottleneck for this worker count.
        assert results[256] == max(results.values())

    def test_ablation_loss_rate(self, once):
        def sweep():
            results = {}
            for loss in (0.0, 0.01, 0.05):
                fault = FaultInjector(drop_probability=loss) if loss else None
                testbed, window = _build(fault=fault)
                goodput = _measure_goodput(testbed, window)
                llc = testbed.node1.device.llcs[0]
                results[loss] = (goodput, llc.replays_served
                                 + testbed.node0.device.llcs[0].replays_served)
            return results

        results = once(sweep)
        print_table(
            "Ablation — link loss rate",
            ["drop prob", "goodput (GB/s)", "frames replayed"],
            [
                (k, f"{v[0] / 1e9:.2f}", v[1])
                for k, v in sorted(results.items())
            ],
        )
        save_results(
            "ablation_loss",
            {str(k): {"goodput": v[0], "replays": v[1]}
             for k, v in results.items()},
        )
        clean_goodput, clean_replays = results[0.0]
        lossy_goodput, lossy_replays = results[0.05]
        assert clean_replays == 0
        assert lossy_replays > 0
        assert lossy_goodput < clean_goodput  # replay costs real time
        assert lossy_goodput > 0.2 * clean_goodput  # ...but recovers

    def test_ablation_bonding_datapath(self, once):
        # Enough outstanding lines (128 workers ≈ 16 KB in flight) that
        # the demand exceeds one channel's ~12 GB/s payload capacity —
        # below that, goodput is latency-bound and bonding cannot help.
        def sweep():
            single_tb, single_win = _build(bonded=False)
            bonded_tb, bonded_win = _build(bonded=True)
            return {
                "single": _measure_goodput(
                    single_tb, single_win, workers=128, loads_per_worker=24
                ),
                "bonded": _measure_goodput(
                    bonded_tb, bonded_win, workers=128, loads_per_worker=24
                ),
            }

        results = once(sweep)
        print_table(
            "Ablation — channel bonding (measured datapath)",
            ["mode", "goodput (GB/s)"],
            [(k, f"{v / 1e9:.2f}") for k, v in results.items()],
        )
        save_results("ablation_bonding", results)
        # Two channels help once one saturates, but never reach 2x
        # (per-transaction endpoint costs are shared) — the same reason
        # the paper measures ~30% rather than 2x for STREAM.
        gain = results["bonded"] / results["single"]
        assert 1.1 <= gain <= 2.0


class TestFutureWorkProjections:
    """§VII extensions the paper proposes: HBM cache, integrated SoC."""

    def test_ablation_hbm_cache(self, once):
        """An HBM layer at the compute endpoint absorbs hot reads."""
        from repro.core import HbmCacheConfig

        def run():
            testbed, window = _build()
            cache = testbed.node0.device.enable_hbm_cache(
                HbmCacheConfig(size_bytes=1 * MIB)
            )
            hot_lines = 16
            # Warm: first pass misses; subsequent passes hit in HBM.
            for _ in range(4):
                for line in range(hot_lines):
                    testbed.node0.run_load(
                        window.start + line * CACHELINE_BYTES
                    )
            recorder = testbed.node0.device.compute.rtt
            return {
                "mean_ns": recorder.mean * 1e9,
                "p50_ns": recorder.percentile(50) * 1e9,
                "hit_ratio": cache.hit_ratio,
                "hits": cache.read_hits,
            }

        results = once(run)
        print_table(
            "Ablation — §VII HBM caching layer (hot 2 KiB working set)",
            ["metric", "value"],
            [
                ("mean read latency", f"{results['mean_ns']:.0f} ns"),
                ("median read latency", f"{results['p50_ns']:.0f} ns"),
                ("HBM hit ratio", f"{results['hit_ratio']:.2f}"),
            ],
        )
        save_results("ablation_hbm", results)
        # 3 of 4 passes hit: median must collapse to HBM latency.
        assert results["hit_ratio"] >= 0.70
        assert results["p50_ns"] < 200  # vs ~1030 ns remote
        assert results["mean_ns"] < 500

    def test_ablation_integrated_soc(self, once):
        """Integrating the design in the SoC saves 4 serdes crossings."""
        from repro.testbed import NodeSpec
        from repro.testbed.calibration import (
            integrated_rtt_budget_s,
            rtt_budget_s,
        )

        def run():
            results = {}
            for label, integrated in (("fpga", False), ("soc", True)):
                testbed = Testbed(spec=NodeSpec(integrated_soc=integrated))
                attachment = testbed.attach(
                    "node0", 2 * MIB, memory_host="node1"
                )
                window = testbed.remote_window_range(attachment)
                # Measure at the *bus* level: the device-internal RTT
                # recorder sits behind the M1 port and would not see the
                # compute-side host serdes this projection removes. The
                # duration is captured inside the process (queue-drain
                # time would include unrelated trailing LLC timers).
                sim = testbed.sim

                def timed_load():
                    start = sim.now
                    yield testbed.node0.bus.load(window.start, 128)
                    return sim.now - start

                samples = 16
                total = sum(
                    sim.run_process(timed_load()) for _ in range(samples)
                )
                results[label] = total / samples
            return results

        results = once(run)
        saved = (results["fpga"] - results["soc"]) * 1e9
        print_table(
            "Ablation — §VII SoC integration (RTT)",
            ["design", "measured RTT (ns)", "static budget (ns)"],
            [
                ("off-chip FPGA", f"{results['fpga'] * 1e9:.0f}",
                 f"{rtt_budget_s() * 1e9:.0f}"),
                ("integrated SoC", f"{results['soc'] * 1e9:.0f}",
                 f"{integrated_rtt_budget_s() * 1e9:.0f}"),
                ("saved", f"{saved:.0f}", "220 (4 serdes)"),
            ],
        )
        save_results(
            "ablation_integrated_soc",
            {k: v * 1e9 for k, v in results.items()},
        )
        # Four host-link serdes crossings ≈ 220 ns per round trip.
        assert saved == pytest.approx(220, abs=30)


class TestNetworkFabricAblation:
    """§VII: circuit-switched vs packet-switched rack fabrics."""

    def test_ablation_circuit_vs_packet(self, once):
        """Unloaded latency favours circuits; packet fabrics trade a
        per-hop forwarding cost for zero reconfiguration."""
        from repro.net import (
            Addressed,
            CircuitSwitch,
            LinkConfig,
            PacketSwitch,
            SerialLink,
        )
        from repro.sim import Simulator

        class _Frame:
            wire_bytes = 512

        def run():
            config = LinkConfig()
            results = {}

            # Circuit: one optical crossing, but 20 µs reconfiguration
            # before the path exists at all.
            sim = Simulator()
            circuit = CircuitSwitch(sim, ports=2, reconfiguration_s=20e-6)
            out = SerialLink(sim, config, name="c.out")
            circuit.attach_egress(1, out)
            circuit.connect(0, 1)
            sim.run(until=25e-6)  # wait out the dark window
            start = sim.now
            circuit.ingress_store(0).try_put((_Frame(), False))
            sim.run()
            results["circuit_latency_s"] = sim.now - start
            results["circuit_setup_s"] = circuit.reconfiguration_s

            # Packet: usable instantly, higher per-frame latency.
            sim = Simulator()
            packet = PacketSwitch(sim, ports=2)
            out = SerialLink(sim, config, name="p.out")
            packet.attach_egress(1, out)
            start = sim.now
            packet.ingress_store(0).try_put(
                (Addressed(1, _Frame()), False)
            )
            sim.run()
            results["packet_latency_s"] = sim.now - start
            results["packet_setup_s"] = 0.0
            return results

        results = once(run)
        print_table(
            "Ablation — §VII circuit vs packet fabric",
            ["fabric", "per-frame latency", "path setup"],
            [
                ("circuit (optical)",
                 f"{results['circuit_latency_s'] * 1e9:.0f} ns",
                 f"{results['circuit_setup_s'] * 1e6:.0f} µs"),
                ("packet (store&fwd)",
                 f"{results['packet_latency_s'] * 1e9:.0f} ns",
                 "0 µs (any-to-any)"),
            ],
        )
        save_results(
            "ablation_fabric",
            {k: v for k, v in results.items()},
        )
        # The §VII trade-off in numbers: circuits are faster per frame,
        # packets need no setup.
        assert results["circuit_latency_s"] < results["packet_latency_s"]
        assert results["packet_setup_s"] == 0.0
        assert results["circuit_setup_s"] > 0.0


class TestNumaMigrationAblation:
    def test_ablation_numa_balancing(self, once):
        """Average access latency before vs after AutoNUMA migration."""

        def run():
            testbed = Testbed()
            attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
            kernel = testbed.node0.kernel
            remote_node = attachment.plan.numa_node_id
            mapping = kernel.mmap(
                1 * MIB, PagePolicy.BIND, nodes=[remote_node]
            )
            balancer = NumaBalancer(kernel, sample_period=1, min_samples=2)

            def mean_latency():
                total = 0.0
                for page in mapping.pages:
                    total += kernel.topology.latency_s(0, page.node_id)
                return total / len(mapping.pages)

            before = mean_latency()
            # The CPU node hammers half the pages; the balancer should
            # migrate exactly those.
            hot = range(0, len(mapping.pages), 2)
            for _ in range(6):
                for index in hot:
                    balancer.record_access(mapping, index, cpu_node=0)
            migrated = balancer.balance(mapping)
            after = mean_latency()
            return before, after, migrated, len(mapping.pages)

        before, after, migrated, pages = once(run)
        print_table(
            "Ablation — NUMA balancing",
            ["metric", "value"],
            [
                ("mean access latency before", f"{before * 1e9:.0f} ns"),
                ("mean access latency after", f"{after * 1e9:.0f} ns"),
                ("pages migrated", f"{migrated}/{pages}"),
            ],
        )
        save_results(
            "ablation_numa",
            {"before_ns": before * 1e9, "after_ns": after * 1e9,
             "migrated": migrated},
        )
        assert migrated == pages // 2
        # Half the pages now local: mean latency falls by ~45-50%.
        assert after < 0.65 * before


class TestQosAblation:
    """§IV-A3 extension: weighted channel sharing on the real datapath."""

    def test_ablation_weighted_bonding(self, once):
        def run():
            results = {}
            for label, weights in (("1:1", None), ("3:1", [3, 1])):
                testbed, window = _build(bonded=True)
                attachment_flow_id = (
                    testbed.plane.attachments(token=testbed.admin_token)[0]
                    .flow.network_id
                )
                if weights is not None:
                    testbed.node0.device.routing.install_route(
                        attachment_flow_id, [0, 1], weights=weights
                    )
                _measure_goodput(testbed, window, workers=32,
                                 loads_per_worker=16)
                tx = list(testbed.node0.device.routing.per_channel_tx)
                results[label] = tx
            return results

        results = once(run)
        print_table(
            "Ablation — §IV-A3 weighted channel sharing (requests/channel)",
            ["weights", "ch0", "ch1"],
            [(k, v[0], v[1]) for k, v in results.items()],
        )
        save_results("ablation_qos", results)
        even = results["1:1"]
        skewed = results["3:1"]
        assert abs(even[0] - even[1]) <= even[0] * 0.1  # balanced
        # 3:1 weighting: channel 0 carries ~3x channel 1's requests.
        assert 2.5 <= skewed[0] / skewed[1] <= 3.5


class TestPacketRackCongestion:
    """§VII: congestion on the packet fabric when flows converge."""

    def test_ablation_packet_fanin(self, once):
        from repro.testbed import PacketRackTestbed

        def run():
            rack = PacketRackTestbed(nodes=4, egress_queue_frames=8)
            # node1 and node2 both borrow from node3: their response
            # traffic shares node3's downlink... and more importantly
            # both compute flows contend on node3's uplink/egress.
            a = rack.attach("node1", 1 * MIB, memory_host="node3")
            b = rack.attach("node2", 1 * MIB, memory_host="node3")
            wa = rack.remote_window_range(a)
            wb = rack.remote_window_range(b)
            sim = rack.sim

            def worker(node, window, lines):
                for line in range(lines):
                    yield rack.node(node).bus.load(
                        window.start + line * CACHELINE_BYTES, 128
                    )

            start = sim.now
            procs = [
                sim.process(worker("node1", wa, 64)),
                sim.process(worker("node2", wb, 64)),
            ]

            def waiter():
                yield sim.all_of(procs)

            sim.run_process(waiter())
            elapsed = sim.now - start
            return {
                "elapsed_us": elapsed * 1e6,
                "congestion_drops": rack.switch.frames_dropped_congestion,
                "forwarded": rack.switch.frames_forwarded,
            }

        results = once(run)
        print_table(
            "Ablation — packet-fabric fan-in (2 flows -> 1 donor)",
            ["metric", "value"],
            [
                ("elapsed", f"{results['elapsed_us']:.1f} µs"),
                ("frames forwarded", results["forwarded"]),
                ("congestion drops", results["congestion_drops"]),
            ],
        )
        save_results("ablation_packet_fanin", results)
        # Everything completes despite any congestion drops (LLC replay).
        assert results["forwarded"] > 0
