"""Tests for the §VII HBM caching layer at the compute endpoint."""

import pytest

from repro.core import HbmCache, HbmCacheConfig
from repro.mem import CACHELINE_BYTES, MIB
from repro.testbed import Testbed


class TestHbmCacheUnit:
    def make(self, size=16 * 1024, ways=2):
        return HbmCache(HbmCacheConfig(size_bytes=size, ways=ways))

    def test_miss_then_fill_then_hit(self):
        cache = self.make()
        assert cache.lookup(0x0, 128) is None
        cache.fill(0x0, b"\x11" * 128)
        assert cache.lookup(0x0, 128) == b"\x11" * 128
        assert cache.read_hits == 1 and cache.read_misses == 1

    def test_write_through_allocates(self):
        cache = self.make()
        cache.write_through(0x80, b"\x22" * 128)
        assert cache.lookup(0x80, 128) == b"\x22" * 128

    def test_partial_line_write_invalidates(self):
        cache = self.make()
        cache.fill(0x0, b"\x11" * 128)
        cache.write_through(0x10, b"short")
        assert cache.lookup(0x0, 128) is None

    def test_unaligned_reads_bypass(self):
        cache = self.make()
        cache.fill(0x0, b"\x11" * 128)
        assert cache.lookup(0x10, 128) is None  # unaligned
        assert cache.lookup(0x0, 64) is None    # partial

    def test_eviction_drops_data(self):
        # 2-way cache of 4 lines total -> 2 sets; lines 0, 2, 4 share set 0.
        cache = self.make(size=4 * CACHELINE_BYTES, ways=2)
        for line in (0, 2, 4):
            cache.fill(line * CACHELINE_BYTES, bytes([line]) * 128)
        assert cache.resident_lines == 2  # one eviction happened
        assert cache.lookup(0 * CACHELINE_BYTES, 128) is None  # LRU victim

    def test_invalidate_range(self):
        cache = self.make()
        for line in range(8):
            cache.fill(line * CACHELINE_BYTES, bytes([line]) * 128)
        dropped = cache.invalidate_range(0, 4 * CACHELINE_BYTES)
        assert dropped == 4
        assert cache.lookup(0, 128) is None
        assert cache.lookup(5 * CACHELINE_BYTES, 128) is not None

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            HbmCacheConfig(size_bytes=100, ways=3)


class TestHbmCacheEndToEnd:
    @pytest.fixture()
    def cached_testbed(self):
        testbed = Testbed()
        cache = testbed.node0.device.enable_hbm_cache(
            HbmCacheConfig(size_bytes=1 * MIB, ways=8)
        )
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        window = testbed.remote_window_range(attachment)
        return testbed, cache, attachment, window

    def test_second_read_served_from_hbm(self, cached_testbed):
        testbed, cache, _attachment, window = cached_testbed
        testbed.node0.run_store(window.start, b"\x42" * 128)
        first = testbed.node0.run_load(window.start)
        second = testbed.node0.run_load(window.start)
        assert first == second == b"\x42" * 128
        # Store write-through allocated; both reads hit.
        assert cache.read_hits >= 1

    def test_hbm_hit_is_much_faster(self, cached_testbed):
        testbed, cache, _attachment, window = cached_testbed
        address = window.start + 4 * CACHELINE_BYTES
        testbed.node0.run_load(address)          # miss -> remote -> fill
        rtt = testbed.node0.device.compute.rtt
        miss_latency = rtt.percentile(100)
        before = rtt.count
        testbed.node0.run_load(address)          # hit in HBM
        hit_latency = rtt._sorted[0] if rtt.count > before else None
        assert hit_latency is not None
        assert hit_latency < miss_latency / 5    # ~30ns+bus vs ~1µs

    def test_write_keeps_donor_authoritative(self, cached_testbed):
        testbed, _cache, attachment, window = cached_testbed
        testbed.node0.run_store(window.start, b"\x55" * 128)
        donor_view = testbed.node1.dram.read_now(
            attachment.grant.effective_base, 128
        )
        assert donor_view == b"\x55" * 128  # write-through reached donor

    def test_read_after_write_returns_new_data(self, cached_testbed):
        testbed, _cache, _attachment, window = cached_testbed
        testbed.node0.run_store(window.start, b"\x01" * 128)
        testbed.node0.run_load(window.start)
        testbed.node0.run_store(window.start, b"\x02" * 128)
        assert testbed.node0.run_load(window.start) == b"\x02" * 128

    def test_detach_invalidates_cached_lines(self, cached_testbed):
        testbed, cache, attachment, window = cached_testbed
        testbed.node0.run_store(window.start, b"\x99" * 128)
        testbed.node0.run_load(window.start)
        assert cache.resident_lines > 0
        testbed.detach(attachment)
        assert cache.resident_lines == 0

    def test_reattach_after_detach_sees_fresh_memory(self, cached_testbed):
        testbed, _cache, attachment, window = cached_testbed
        testbed.node0.run_store(window.start, b"\x77" * 128)
        testbed.node0.run_load(window.start)
        testbed.detach(attachment)
        second = testbed.attach("node0", 2 * MIB, memory_host="node1")
        window2 = testbed.remote_window_range(second)
        # Fresh attachment reuses device sections; stale HBM data must
        # not leak across — newly donated memory reads as zeros.
        assert testbed.node0.run_load(window2.start) == bytes(128)
