"""Calibration constants, each tied to a sentence of the paper.

All timing knobs of the simulation live here so that EXPERIMENTS.md can
point at a single audited table. Derived quantities carry asserts that
reproduce the paper's arithmetic.
"""

from __future__ import annotations

from ..mem.address import GIB
from ..net.link import AURORA_OVERHEAD, SERDES_CROSSING_S
from ..opencapi.ports import FPGA_STACK_CROSSING_S, HOST_LINK_SERDES_S

__all__ = [
    "CHANNEL_RAW_GBPS",
    "CHANNEL_THEORETICAL_MAX_BYTES_S",
    "OPENCAPI_C1_128B_CEILING_BYTES_S",
    "OPENCAPI_C1_256B_CEILING_BYTES_S",
    "PROTOTYPE_RTT_S",
    "LOCAL_DRAM_LATENCY_S",
    "LOCAL_DRAM_BANDWIDTH_BYTES_S",
    "CLOCK_DOMAIN_HZ",
    "rtt_budget_s",
    "integrated_rtt_budget_s",
]

#: "each one driving 4x bonded GTY transceivers at 25Gbit/sec
#: (100Gbit/sec)" — §V.
CHANNEL_RAW_GBPS = 100.0

#: "ThymesisFlow theoretical maximum (12.5 GiB/s)" — Fig. 5 caption.
CHANNEL_THEORETICAL_MAX_BYTES_S = 12.5 * GIB

#: "the OpenCAPI mode C1 … works with 128B transactions … leads to a
#: maximum actual bandwidth to/from memory in the range of 16GiB/s" — §VI-C.
OPENCAPI_C1_128B_CEILING_BYTES_S = 16 * GIB

#: "the OpenCAPI C1 mode has been measured to achieve 20GiB/s by
#: leveraging 256B memory transactions" — §VI-C (unused by POWER9 ld/st).
OPENCAPI_C1_256B_CEILING_BYTES_S = 20 * GIB

#: "The hardware datapath flit RTT latency of this prototype is roughly
#: 950ns" — §V.
PROTOTYPE_RTT_S = 950e-9

#: Local POWER9 socket DRAM access latency (AC922 class machine).
LOCAL_DRAM_LATENCY_S = 85e-9

#: AC922 per-socket sustained DRAM bandwidth (8 DDR4 channels).
LOCAL_DRAM_BANDWIDTH_BYTES_S = 120 * GIB

#: "three mesochronous clock domains … that all run at 401Mhz" — §V.
CLOCK_DOMAIN_HZ = 401e6


def rtt_budget_s(cable_propagation_s: float = 15e-9) -> float:
    """Decompose the prototype RTT the way §V does.

    "four crossings of the FPGA stack and six serDES crossings (2x at
    compute endpoint side, two for the network and two at the memory
    stealing endpoint side)".
    """
    fpga_stack = 4 * FPGA_STACK_CROSSING_S
    host_serdes = 2 * HOST_LINK_SERDES_S + 2 * HOST_LINK_SERDES_S
    network_serdes = 2 * SERDES_CROSSING_S
    cables = 2 * cable_propagation_s
    return fpga_stack + host_serdes + network_serdes + cables


def integrated_rtt_budget_s(cable_propagation_s: float = 15e-9) -> float:
    """The §VII projection: ThymesisFlow inside the processor SoC.

    "The SoC transceivers could be driven by an appropriately modified
    design to directly interface the network … which would save four
    serDES crossings." The FPGA-stack pipeline stays (it becomes SoC
    logic); the 4 host-link serdes crossings disappear.
    """
    fpga_stack = 4 * FPGA_STACK_CROSSING_S
    network_serdes = 2 * SERDES_CROSSING_S
    cables = 2 * cable_propagation_s
    return fpga_stack + network_serdes + cables


# The decomposition must land within 5% of the measured 950 ns.
assert abs(rtt_budget_s() - PROTOTYPE_RTT_S) / PROTOTYPE_RTT_S < 0.05, (
    f"RTT budget {rtt_budget_s() * 1e9:.0f} ns drifted from the "
    f"prototype's {PROTOTYPE_RTT_S * 1e9:.0f} ns"
)

# Sanity: Aurora coding cannot push payload above the raw line rate.
assert CHANNEL_RAW_GBPS * 1e9 / 8 / AURORA_OVERHEAD < 12.5 * GIB * 1.01
