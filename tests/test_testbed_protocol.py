"""One testbed front door: protocol conformance across all three."""

import warnings

import pytest

from repro.control import Attachment
# Aliased imports: pytest must not try to collect Testbed* as tests.
from repro.testbed import PacketRackTestbed, RackTestbed
from repro.testbed import Testbed as _Testbed
from repro.testbed import TestbedBase as _TestbedBase
from repro.testbed import TestbedProtocol as _TestbedProtocol

MIB = 1 << 20

BUILDERS = {
    "prototype": lambda: _Testbed(),
    "rack": lambda: RackTestbed(nodes=2, channels_per_node=2),
    "packet": lambda: PacketRackTestbed(nodes=2, channels_per_node=2),
}


@pytest.fixture(params=sorted(BUILDERS))
def testbed(request):
    return BUILDERS[request.param]()


class TestConformance:
    def test_every_testbed_satisfies_the_protocol(self, testbed):
        assert isinstance(testbed, _TestbedBase)
        assert isinstance(testbed, _TestbedProtocol)

    def test_attach_signature_unified(self, testbed):
        attachment = testbed.attach(
            "node0", 2 * MIB, memory_host="node1", bonded=False
        )
        assert isinstance(attachment, Attachment)
        assert attachment.compute_host == "node0"
        assert attachment.memory_host == "node1"

    def test_remote_window_and_roundtrip(self, testbed):
        attachment = testbed.attach("node0", 2 * MIB,
                                    memory_host="node1")
        window = testbed.remote_window_range(attachment)
        payload = bytes(range(128))
        testbed.node("node0").run_store(window.start, payload)
        assert testbed.node("node0").run_load(window.start) == payload

    def test_detach_and_force_detach(self, testbed):
        attachment = testbed.attach("node0", 2 * MIB,
                                    memory_host="node1")
        testbed.detach(attachment)
        second = testbed.attach("node0", 2 * MIB, memory_host="node1")
        testbed.detach(second, force=True)

    def test_run_advances_shared_clock(self, testbed):
        before = testbed.sim.now
        after = testbed.run(until=before + 5e-6)
        assert after >= before

    def test_register_observability_everywhere(self, testbed):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        testbed.register_observability(registry)
        snapshot = registry.snapshot()
        assert any(key.startswith("link.") for key in snapshot)
        assert any(key.startswith("endpoint.") for key in snapshot)

    def test_links_of_names_the_fault_domain(self, testbed):
        links = testbed.links_of("node1")
        assert links, "a host must have at least one serial link"
        with pytest.raises(KeyError):
            testbed.links_of("node99")

    def test_node_lookup(self, testbed):
        assert testbed.node("node0").hostname == "node0"
        with pytest.raises(KeyError):
            testbed.node("node99")


class TestKeywordOnlySignature:
    """The PR-4 positional shim is gone: old call shapes fail loudly."""

    def test_positional_memory_host_is_a_type_error(self, testbed):
        with pytest.raises(TypeError, match="positional"):
            testbed.attach("node0", 2 * MIB, "node1")

    def test_positional_bonded_is_a_type_error(self):
        testbed = _Testbed()
        with pytest.raises(TypeError, match="positional"):
            testbed.attach("node0", 2 * MIB, "node1", True)

    def test_keyword_form_is_warning_free(self, testbed):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            testbed.attach("node0", 2 * MIB, memory_host="node1")

    def test_no_deprecation_shim_left_in_signature(self):
        import inspect

        parameters = inspect.signature(_TestbedBase.attach).parameters
        assert all(
            p.kind is not inspect.Parameter.VAR_POSITIONAL
            for p in parameters.values()
        )
        for name in ("memory_host", "bonded", "token"):
            assert parameters[name].kind is inspect.Parameter.KEYWORD_ONLY
