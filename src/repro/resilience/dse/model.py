"""Least-squares effects models: which factors move which response.

Given the evaluated design (points + one response value per point),
:func:`fit_effects` fits a classic deviation-coded (sum-to-zero)
effects model::

    y = mean + effect[factor][level] (+ effect[f x g][lf, lg]) + error

Each factor with L design levels contributes L-1 coded columns (the
last level's effect is minus the sum of the others), so "effect" reads
directly as *deviation from the grand mean*. Optional pairwise
interaction terms are products of the main-effect codings. The normal
equations get a tiny ridge on the diagonal — enough to keep aliased
columns (fractional designs) solvable without noticeably biasing a
well-posed fit — and are solved by the accel ``solve_linear_system``
kernel (numpy-vectorized above the backend's crossover, bit-identical
to the pure-Python reference by the differential suite).

Factor *importance* is the range of its fitted effects (max - min):
the swing in the response attributable to moving that knob across the
design, which is the ranking the decision-support report prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ... import accel
from .factors import DseDesignError

__all__ = ["EffectsModel", "fit_effects"]

#: Diagonal regularization added to the normal equations.
RIDGE = 1e-9


def _level_key(level: Any) -> str:
    """Canonical (JSON) text of one level, usable as a dict key."""
    return json.dumps(level, sort_keys=True)


@dataclass
class EffectsModel:
    """One fitted response model, ranked and JSON-able."""

    response: str
    mean: float
    r_squared: float
    observations: int
    #: Per factor: {"factor", "importance", "effects": {level: value}},
    #: sorted by importance (descending, then name).
    factors: List[Dict[str, Any]] = field(default_factory=list)
    #: Per pair: {"factors": [f, g], "importance", "effects"}, same sort.
    interactions: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ranking(self) -> List[str]:
        """Factor names, most influential first."""
        return [entry["factor"] for entry in self.factors]

    def describe(self) -> Dict[str, Any]:
        return {
            "response": self.response,
            "mean": self.mean,
            "r_squared": self.r_squared,
            "observations": self.observations,
            "factors": self.factors,
            "interactions": self.interactions,
        }


def _coding_columns(
    levels: Dict[str, List[Any]]
) -> List[Tuple[str, Any]]:
    """(factor, level) per coded column, in factor-then-level order."""
    columns = []
    for name, values in levels.items():
        for level in values[:-1]:
            columns.append((name, level))
    return columns


def _code(value: Any, levels: List[Any], column_level: Any) -> float:
    """Deviation coding of one observation for one column."""
    if value == column_level:
        return 1.0
    if value == levels[-1]:
        return -1.0
    return 0.0


def fit_effects(
    points: Sequence[Dict[str, Any]],
    values: Sequence[float],
    levels: Dict[str, List[Any]],
    *,
    response: str = "response",
    interactions: Sequence[Tuple[str, str]] = (),
) -> EffectsModel:
    """Fit one response's effects model over the evaluated design.

    ``levels`` defines the coding (the design's per-factor levels, in
    design order); factors with a single level carry no information and
    are skipped. ``interactions`` names factor pairs to model on top of
    the main effects.
    """
    if len(points) != len(values):
        raise DseDesignError(
            f"{len(points)} points but {len(values)} response values"
        )
    if not points:
        raise DseDesignError("cannot fit a model with no observations")
    varying = {
        name: list(vals) for name, vals in levels.items() if len(vals) > 1
    }
    for first, second in interactions:
        for name in (first, second):
            if name not in varying:
                raise DseDesignError(
                    f"interaction references non-varying factor {name!r}"
                )

    columns = _coding_columns(varying)
    pair_columns: List[Tuple[str, Any, str, Any]] = []
    for first, second in interactions:
        for lf in varying[first][:-1]:
            for lg in varying[second][:-1]:
                pair_columns.append((first, lf, second, lg))

    width = 1 + len(columns) + len(pair_columns)
    rows: List[List[float]] = []
    for point in points:
        row = [1.0]
        for name, level in columns:
            row.append(_code(point[name], varying[name], level))
        for first, lf, second, lg in pair_columns:
            row.append(
                _code(point[first], varying[first], lf)
                * _code(point[second], varying[second], lg)
            )
        rows.append(row)

    # Normal equations with a ridge diagonal: X'X beta = X'y.
    ys = [float(v) for v in values]
    xtx = [[0.0] * width for _ in range(width)]
    xty = [0.0] * width
    for row, y in zip(rows, ys):
        for i in range(width):
            ri = row[i]
            if ri == 0.0:
                continue
            xty[i] += ri * y
            target = xtx[i]
            for j in range(width):
                target[j] += ri * row[j]
    for i in range(width):
        xtx[i][i] += RIDGE
    beta = accel.ops.solve_linear_system(xtx, xty)

    mean = beta[0]
    predictions = [
        sum(c * b for c, b in zip(row, beta)) for row in rows
    ]
    sse = sum((y - p) ** 2 for y, p in zip(ys, predictions))
    sst = sum((y - mean) ** 2 for y in ys)
    r_squared = 1.0 if sst == 0.0 else max(0.0, 1.0 - sse / sst)

    # Unfold coefficients into per-level effects (sum-to-zero closes
    # each factor's last level).
    factor_entries = []
    cursor = 1
    for name, vals in varying.items():
        coefs = beta[cursor : cursor + len(vals) - 1]
        cursor += len(vals) - 1
        effects = {
            _level_key(level): coef for level, coef in zip(vals, coefs)
        }
        effects[_level_key(vals[-1])] = -sum(coefs)
        spread = max(effects.values()) - min(effects.values())
        factor_entries.append({
            "factor": name,
            "importance": spread,
            "effects": effects,
        })
    factor_entries.sort(key=lambda e: (-e["importance"], e["factor"]))

    interaction_entries = []
    for first, second in interactions:
        lf_all, lg_all = varying[first], varying[second]
        grid: Dict[str, Dict[str, float]] = {}
        # Coefficients for the (L_f - 1) x (L_g - 1) corner...
        for lf in lf_all[:-1]:
            grid[_level_key(lf)] = {}
            for lg in lg_all[:-1]:
                grid[_level_key(lf)][_level_key(lg)] = beta[cursor]
                cursor += 1
        # ...then close rows and columns by the sum-to-zero constraint.
        for lf in lf_all[:-1]:
            row_effects = grid[_level_key(lf)]
            row_effects[_level_key(lg_all[-1])] = -sum(row_effects.values())
        grid[_level_key(lf_all[-1])] = {
            _level_key(lg): -sum(
                grid[_level_key(lf)][_level_key(lg)] for lf in lf_all[:-1]
            )
            for lg in lg_all
        }
        flat = [v for row in grid.values() for v in row.values()]
        interaction_entries.append({
            "factors": [first, second],
            "importance": max(flat) - min(flat),
            "effects": grid,
        })
    interaction_entries.sort(
        key=lambda e: (-e["importance"], e["factors"])
    )

    return EffectsModel(
        response=response,
        mean=mean,
        r_squared=r_squared,
        observations=len(points),
        factors=factor_entries,
        interactions=interaction_entries,
    )
