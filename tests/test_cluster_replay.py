"""Sharded multi-rack trace replay (``repro.cluster.topology``/``replay``).

The acceptance gate for the sharded simulator: for the same config and
seed, a parallel run's artifact is **byte-identical** to a serial
run's — across a plain multi-rack scenario and the chaos (lender
crash) scenario — and the merged journal passes the JSON-lines
validator. Configs here are tuned so every placement class and
message kind actually occurs (grants AND denials, disruption under
chaos), so the differential comparison covers the full behavior
space, not just the quiet paths.
"""

import json

import pytest

from repro.cluster import (
    ClusterConfig,
    RackPool,
    build_rack_domain,
    cluster_trace_events,
    machines_in_rack,
    run_cluster,
    write_artifacts,
)
from repro.mem import MIB
from repro.obs import MetricsRegistry, validate_event_jsonl

#: Small but busy: pool contention, denials, inter-rack borrowing.
BUSY = dict(
    racks=3,
    nodes_per_rack=4,
    machines=24,
    tasks=400,
    local_memory_fraction=0.1,
    node_dram_bytes=16 * MIB,
    overflow_unit_bytes=32 * MIB,
    export_fraction=0.5,
    seed=7,
)


def canonical(artifact):
    return json.dumps(artifact, sort_keys=True)


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(racks=0)
        with pytest.raises(ValueError):
            ClusterConfig(nodes_per_rack=1)
        with pytest.raises(ValueError):
            ClusterConfig(local_memory_fraction=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(inter_rack_latency=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(export_fraction=1.5)

    def test_machine_split_covers_cluster(self):
        config = ClusterConfig(racks=3, machines=25)
        shares = [machines_in_rack(config, rack) for rack in range(3)]
        assert sum(shares) == 25
        assert max(shares) - min(shares) <= 1

    def test_describe_is_json_round_trippable(self):
        config = ClusterConfig()
        assert json.loads(json.dumps(config.describe())) == config.describe()


class TestRackPool:
    def test_best_fit_prefers_tightest_machine(self):
        pool = RackPool(2, local_memory_fraction=1.0)
        assert pool.place(0.6, 0.1) == 0
        # 0.4 free on machine 0 is the tighter fit for a 0.3 task.
        assert pool.place(0.3, 0.1) == 0
        assert pool.place(0.8, 0.1) == 1

    def test_rejects_when_nothing_fits(self):
        pool = RackPool(1, local_memory_fraction=0.5)
        assert pool.place(0.9, 0.5) == 0
        assert pool.place(0.2, 0.1) is None
        pool.release(0, 0.9, 0.5)
        assert pool.place(0.2, 0.1) == 0

    def test_memory_constrains_placement(self):
        pool = RackPool(1, local_memory_fraction=0.1)
        assert pool.place(0.1, 0.1) == 0
        # CPU is free but local memory is exhausted.
        assert pool.place(0.1, 0.05) is None


class TestRackDomain:
    def test_single_rack_strands_nothing_remote(self):
        config = ClusterConfig(racks=1, machines=8, tasks=120, seed=11,
                               **{k: v for k, v in BUSY.items()
                                  if k not in ("racks", "machines",
                                               "tasks", "seed")})
        domain = build_rack_domain(0, config)
        outbox = domain.advance(domain.horizon + 100.0, [])
        assert outbox == []  # nowhere to borrow from
        artifact = domain.finalize()
        classes = artifact["stats"]["classes"]
        assert classes["remote_pool"] == 0
        assert sum(classes.values()) == artifact["stats"]["tasks"]

    def test_tenant_stats_partition_the_tasks(self):
        config = ClusterConfig(**BUSY)
        artifact, _ = run_cluster(config, jobs=1)
        for rack in artifact["racks"]:
            stats = rack["stats"]
            per_tenant = sum(
                sum(classes.values())
                for classes in stats["tenants"].values()
            )
            assert per_tenant == stats["tasks"]


class TestDifferentialSerialVsParallel:
    """Byte-identical artifacts, serial vs process-parallel."""

    @pytest.mark.parametrize("chaos", [False, True],
                             ids=["plain", "chaos"])
    def test_parallel_is_byte_identical(self, chaos):
        config = ClusterConfig(chaos=chaos, **BUSY)
        serial, _ = run_cluster(config, jobs=1)
        parallel, runtime = run_cluster(config, jobs=2)
        assert runtime["jobs"] == 2
        assert canonical(serial) == canonical(parallel)

    def test_behavior_space_is_actually_covered(self):
        """Guard the tuning: the differential run must exercise every
        class and both grant and deny paths, or the byte-comparison
        proves less than it claims."""
        plain, _ = run_cluster(ClusterConfig(**BUSY), jobs=1)
        counters = plain["summary"]["counters"]
        assert plain["summary"]["classes"]["local"] > 0
        assert plain["summary"]["classes"]["rack_pool"] > 0
        assert counters["leases"] > 0
        assert counters["lease_denials"] > 0
        assert counters["borrow_sent"] > 0
        assert counters["grants_issued"] > 0
        assert counters["denials_issued"] > 0
        assert plain["messages"] > 0

        chaotic, _ = run_cluster(ClusterConfig(chaos=True, **BUSY), jobs=1)
        assert chaotic["summary"]["counters"]["disrupted_leases"] > 0
        kinds = {record["kind"] for record in chaotic["journal"]}
        assert "cluster.lender_crash" in kinds

    def test_journal_is_merged_and_valid(self):
        artifact, _ = run_cluster(ClusterConfig(**BUSY), jobs=2)
        journal = artifact["journal"]
        text = "\n".join(json.dumps(r, sort_keys=True) for r in journal)
        assert validate_event_jsonl(text + "\n") == len(journal)
        domains = {record["domain"] for record in journal}
        assert domains == {"rack0", "rack1", "rack2"}
        # Stable merge order: (t, domain, domain_seq).
        keys = [(r["t"], r["domain"], r["domain_seq"]) for r in journal]
        assert keys == sorted(keys)

    def test_seed_changes_the_artifact(self):
        base, _ = run_cluster(ClusterConfig(**BUSY), jobs=1)
        other_cfg = dict(BUSY)
        other_cfg["seed"] = 8
        other, _ = run_cluster(ClusterConfig(**other_cfg), jobs=1)
        assert canonical(base) != canonical(other)


class TestArtifacts:
    def test_write_artifacts_round_trip(self, tmp_path):
        artifact, _ = run_cluster(ClusterConfig(**BUSY), jobs=1)
        paths = write_artifacts(artifact, str(tmp_path))
        summary = json.loads(open(paths["summary"]).read())
        assert "journal" not in summary
        assert summary["summary"] == artifact["summary"]
        journal_text = open(paths["journal"]).read()
        assert validate_event_jsonl(journal_text) == len(artifact["journal"])

    def test_files_identical_across_job_counts(self, tmp_path):
        config = ClusterConfig(**BUSY)
        a1, _ = run_cluster(config, jobs=1)
        a2, _ = run_cluster(config, jobs=3)
        p1 = write_artifacts(a1, str(tmp_path / "serial"))
        p2 = write_artifacts(a2, str(tmp_path / "parallel"))
        assert open(p1["summary"], "rb").read() == \
            open(p2["summary"], "rb").read()
        assert open(p1["journal"], "rb").read() == \
            open(p2["journal"], "rb").read()

    def test_registry_merge_tags_domains(self):
        registry = MetricsRegistry("cluster")
        run_cluster(ClusterConfig(**BUSY), jobs=1, registry=registry)
        snapshot = registry.snapshot()
        assert any("domain=rack0" in key for key in snapshot)
        assert any("domain=rack2" in key for key in snapshot)


class TestTraceHorizon:
    def test_horizon_matches_last_event(self):
        config = ClusterConfig(**BUSY)
        events, horizon = cluster_trace_events(config)
        assert horizon == events[-1].time
        assert horizon == max(event.time for event in events)

    def test_sampling_thins_the_shared_trace(self):
        config = ClusterConfig(**BUSY)
        full, _ = cluster_trace_events(config)
        sampled_cfg = dict(BUSY)
        sampled, _ = cluster_trace_events(
            ClusterConfig(sample=0.5, **sampled_cfg)
        )
        assert 0 < len(sampled) < len(full)
        full_ids = {event.task.task_id for event in full}
        assert {event.task.task_id for event in sampled} <= full_ids
