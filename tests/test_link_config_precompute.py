"""LinkConfig hot-path micro-opt: derived rates precomputed in __init__.

``serialization_time`` runs once per frame in every link pump; the
derived rates it reads must be computed once at construction, and the
precomputation must be *bit-identical* to the original property-chain
arithmetic so no simulated timestamp moves.
"""

import pytest

from repro.net.link import AURORA_OVERHEAD, SERDES_CROSSING_S, LinkConfig


class TestPrecomputedRates:
    def test_values_match_defining_formulas(self):
        config = LinkConfig(lanes=4, lane_gbps=25.0)
        assert config.raw_bits_per_s == 4 * 25.0 * 1e9
        assert config.payload_bits_per_s == (4 * 25.0 * 1e9) / AURORA_OVERHEAD
        assert config.flight_latency_s == SERDES_CROSSING_S + 15e-9

    def test_serialization_time_bit_identical_to_property_chain(self):
        for lanes, gbps, overhead in ((4, 25.0, AURORA_OVERHEAD),
                                      (1, 1.0, AURORA_OVERHEAD),
                                      (8, 53.125, 1.03)):
            config = LinkConfig(lanes=lanes, lane_gbps=gbps,
                                coding_overhead=overhead)
            reference_rate = (lanes * gbps * 1e9) / overhead
            for size in (1, 64, 128, 4096, 65536):
                # Exact float equality on purpose: the same operations
                # in the same order must produce the same bits.
                assert config.serialization_time(size) == (
                    size * 8 / reference_rate
                )

    def test_rates_are_attributes_not_recomputed(self):
        config = LinkConfig()
        assert "_raw_bits_per_s" in vars(config)
        assert "_payload_bits_per_s" in vars(config)
        assert "_flight_latency_s" in vars(config)
        assert config.raw_bits_per_s is config.__dict__["_raw_bits_per_s"]

    def test_custom_parameters_still_derive(self):
        config = LinkConfig(lanes=2, lane_gbps=10.0,
                            cable_propagation_s=5e-9,
                            serdes_crossing_s=1e-9,
                            coding_overhead=2.0)
        assert config.raw_bits_per_s == 20e9
        assert config.payload_bits_per_s == 10e9
        assert config.flight_latency_s == pytest.approx(6e-9)
        assert config.serialization_time(1250) == pytest.approx(1e-6)

    def test_validation_unchanged(self):
        with pytest.raises(ValueError):
            LinkConfig(lanes=0)
        with pytest.raises(ValueError):
            LinkConfig(lane_gbps=0)
