"""Statistics instrumentation for simulations and benchmarks.

Latency CDFs (Fig. 8), sustained-bandwidth aggregation (Fig. 5) and the
fragmentation metrics of Fig. 1 are all computed with the helpers here,
so that every benchmark reports numbers through one audited code path.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Sequence, Tuple

from .. import accel

__all__ = [
    "RunningStats",
    "Histogram",
    "LatencyRecorder",
    "TimeWeightedValue",
    "percentile",
    "cdf_points",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence.

    ``q`` is in [0, 100]. Matches numpy's default ("linear") method so
    results agree with any cross-checking done with numpy directly.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_values[low])
    frac = rank - low
    return float(sorted_values[low] * (1 - frac) + sorted_values[high] * frac)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) points, sorted."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


class RunningStats:
    """Welford online mean/variance plus min/max, O(1) memory."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def add_repeated(self, value: float, count: int) -> None:
        """Record ``value`` ``count`` times.

        Replaces the burst datapath's per-cacheline ``add`` loops. The
        Welford recurrence is genuinely sequential, so the updates run
        here with locally-bound state — the identical operation
        sequence (hence bit-identical mean/m2) at a fraction of the
        attribute-access cost.
        """
        if count <= 0:
            return
        value = float(value)
        n = self.count
        total = self.total
        mean = self._mean
        m2 = self._m2
        for _ in range(count):
            n += 1
            total += value
            delta = value - mean
            mean += delta / n
            m2 += delta * (value - mean)
        self.count = n
        self.total = total
        self._mean = mean
        self._m2 = m2
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Parallel-merge two Welford accumulators (Chan's algorithm)."""
        merged = RunningStats(self.name)
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other.mean - self.mean
        merged._mean = self.mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        merged.total = self.total + other.total
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunningStats({self.name!r}, n={self.count}, "
            f"mean={self.mean:.4g}, sd={self.stdev:.4g})"
        )


class Histogram:
    """Fixed-bin histogram over [low, high) with under/overflow bins."""

    def __init__(self, low: float, high: float, bins: int, name: str = ""):
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        if bins < 1:
            raise ValueError(f"need bins >= 1, got {bins}")
        self.low = low
        self.high = high
        self.bins = bins
        self.name = name
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._width = (high - low) / bins

    def add(self, value: float) -> None:
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            self.counts[int((value - self.low) / self._width)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> List[float]:
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def normalized(self) -> List[float]:
        total = self.total
        if total == 0:
            return [0.0] * self.bins
        return [c / total for c in self.counts]

    def render(self, width: int = 40) -> str:
        """ASCII bar rendering, one line per bin.

        Empty bins render a bar of zero characters (never a division by
        zero); a histogram with no samples at all renders every bin that
        way, plus the under/overflow tallies.
        """
        peak = max(self.counts) if self.counts else 0
        lines = []
        if self.name:
            lines.append(f"{self.name} (n={self.total})")
        for index, count in enumerate(self.counts):
            low_edge = self.low + index * self._width
            high_edge = low_edge + self._width
            bar = "#" * (round(count / peak * width) if peak else 0)
            lines.append(
                f"[{low_edge:>12.6g}, {high_edge:>12.6g})"
                f" {count:>8} {bar}"
            )
        if self.underflow:
            lines.append(f"{'underflow':>27} {self.underflow:>8}")
        if self.overflow:
            lines.append(f"{'overflow':>27} {self.overflow:>8}")
        return "\n".join(lines)


class LatencyRecorder:
    """Stores every sample; provides mean / percentiles / CDF.

    Used for the Memcached GET latency CDF (Fig. 8) and datapath RTT
    distributions, where exact tail percentiles matter.
    """

    def __init__(self, name: str = ""):
        self.name = name
        #: Samples in arrival order; sorted in place lazily at query time.
        #: Per-sample ``insort`` was O(n) per append and dominated long
        #: benchmark runs that only read percentiles at the end.
        self._samples: List[float] = []
        self._is_sorted = True
        self.stats = RunningStats(name)

    def add(self, value: float) -> None:
        self._samples.append(float(value))
        self._is_sorted = False
        self.stats.add(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def add_repeated(self, value: float, count: int) -> None:
        """Record ``value`` ``count`` times (burst RTT segments)."""
        if count <= 0:
            return
        value = float(value)
        self._samples.extend([value] * count)
        self._is_sorted = False
        self.stats.add_repeated(value, count)

    def _ensure_sorted(self) -> List[float]:
        if not self._is_sorted:
            # Backend kernel: numpy sorts large sample sets ~2-3x
            # faster; a sort is a permutation, so the list is identical
            # whichever backend runs it.
            self._samples = accel.ops.sort_values(self._samples)
            self._is_sorted = True
        return self._samples

    @property
    def _sorted(self) -> List[float]:
        # Kept under the historical name for callers that peeked at the
        # sorted sample list directly.
        return self._ensure_sorted()

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    def percentile(self, q: float) -> float:
        return percentile(self._ensure_sorted(), q)

    def cdf(self) -> List[Tuple[float, float]]:
        ordered = self._ensure_sorted()
        n = len(ordered)
        return [(v, (i + 1) / n) for i, v in enumerate(ordered)]

    def fraction_below(self, threshold: float) -> float:
        ordered = self._ensure_sorted()
        if not ordered:
            return 0.0
        return bisect_left(ordered, threshold) / len(ordered)

    def degradation_at(self, q: float) -> float:
        """Tail degradation: p(q) relative to the mean, as a fraction.

        Fig. 8's commentary reports e.g. "90% of requests served with only
        19% degradation compared to the average latency"; this computes
        exactly that quantity.
        """
        if self.mean == 0:
            return 0.0
        return self.percentile(q) / self.mean - 1.0


class TimeWeightedValue:
    """Integrates a piecewise-constant signal over simulated time.

    Used for time-averaged utilization metrics (e.g. utilized CPU cores,
    link occupancy).
    """

    def __init__(self, now: float = 0.0, initial: float = 0.0, name: str = ""):
        self.name = name
        self._last_time = now
        self._value = initial
        self._area = 0.0
        self._start = now

    @property
    def value(self) -> float:
        return self._value

    def reset(self, now: float) -> None:
        """Restart integration at ``now`` (e.g. after a warm-up phase)."""
        self._start = now
        self._last_time = now
        self._area = 0.0

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def adjust(self, now: float, delta: float) -> None:
        self.update(now, self._value + delta)

    def time_average(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / span
