"""Programmatic regeneration of every paper figure.

Each ``fig*`` function returns ``(title, headers, rows)`` — the series
the corresponding figure plots — so users can consume the numbers
without going through pytest (the benchmarks add assertions and JSON
artifacts on top of the same models). Used by the ``python -m repro``
command line.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .apps import ElasticsearchModel, MemcachedLatencyModel, VoltDbModel
from .cluster import run_fig1_experiment, scaled_trace_config
from .mem import GIB, MIB
from .testbed import MemoryConfigKind, Testbed, make_environment
from .testbed.calibration import PROTOTYPE_RTT_S, rtt_budget_s
from .workloads import Challenge, StreamKernel, StreamModel

FigureTable = Tuple[str, List[str], List[List[str]]]

_ALL_CONFIGS = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.SCALE_OUT,
    MemoryConfigKind.INTERLEAVED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
    MemoryConfigKind.BONDING_DISAGGREGATED,
)


def fig1(units: int = 400) -> FigureTable:
    """Fig. 1 — fixed vs disaggregated datacentre utilization."""
    reports = run_fig1_experiment(scaled_trace_config(units=units),
                                  units=units)
    fixed, disagg = reports["fixed"], reports["disaggregated"]
    rows = [
        ["fragmentation CPU %", f"{fixed.cpu_fragmentation_pct:.2f}",
         f"{disagg.cpu_fragmentation_pct:.2f}", "16.0 / 3.86"],
        ["fragmentation MEM %", f"{fixed.memory_fragmentation_pct:.2f}",
         f"{disagg.memory_fragmentation_pct:.2f}", "29.5 / 9.2"],
        ["off compute %", f"{fixed.compute_off_pct:.2f}",
         f"{disagg.compute_off_pct:.2f}", "1.0 / 8.0"],
        ["off memory %", f"{fixed.memory_off_pct:.2f}",
         f"{disagg.memory_off_pct:.2f}", "1.0 / 27.0"],
    ]
    return (
        f"Fig. 1 — datacentre utilization ({units} units)",
        ["metric", "fixed", "disaggregated", "paper (fixed/disagg)"],
        rows,
    )


def rtt(samples: int = 32) -> FigureTable:
    """§V — the ~950 ns datapath RTT, static budget and live measurement."""
    testbed = Testbed()
    attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    for index in range(samples):
        testbed.node0.run_load(window.start + index * 128)
    recorder = testbed.node0.device.compute.rtt
    rows = [
        ["static budget (4xFPGA + 6xserdes + cables)",
         f"{rtt_budget_s() * 1e9:.0f} ns", "~950 ns"],
        ["measured mean (incl. donor DRAM)",
         f"{recorder.mean * 1e9:.0f} ns", "~950 ns + memory"],
    ]
    return ("§V — remote access RTT", ["quantity", "value", "paper"], rows)


def fig5(threads: Sequence[int] = (4, 8, 16)) -> FigureTable:
    """Fig. 5 — STREAM sustained bandwidth."""
    configs = (
        MemoryConfigKind.BONDING_DISAGGREGATED,
        MemoryConfigKind.SINGLE_DISAGGREGATED,
        MemoryConfigKind.INTERLEAVED,
    )
    models = {kind: StreamModel(make_environment(kind)) for kind in configs}
    rows = []
    for count in threads:
        for kernel in StreamKernel:
            rows.append(
                [str(count), kernel.label]
                + [
                    f"{models[kind].sustained_bandwidth(kernel, count) / GIB:.2f}"
                    for kind in configs
                ]
            )
    return (
        "Fig. 5 — STREAM GiB/s (single-channel theoretical max 12.5)",
        ["threads", "kernel", "bonding", "single", "interleaved"],
        rows,
    )


def fig6(partitions: Sequence[int] = (4, 16, 32, 64)) -> FigureTable:
    """Fig. 6 — VoltDB package IPC / utilized cores."""
    configs = (
        MemoryConfigKind.LOCAL,
        MemoryConfigKind.SINGLE_DISAGGREGATED,
    )
    environments = {kind: make_environment(kind) for kind in configs}
    rows = []
    for workload in "ABCDEF":
        for count in partitions:
            local = VoltDbModel(
                environments[MemoryConfigKind.LOCAL], count
            ).evaluate(workload)
            single = VoltDbModel(
                environments[MemoryConfigKind.SINGLE_DISAGGREGATED], count
            ).evaluate(workload)
            rows.append(
                [
                    workload,
                    str(count),
                    f"{local.package_ipc:.2f}",
                    f"{local.utilized_cores:.1f}",
                    f"{single.package_ipc:.2f}",
                    f"{single.utilized_cores:.1f}",
                ]
            )
    return (
        "Fig. 6 — VoltDB IPC/UCC (stalls: 55.5% local vs 80.9% single)",
        ["wl", "parts", "IPC loc", "UCC loc", "IPC sgl", "UCC sgl"],
        rows,
    )


def fig7(partitions: Sequence[int] = (4, 32)) -> FigureTable:
    """Fig. 7 — YCSB A/E throughput across all five configurations."""
    environments = {kind: make_environment(kind) for kind in _ALL_CONFIGS}
    rows = []
    for workload in "AE":
        for count in partitions:
            base = VoltDbModel(
                environments[MemoryConfigKind.LOCAL], count
            ).evaluate(workload).throughput_ops
            for kind in _ALL_CONFIGS:
                metric = VoltDbModel(environments[kind], count).evaluate(
                    workload
                )
                rows.append(
                    [
                        workload,
                        str(count),
                        kind.value,
                        f"{metric.throughput_ops / 1e3:.1f}K",
                        f"{100 * (metric.throughput_ops / base - 1):+.2f}%",
                    ]
                )
    return (
        "Fig. 7 — YCSB A/E throughput",
        ["wl", "parts", "config", "ops/s", "vs local"],
        rows,
    )


def fig8(samples: int = 30_000) -> FigureTable:
    """Fig. 8 — Memcached GET latency distribution summary."""
    order = (
        MemoryConfigKind.LOCAL,
        MemoryConfigKind.INTERLEAVED,
        MemoryConfigKind.SINGLE_DISAGGREGATED,
        MemoryConfigKind.BONDING_DISAGGREGATED,
        MemoryConfigKind.SCALE_OUT,
    )
    paper = {"local": 600, "interleaved": 614, "single-disaggregated": 635,
             "bonding-disaggregated": 650, "scale-out": 713}
    rows = []
    for kind in order:
        recorder = MemcachedLatencyModel(make_environment(kind)).record(
            samples
        )
        rows.append(
            [
                kind.value,
                f"{recorder.mean * 1e6:.0f}",
                f"{recorder.percentile(90) * 1e6:.0f}",
                f"{100 * recorder.degradation_at(90):.0f}%",
                str(paper[kind.value]),
            ]
        )
    return (
        "Fig. 8 — Memcached GET latency (µs)",
        ["config", "mean", "p90", "p90 degr.", "paper mean"],
        rows,
    )


def fig9(shards: Sequence[int] = (5, 32)) -> FigureTable:
    """Fig. 9 — Elasticsearch nested-track throughput."""
    environments = {kind: make_environment(kind) for kind in _ALL_CONFIGS}
    rows = []
    for challenge in Challenge:
        for count in shards:
            so = ElasticsearchModel(
                environments[MemoryConfigKind.SCALE_OUT], count
            ).throughput_qps(challenge)
            for kind in _ALL_CONFIGS:
                qps = ElasticsearchModel(
                    environments[kind], count
                ).throughput_qps(challenge)
                rows.append(
                    [
                        challenge.name,
                        str(count),
                        kind.value,
                        f"{qps:.1f}",
                        f"{100 * (qps / so - 1):+.1f}%",
                    ]
                )
    return (
        "Fig. 9 — ESRally nested track (ops/s)",
        ["challenge", "shards", "config", "ops/s", "vs scale-out"],
        rows,
    )


FIGURES = {
    "fig1": fig1,
    "rtt": rtt,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}


def render(table: FigureTable) -> str:
    """Format one figure table as aligned text."""
    title, headers, rows = table
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)
