"""Programmatic regeneration of every paper figure.

Each ``fig*`` function returns ``(title, headers, rows)`` — the series
the corresponding figure plots — so users can consume the numbers
without going through pytest (the benchmarks add assertions and JSON
artifacts on top of the same models). Used by the ``python -m repro``
command line.

Internally every figure is described twice over the same code:

* a **plan** (``FIGURE_PLANS[name]``) — title, headers, and an ordered
  list of independent *slice* calls ``(slice_name, kwargs)``;
* the **slices** (``SLICES[slice_name]``) — pure functions computing
  one slice's rows from JSON-serializable kwargs.

The public ``fig*`` functions simply materialize their plan serially.
``repro.sweep`` executes the very same slice calls in worker processes
and reassembles rows in plan order, which is what makes parallel
figure regeneration byte-identical to these serial functions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from .apps import ElasticsearchModel, MemcachedLatencyModel, VoltDbModel
from .cluster import run_fig1_experiment, scaled_trace_config
from .mem import GIB, MIB
from .testbed import MemoryConfigKind, Testbed, make_environment
from .testbed.calibration import PROTOTYPE_RTT_S, rtt_budget_s
from .workloads import Challenge, StreamKernel, StreamModel

FigureTable = Tuple[str, List[str], List[List[str]]]

#: One slice call: (name in ``SLICES``, JSON-serializable kwargs).
SliceCall = Tuple[str, Dict[str, Any]]

#: One figure's declarative decomposition.
FigurePlan = Tuple[str, List[str], List[SliceCall]]

#: Registry of slice functions, each returning a list of rows.
SLICES: Dict[str, Callable[..., List[List[str]]]] = {}


def _slice(name: str):
    def register(fn):
        SLICES[name] = fn
        return fn

    return register


def _materialize(plan: FigurePlan) -> FigureTable:
    """Run a plan's slices serially, in order — the reference output."""
    title, headers, calls = plan
    rows: List[List[str]] = []
    for slice_name, kwargs in calls:
        rows.extend(SLICES[slice_name](**kwargs))
    return title, headers, rows


_ALL_CONFIGS = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.SCALE_OUT,
    MemoryConfigKind.INTERLEAVED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
    MemoryConfigKind.BONDING_DISAGGREGATED,
)


# --------------------------------------------------------------------------- #
# Fig. 1                                                                      #
# --------------------------------------------------------------------------- #


@_slice("fig1.rows")
def _fig1_rows(units: int) -> List[List[str]]:
    reports = run_fig1_experiment(scaled_trace_config(units=units),
                                  units=units)
    fixed, disagg = reports["fixed"], reports["disaggregated"]
    return [
        ["fragmentation CPU %", f"{fixed.cpu_fragmentation_pct:.2f}",
         f"{disagg.cpu_fragmentation_pct:.2f}", "16.0 / 3.86"],
        ["fragmentation MEM %", f"{fixed.memory_fragmentation_pct:.2f}",
         f"{disagg.memory_fragmentation_pct:.2f}", "29.5 / 9.2"],
        ["off compute %", f"{fixed.compute_off_pct:.2f}",
         f"{disagg.compute_off_pct:.2f}", "1.0 / 8.0"],
        ["off memory %", f"{fixed.memory_off_pct:.2f}",
         f"{disagg.memory_off_pct:.2f}", "1.0 / 27.0"],
    ]


def plan_fig1(units: int = 400) -> FigurePlan:
    return (
        f"Fig. 1 — datacentre utilization ({units} units)",
        ["metric", "fixed", "disaggregated", "paper (fixed/disagg)"],
        [("fig1.rows", {"units": units})],
    )


def fig1(units: int = 400) -> FigureTable:
    """Fig. 1 — fixed vs disaggregated datacentre utilization."""
    return _materialize(plan_fig1(units=units))


# --------------------------------------------------------------------------- #
# §V RTT                                                                      #
# --------------------------------------------------------------------------- #


@_slice("rtt.rows")
def _rtt_rows(samples: int) -> List[List[str]]:
    testbed = Testbed()
    attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    for index in range(samples):
        testbed.node0.run_load(window.start + index * 128)
    recorder = testbed.node0.device.compute.rtt
    return [
        ["static budget (4xFPGA + 6xserdes + cables)",
         f"{rtt_budget_s() * 1e9:.0f} ns", "~950 ns"],
        ["measured mean (incl. donor DRAM)",
         f"{recorder.mean * 1e9:.0f} ns", "~950 ns + memory"],
    ]


def plan_rtt(samples: int = 32) -> FigurePlan:
    return (
        "§V — remote access RTT",
        ["quantity", "value", "paper"],
        [("rtt.rows", {"samples": samples})],
    )


def rtt(samples: int = 32) -> FigureTable:
    """§V — the ~950 ns datapath RTT, static budget and live measurement."""
    return _materialize(plan_rtt(samples=samples))


# --------------------------------------------------------------------------- #
# Fig. 5                                                                      #
# --------------------------------------------------------------------------- #

_FIG5_CONFIGS = (
    MemoryConfigKind.BONDING_DISAGGREGATED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
    MemoryConfigKind.INTERLEAVED,
)


@_slice("fig5.threads")
def _fig5_threads(count: int) -> List[List[str]]:
    models = {
        kind: StreamModel(make_environment(kind)) for kind in _FIG5_CONFIGS
    }
    rows = []
    for kernel in StreamKernel:
        rows.append(
            [str(count), kernel.label]
            + [
                f"{models[kind].sustained_bandwidth(kernel, count) / GIB:.2f}"
                for kind in _FIG5_CONFIGS
            ]
        )
    return rows


def plan_fig5(threads: Sequence[int] = (4, 8, 16)) -> FigurePlan:
    return (
        "Fig. 5 — STREAM GiB/s (single-channel theoretical max 12.5)",
        ["threads", "kernel", "bonding", "single", "interleaved"],
        [("fig5.threads", {"count": int(count)}) for count in threads],
    )


def fig5(threads: Sequence[int] = (4, 8, 16)) -> FigureTable:
    """Fig. 5 — STREAM sustained bandwidth."""
    return _materialize(plan_fig5(threads=threads))


# --------------------------------------------------------------------------- #
# Fig. 6                                                                      #
# --------------------------------------------------------------------------- #


@_slice("fig6.workload")
def _fig6_workload(workload: str, partitions: Sequence[int]) -> List[List[str]]:
    environments = {
        kind: make_environment(kind)
        for kind in (
            MemoryConfigKind.LOCAL,
            MemoryConfigKind.SINGLE_DISAGGREGATED,
        )
    }
    rows = []
    for count in partitions:
        local = VoltDbModel(
            environments[MemoryConfigKind.LOCAL], count
        ).evaluate(workload)
        single = VoltDbModel(
            environments[MemoryConfigKind.SINGLE_DISAGGREGATED], count
        ).evaluate(workload)
        rows.append(
            [
                workload,
                str(count),
                f"{local.package_ipc:.2f}",
                f"{local.utilized_cores:.1f}",
                f"{single.package_ipc:.2f}",
                f"{single.utilized_cores:.1f}",
            ]
        )
    return rows


def plan_fig6(partitions: Sequence[int] = (4, 16, 32, 64)) -> FigurePlan:
    return (
        "Fig. 6 — VoltDB IPC/UCC (stalls: 55.5% local vs 80.9% single)",
        ["wl", "parts", "IPC loc", "UCC loc", "IPC sgl", "UCC sgl"],
        [
            ("fig6.workload",
             {"workload": workload, "partitions": [int(p) for p in partitions]})
            for workload in "ABCDEF"
        ],
    )


def fig6(partitions: Sequence[int] = (4, 16, 32, 64)) -> FigureTable:
    """Fig. 6 — VoltDB package IPC / utilized cores."""
    return _materialize(plan_fig6(partitions=partitions))


# --------------------------------------------------------------------------- #
# Fig. 7                                                                      #
# --------------------------------------------------------------------------- #


@_slice("fig7.case")
def _fig7_case(workload: str, partitions: int) -> List[List[str]]:
    environments = {kind: make_environment(kind) for kind in _ALL_CONFIGS}
    base = VoltDbModel(
        environments[MemoryConfigKind.LOCAL], partitions
    ).evaluate(workload).throughput_ops
    rows = []
    for kind in _ALL_CONFIGS:
        metric = VoltDbModel(environments[kind], partitions).evaluate(
            workload
        )
        rows.append(
            [
                workload,
                str(partitions),
                kind.value,
                f"{metric.throughput_ops / 1e3:.1f}K",
                f"{100 * (metric.throughput_ops / base - 1):+.2f}%",
            ]
        )
    return rows


def plan_fig7(partitions: Sequence[int] = (4, 32)) -> FigurePlan:
    return (
        "Fig. 7 — YCSB A/E throughput",
        ["wl", "parts", "config", "ops/s", "vs local"],
        [
            ("fig7.case", {"workload": workload, "partitions": int(count)})
            for workload in "AE"
            for count in partitions
        ],
    )


def fig7(partitions: Sequence[int] = (4, 32)) -> FigureTable:
    """Fig. 7 — YCSB A/E throughput across all five configurations."""
    return _materialize(plan_fig7(partitions=partitions))


# --------------------------------------------------------------------------- #
# Fig. 8                                                                      #
# --------------------------------------------------------------------------- #

_FIG8_ORDER = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.INTERLEAVED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
    MemoryConfigKind.BONDING_DISAGGREGATED,
    MemoryConfigKind.SCALE_OUT,
)

_FIG8_PAPER_MEAN_US = {
    "local": 600, "interleaved": 614, "single-disaggregated": 635,
    "bonding-disaggregated": 650, "scale-out": 713,
}


@_slice("fig8.config")
def _fig8_config(kind: str, samples: int) -> List[List[str]]:
    # Each configuration draws from its own derived RNG substream, so
    # per-config slices reproduce the serial draws exactly.
    config = MemoryConfigKind(kind)
    recorder = MemcachedLatencyModel(make_environment(config)).record(
        samples
    )
    return [
        [
            config.value,
            f"{recorder.mean * 1e6:.0f}",
            f"{recorder.percentile(90) * 1e6:.0f}",
            f"{100 * recorder.degradation_at(90):.0f}%",
            str(_FIG8_PAPER_MEAN_US[config.value]),
        ]
    ]


def plan_fig8(samples: int = 30_000) -> FigurePlan:
    return (
        "Fig. 8 — Memcached GET latency (µs)",
        ["config", "mean", "p90", "p90 degr.", "paper mean"],
        [
            ("fig8.config", {"kind": kind.value, "samples": int(samples)})
            for kind in _FIG8_ORDER
        ],
    )


def fig8(samples: int = 30_000) -> FigureTable:
    """Fig. 8 — Memcached GET latency distribution summary."""
    return _materialize(plan_fig8(samples=samples))


# --------------------------------------------------------------------------- #
# Fig. 9                                                                      #
# --------------------------------------------------------------------------- #


@_slice("fig9.case")
def _fig9_case(challenge: str, shards: int) -> List[List[str]]:
    environments = {kind: make_environment(kind) for kind in _ALL_CONFIGS}
    track = Challenge[challenge]
    so = ElasticsearchModel(
        environments[MemoryConfigKind.SCALE_OUT], shards
    ).throughput_qps(track)
    rows = []
    for kind in _ALL_CONFIGS:
        qps = ElasticsearchModel(environments[kind], shards).throughput_qps(
            track
        )
        rows.append(
            [
                track.name,
                str(shards),
                kind.value,
                f"{qps:.1f}",
                f"{100 * (qps / so - 1):+.1f}%",
            ]
        )
    return rows


def plan_fig9(shards: Sequence[int] = (5, 32)) -> FigurePlan:
    return (
        "Fig. 9 — ESRally nested track (ops/s)",
        ["challenge", "shards", "config", "ops/s", "vs scale-out"],
        [
            ("fig9.case", {"challenge": challenge.name, "shards": int(count)})
            for challenge in Challenge
            for count in shards
        ],
    )


def fig9(shards: Sequence[int] = (5, 32)) -> FigureTable:
    """Fig. 9 — Elasticsearch nested-track throughput."""
    return _materialize(plan_fig9(shards=shards))


# --------------------------------------------------------------------------- #
# Registries                                                                  #
# --------------------------------------------------------------------------- #

FIGURES = {
    "fig1": fig1,
    "rtt": rtt,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}

FIGURE_PLANS: Dict[str, Callable[..., FigurePlan]] = {
    "fig1": plan_fig1,
    "rtt": plan_rtt,
    "fig5": plan_fig5,
    "fig6": plan_fig6,
    "fig7": plan_fig7,
    "fig8": plan_fig8,
    "fig9": plan_fig9,
}


def render(table: FigureTable) -> str:
    """Format one figure table as aligned text."""
    title, headers, rows = table
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)
