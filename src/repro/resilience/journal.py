"""Borrower-side write journaling for failover replay.

The paper's failure model (§IV) leaves recovery of borrowed memory to
software: when a lender dies, the borrower's only copy of the remote
bytes is whatever it keeps locally. :class:`WriteJournal` is that copy —
a shadow image plus the merged set of dirty intervals, maintained
*before* each wire write so the journal is never behind the fabric.
:class:`ResilientBuffer` pairs the journal with a
:class:`~repro.testbed.remote_buffer.RemoteBuffer` and knows how to
quarantine (unmap so the dead lender's pages can be force-offlined) and
rebind (remap on the replacement lender and replay the dirty bytes).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import RemoteMemoryError
from ..osmodel.pages import PagePolicy
from ..testbed.remote_buffer import DEFAULT_BATCH_LINES, RemoteBuffer

__all__ = ["WriteJournal", "ResilientBuffer"]


class WriteJournal:
    """Shadow image of every byte written, with dirty-range tracking."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"negative journal size: {size}")
        self.size = size
        self._image = bytearray(size)
        self._dirty: List[Tuple[int, int]] = []  # merged (start, end)
        self.bytes_recorded = 0

    def record(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > self.size:
            raise ValueError(
                f"journal write [{offset}, {offset + len(data)}) outside "
                f"{self.size} bytes"
            )
        if not data:
            return
        self._image[offset : offset + len(data)] = data
        self.bytes_recorded += len(data)
        self._merge(offset, offset + len(data))

    def _merge(self, start: int, end: int) -> None:
        merged: List[Tuple[int, int]] = []
        placed = False
        for lo, hi in self._dirty:
            if hi < start or lo > end:  # disjoint (touching ranges merge)
                if not placed and lo > end:
                    merged.append((start, end))
                    placed = True
                merged.append((lo, hi))
            else:
                start = min(start, lo)
                end = max(end, hi)
        if not placed:
            merged.append((start, end))
            merged.sort()
        self._dirty = merged

    @property
    def dirty_bytes(self) -> int:
        return sum(end - start for start, end in self._dirty)

    def intervals(self) -> List[Tuple[int, int]]:
        return list(self._dirty)

    def replay_plan(self) -> Iterator[Tuple[int, bytes]]:
        """(offset, bytes) pieces covering exactly the dirty ranges."""
        for start, end in self._dirty:
            yield start, bytes(self._image[start:end])

    def image(self) -> bytes:
        """The full shadow image (clean ranges are zero)."""
        return bytes(self._image)


class ResilientBuffer:
    """A journaled remote buffer that survives lender failure.

    Writes land in the journal first, then go out over the wire; if the
    wire write dies mid-flight (``RemoteMemoryError``), the journal
    still holds the full intent and a later :meth:`rebind` replay makes
    the replacement lender byte-identical.
    """

    def __init__(self, buffer: RemoteBuffer, attachment):
        self.buffer: Optional[RemoteBuffer] = buffer
        self.attachment = attachment
        self.journal = WriteJournal(buffer.size)
        self.replayed_bytes = 0
        self._batch_lines = buffer.batch_lines
        self._batched = buffer.batched

    @classmethod
    def attach_buffer(
        cls,
        testbed,
        attachment,
        size: Optional[int] = None,
        batch_lines: int = DEFAULT_BATCH_LINES,
        batched: bool = True,
    ) -> "ResilientBuffer":
        """Allocate a buffer bound to the attachment's remote node."""
        node = testbed.node(attachment.compute_host)
        buffer = RemoteBuffer.allocate(
            node,
            attachment.size if size is None else size,
            policy=PagePolicy.BIND,
            numa_nodes=[attachment.plan.numa_node_id],
            batch_lines=batch_lines,
            batched=batched,
        )
        return cls(buffer, attachment)

    # -- state --------------------------------------------------------------------
    @property
    def quarantined(self) -> bool:
        return self.buffer is None

    @property
    def size(self) -> int:
        return self.journal.size

    def _live(self) -> RemoteBuffer:
        if self.buffer is None:
            raise RemoteMemoryError(
                "buffer is quarantined awaiting failover",
                code="memory/quarantined",
            )
        return self.buffer

    # -- datapath -----------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        buffer = self._live()
        self.journal.record(offset, data)
        buffer.write(offset, data)

    def read(self, offset: int, size: int) -> bytes:
        return self._live().read(offset, size)

    # -- failover ------------------------------------------------------------------
    def quarantine(self) -> None:
        """Unmap the dead mapping (keeping the journal).

        Must run before the force-detach: the donor section cannot be
        hot-unplugged while borrower pages still occupy it.
        """
        if self.buffer is not None:
            self.buffer.free()
            self.buffer = None

    def rebind(self, testbed, attachment) -> int:
        """Map onto the replacement lender and replay the journal.

        Returns the number of bytes replayed over the wire.
        """
        node = testbed.node(attachment.compute_host)
        self.buffer = RemoteBuffer.allocate(
            node,
            self.journal.size,
            policy=PagePolicy.BIND,
            numa_nodes=[attachment.plan.numa_node_id],
            batch_lines=self._batch_lines,
            batched=self._batched,
        )
        self.attachment = attachment
        replayed = 0
        for offset, data in self.journal.replay_plan():
            self.buffer.write(offset, data)
            replayed += len(data)
        self.replayed_bytes += replayed
        return replayed
