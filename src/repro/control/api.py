"""REST-style system access interface — paper §IV-C.

"The various remote memory allocation/deallocation interactions occur
via a REST API." This module shapes the orchestrator as an HTTP-ish
request handler (method, path, body, bearer token) → (status, body)
without binding a socket, so tests and examples drive the exact same
surface an administrator or a cloud-orchestration plugin would.

Error contract: every error body is the versioned shape
``{"error": <human text>, "code": <machine-readable slug>}``. Domain
exceptions all derive from :class:`~repro.errors.ReproError`; their
``code`` maps to an HTTP status through the single
:data:`~repro.errors.HTTP_STATUS_BY_CODE` table — no message matching.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional, Tuple

from ..errors import ReproError, http_status_for
from ..obs import events as _events
from ..obs.promtext import CONTENT_TYPE, render_prometheus
from .orchestrator import ControlPlane
from .security import Permission

__all__ = ["RestApi"]

_ATTACHMENT_PATH = re.compile(r"^/v1/attachments/(\d+)$")

#: ``fault_hook(campaign, attachment_id, params) -> description dict``;
#: installed by the resilience layer to arm chaos campaigns via POST
#: /v1/faults (the plane itself knows nothing about injectors).
FaultHook = Callable[[str, int, Dict], Dict]


class RestApi:
    """In-process REST facade over :class:`ControlPlane`.

    Routes::

        GET    /v1/state
        GET    /v1/health         (health monitor summary, if wired)
        GET    /v1/metrics        (Prometheus text exposition, if wired)
        GET    /v1/events         (structured event journal, if enabled)
        GET    /v1/attachments
        POST   /v1/attachments    {"compute_host", "size",
                                   ["memory_host"], ["bonded"]}
        GET    /v1/attachments/<id>
        DELETE /v1/attachments/<id>   [?force]
        GET    /v1/faults         (campaign catalogue with param schemas)
        POST   /v1/faults         {"campaign", "attachment", ...params}

    ``monitor`` (a :class:`~repro.control.health.HealthMonitor`) backs
    ``/v1/health``; ``fault_hook`` backs ``/v1/faults``; ``registry``
    (a :class:`~repro.obs.MetricsRegistry`) backs ``/v1/metrics``. All
    are optional — unwired routes answer with a structured 503.

    ``GET /v1/metrics`` is the scrape endpoint: the body carries
    ``content_type`` (the exposition content type a socket binding
    must answer with) and ``body`` (the rendered exposition text).
    """

    def __init__(
        self,
        plane: ControlPlane,
        monitor: Optional[object] = None,
        fault_hook: Optional[FaultHook] = None,
        registry: Optional[object] = None,
    ):
        self.plane = plane
        self.monitor = monitor
        self.fault_hook = fault_hook
        self.registry = registry

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        token: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        """Dispatch one request; returns (status code, response body)."""
        try:
            return self._route(method.upper(), path, body or {}, token)
        except ReproError as exc:
            return http_status_for(exc.code), exc.describe()
        except (MemoryError, ValueError, KeyError) as exc:
            return 400, {
                "error": f"{type(exc).__name__}: {exc}",
                "code": "request/invalid",
            }

    # -- routing -------------------------------------------------------------------
    def _route(
        self, method: str, path: str, body: Dict, token: Optional[str]
    ) -> Tuple[int, Dict]:
        if path == "/v1/state" and method == "GET":
            return 200, {"state": self.plane.system_state(token=token)}

        if path == "/v1/health" and method == "GET":
            return self._health(token)

        if path == "/v1/metrics" and method == "GET":
            return self._metrics(token)

        if path == "/v1/events" and method == "GET":
            return self._events(token)

        if path == "/v1/faults":
            if method == "GET":
                return self._fault_catalogue(token)
            if method == "POST":
                return self._inject_fault(body, token)
            return self._method_not_allowed(method, path)

        if path == "/v1/attachments":
            if method == "GET":
                return 200, {
                    "attachments": [
                        a.describe() for a in self.plane.attachments(token=token)
                    ]
                }
            if method == "POST":
                return self._create(body, token)
            return self._method_not_allowed(method, path)

        match = _ATTACHMENT_PATH.match(path)
        if match:
            attachment_id = int(match.group(1))
            if method == "GET":
                attachment = self.plane.attachment(attachment_id, token=token)
                return 200, attachment.describe()
            if method == "DELETE":
                self.plane.detach(
                    attachment_id,
                    token=token,
                    force=bool(body.get("force", False)),
                )
                return 204, {}
            return self._method_not_allowed(method, path)

        return 404, {
            "error": f"no route for {method} {path}",
            "code": "request/no-route",
        }

    @staticmethod
    def _method_not_allowed(method: str, path: str) -> Tuple[int, Dict]:
        return 405, {
            "error": f"{method} not allowed on {path}",
            "code": "request/method-not-allowed",
        }

    def _create(self, body: Dict, token: Optional[str]) -> Tuple[int, Dict]:
        try:
            compute_host = body["compute_host"]
            size = int(body["size"])
        except KeyError as exc:
            return 400, {
                "error": f"missing field {exc}",
                "code": "request/invalid",
            }
        if size <= 0:
            return 400, {
                "error": f"size must be > 0, got {size}",
                "code": "request/invalid",
            }
        attachment = self.plane.attach(
            compute_host,
            size,
            memory_host=body.get("memory_host"),
            bonded=bool(body.get("bonded", False)),
            token=token,
        )
        return 201, attachment.describe()

    # -- resilience surface ---------------------------------------------------------
    def _health(self, token: Optional[str]) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.READ_STATE)
        if self.monitor is None:
            return 200, {"status": "unmonitored", "attachments": []}
        return 200, self.monitor.describe()

    # -- telemetry surface ----------------------------------------------------------
    def _metrics(self, token: Optional[str]) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.READ_STATE)
        if self.registry is None:
            return 503, {
                "error": "no metrics registry wired to this API",
                "code": "obs/no-registry",
            }
        return 200, {
            "content_type": CONTENT_TYPE,
            "body": render_prometheus(self.registry),
        }

    def _events(self, token: Optional[str]) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.READ_STATE)
        log = _events.active_event_log()
        if log is None:
            return 503, {
                "error": "event logging is not enabled",
                "code": "obs/no-event-log",
            }
        return 200, {
            "total": log.total,
            "evicted": log.evicted,
            "events": log.to_dicts(),
        }

    def _fault_catalogue(self, token: Optional[str]) -> Tuple[int, Dict]:
        """Discoverable campaign catalogue with parameter schemas."""
        self.plane.acl.require(token, Permission.READ_STATE)
        # Local import: the resilience layer sits above the control
        # plane; importing it at module scope would invert the layering.
        from ..resilience.campaigns import campaign_catalogue

        return 200, {"campaigns": campaign_catalogue()}

    def _inject_fault(
        self, body: Dict, token: Optional[str]
    ) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.ATTACH)
        if self.fault_hook is None:
            return 503, {
                "error": "no fault-injection hook installed",
                "code": "resilience/no-injector",
            }
        try:
            campaign = body["campaign"]
            attachment_id = int(body["attachment"])
        except KeyError as exc:
            return 400, {
                "error": f"missing field {exc}",
                "code": "request/invalid",
            }
        params = {
            key: value
            for key, value in body.items()
            if key not in ("campaign", "attachment")
        }
        description = self.fault_hook(campaign, attachment_id, params)
        return 202, {"injected": campaign, **description}
