"""Integration tests: control plane + agents + testbed, end to end.

These are the "whole paper in one test" scenarios: the control plane
attaches disaggregated memory through the REST API, the kernel sees a
new CPU-less NUMA node, applications allocate from it, and loads/stores
physically land in the donor's DRAM across the simulated wire.
"""

import pytest

from repro.control import (
    AuthError,
    NoPathError,
    OrchestrationError,
    Permission,
    PlaneTrust,
    RestApi,
    Role,
)
from repro.mem import AddressRange, MIB
from repro.osmodel import PagePolicy
from repro.testbed import MemoryConfigKind, NodeSpec, Testbed, make_environment

SECTION = 1 * MIB


@pytest.fixture()
def testbed():
    return Testbed()


class TestAttachDetach:
    def test_attach_creates_cpuless_numa_node(self, testbed):
        attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
        kernel = testbed.node0.kernel
        node = kernel.topology.node(attachment.plan.numa_node_id)
        assert node.is_cpuless
        assert node.memory_bytes == 4 * MIB
        assert node.base_latency_s == pytest.approx(950e-9, rel=0.2)

    def test_numa_distance_reflects_rtt(self, testbed):
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        kernel = testbed.node0.kernel
        distance = kernel.topology.distance(0, attachment.plan.numa_node_id)
        # 950ns remote vs 85ns local → distance ≈ 10 * 950/85 ≈ 112.
        assert 90 <= distance <= 130

    def test_donor_memory_is_pinned(self, testbed):
        testbed.attach("node0", 4 * MIB, memory_host="node1")
        assert len(testbed.node1.kernel.pinned_ranges) == 1
        assert testbed.node1.kernel.pinned_ranges[0].size == 4 * MIB

    def test_functional_load_store_through_attachment(self, testbed):
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        window = testbed.remote_window_range(attachment)
        payload = bytes(range(128))
        testbed.node0.run_store(window.start, payload)
        assert testbed.node0.run_load(window.start) == payload
        # ... and the bytes physically live on node1.
        donor_base = attachment.grant.effective_base
        assert testbed.node1.dram.read_now(donor_base, 128) == payload

    def test_mmap_from_remote_node_and_touch(self, testbed):
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        kernel = testbed.node0.kernel
        mapping = kernel.mmap(
            1 * MIB,
            PagePolicy.BIND,
            nodes=[attachment.plan.numa_node_id],
        )
        # Page physical addresses must fall inside the TF window.
        window = testbed.node0.tf_window
        for page in mapping.pages:
            assert window.contains(page.address)
        # Touch the first page through the full datapath.
        address = mapping.pages[0].address
        testbed.node0.run_store(address, b"\xaa" * 128)
        assert testbed.node0.run_load(address) == b"\xaa" * 128

    def test_detach_restores_everything(self, testbed):
        plane = testbed.plane
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        node_id = attachment.plan.numa_node_id
        testbed.detach(attachment)
        assert node_id in testbed.node0.kernel.topology  # node kept, empty
        assert (
            testbed.node0.kernel.topology.node(node_id).memory_bytes == 0
        )
        assert testbed.node1.kernel.pinned_ranges == []
        assert len(plane.flows) == 0
        assert plane.state.donor_free("node1") == testbed.node1.spec.dram_bytes // 2

    def test_reattach_after_detach(self, testbed):
        first = testbed.attach("node0", 2 * MIB, memory_host="node1")
        testbed.detach(first)
        second = testbed.attach("node0", 2 * MIB, memory_host="node1")
        window = testbed.remote_window_range(second)
        testbed.node0.run_store(window.start, b"\x11" * 128)
        assert testbed.node0.run_load(window.start) == b"\x11" * 128

    def test_bidirectional_attachments(self, testbed):
        """Both nodes borrow from each other simultaneously."""
        a01 = testbed.attach("node0", 2 * MIB, memory_host="node1")
        a10 = testbed.attach("node1", 2 * MIB, memory_host="node0")
        w01 = testbed.remote_window_range(a01)
        w10 = testbed.remote_window_range(a10)
        testbed.node0.run_store(w01.start, b"\x01" * 128)
        testbed.node1.run_store(w10.start, b"\x02" * 128)
        assert testbed.node0.run_load(w01.start) == b"\x01" * 128
        assert testbed.node1.run_load(w10.start) == b"\x02" * 128

    def test_bonded_attachment_uses_two_channels(self, testbed):
        attachment = testbed.attach(
            "node0", 2 * MIB, memory_host="node1", bonded=True
        )
        assert attachment.flow.bonded
        assert len(attachment.path.channel_indices) == 2
        window = testbed.remote_window_range(attachment)
        for i in range(8):
            testbed.node0.run_store(window.start + i * 128, bytes([i]) * 128)
        tx = testbed.node0.device.routing.per_channel_tx
        assert tx[0] > 0 and tx[1] > 0

    def test_donor_capacity_enforced(self, testbed):
        capacity = testbed.node1.spec.dram_bytes // 2
        testbed.attach("node0", capacity, memory_host="node1")
        with pytest.raises(Exception):
            testbed.attach("node0", SECTION, memory_host="node1")

    def test_detach_unknown_id_fails(self, testbed):
        with pytest.raises(OrchestrationError):
            testbed.plane.detach(999, token=testbed.admin_token)

    def test_attach_rolls_back_on_failure(self, testbed):
        plane = testbed.plane
        free_before = plane.state.donor_free("node1")
        # Ask for more memory than the donor kernel can pin contiguously.
        with pytest.raises(Exception):
            testbed.attach(
                "node0",
                testbed.node1.spec.dram_bytes * 2,
                memory_host="node1",
            )
        assert plane.state.donor_free("node1") == free_before
        assert len(plane.flows) == 0


class TestAccessControl:
    def test_attach_requires_token(self, testbed):
        with pytest.raises(AuthError):
            testbed.plane.attach("node0", SECTION, memory_host="node1")

    def test_viewer_cannot_attach(self, testbed):
        viewer = testbed.plane.acl.issue_token(Role.VIEWER)
        with pytest.raises(AuthError):
            testbed.plane.attach(
                "node0", SECTION, memory_host="node1", token=viewer
            )

    def test_viewer_can_read_state(self, testbed):
        viewer = testbed.plane.acl.issue_token(Role.VIEWER)
        state = testbed.plane.system_state(token=viewer)
        assert "node0/cep" in state

    def test_operator_can_attach_and_detach(self, testbed):
        operator = testbed.plane.acl.issue_token(Role.OPERATOR)
        attachment = testbed.plane.attach(
            "node0", SECTION, memory_host="node1", token=operator
        )
        testbed.plane.detach(attachment.attachment_id, token=operator)

    def test_revoked_token_rejected(self, testbed):
        token = testbed.plane.acl.issue_token(Role.ADMIN)
        testbed.plane.acl.revoke(token)
        with pytest.raises(AuthError):
            testbed.plane.attach(
                "node0", SECTION, memory_host="node1", token=token
            )

    def test_plane_trust_rejects_tampering(self):
        trust = PlaneTrust.generate()
        signature = trust.sign(b"legit-config")
        assert trust.verify(b"legit-config", signature)
        assert not trust.verify(b"tampered-config", signature)


class TestRestApi:
    def test_full_rest_lifecycle(self, testbed):
        api = RestApi(testbed.plane)
        token = testbed.admin_token
        status, body = api.handle(
            "POST",
            "/v1/attachments",
            {"compute_host": "node0", "size": 2 * MIB,
             "memory_host": "node1"},
            token=token,
        )
        assert status == 201
        attachment_id = body["id"]
        status, body = api.handle("GET", "/v1/attachments", token=token)
        assert status == 200 and len(body["attachments"]) == 1
        status, body = api.handle(
            "GET", f"/v1/attachments/{attachment_id}", token=token
        )
        assert status == 200 and body["compute_host"] == "node0"
        status, _ = api.handle(
            "DELETE", f"/v1/attachments/{attachment_id}", token=token
        )
        assert status == 204
        status, body = api.handle("GET", "/v1/attachments", token=token)
        assert body["attachments"] == []

    def test_missing_token_is_401(self, testbed):
        api = RestApi(testbed.plane)
        status, body = api.handle("GET", "/v1/state")
        assert status == 401

    def test_unknown_attachment_is_404(self, testbed):
        api = RestApi(testbed.plane)
        status, _ = api.handle(
            "DELETE", "/v1/attachments/42", token=testbed.admin_token
        )
        assert status == 404

    def test_bad_body_is_400(self, testbed):
        api = RestApi(testbed.plane)
        status, _ = api.handle(
            "POST", "/v1/attachments", {"size": 1}, token=testbed.admin_token
        )
        assert status == 400

    def test_unroutable_request_is_409(self, testbed):
        api = RestApi(testbed.plane)
        status, body = api.handle(
            "POST",
            "/v1/attachments",
            {"compute_host": "node0", "size": 1 << 40,
             "memory_host": "node1"},
            token=testbed.admin_token,
        )
        assert status == 409

    def test_unknown_route_is_404(self, testbed):
        api = RestApi(testbed.plane)
        status, _ = api.handle("GET", "/v2/bogus", token=testbed.admin_token)
        assert status == 404

    def test_state_snapshot_shape(self, testbed):
        api = RestApi(testbed.plane)
        status, body = api.handle("GET", "/v1/state", token=testbed.admin_token)
        assert status == 200
        assert body["state"]["node0/x0"]["kind"] == "transceiver"


class TestConfigurations:
    def test_all_five_environments_exist(self):
        from repro.testbed import all_environments

        environments = all_environments()
        assert len(environments) == 5

    def test_local_has_no_remote_traffic(self):
        env = make_environment(MemoryConfigKind.LOCAL)
        assert env.remote_fraction == 0.0
        assert not env.uses_thymesisflow

    def test_single_is_fully_remote(self):
        env = make_environment(MemoryConfigKind.SINGLE_DISAGGREGATED)
        assert env.remote_fraction == 1.0
        assert env.remote_latency_s == pytest.approx(950e-9)

    def test_bonding_capped_by_c1_ceiling(self):
        single = make_environment(MemoryConfigKind.SINGLE_DISAGGREGATED)
        bonding = make_environment(MemoryConfigKind.BONDING_DISAGGREGATED)
        assert bonding.remote_bandwidth_bytes_s < 2 * single.remote_bandwidth_bytes_s
        # ~30% improvement, not 2x (§VI-C).
        gain = bonding.remote_bandwidth_bytes_s / single.remote_bandwidth_bytes_s
        assert 1.2 <= gain <= 1.35

    def test_interleaved_is_half_remote(self):
        env = make_environment(MemoryConfigKind.INTERLEAVED)
        assert env.remote_fraction == 0.5
        mean = env.average_miss_latency()
        assert 85e-9 < mean < 950e-9

    def test_scale_out_doubles_cores_and_pays_sync(self):
        env = make_environment(MemoryConfigKind.SCALE_OUT, cores_per_node=32)
        assert env.total_cores == 64
        assert env.instances == 2
        assert env.sync_latency_s > 0


class TestChannelSharing:
    """§IV-A3: "A network channel may be shared concurrently between
    different active thymesisflows"."""

    def test_two_flows_share_one_channel(self, testbed):
        first = testbed.attach("node0", 2 * MIB, memory_host="node1")
        second = testbed.attach("node0", 2 * MIB, memory_host="node1")
        assert first.flow.network_id != second.flow.network_id
        w1 = testbed.remote_window_range(first)
        w2 = testbed.remote_window_range(second)
        assert not w1.overlaps(w2)
        # Interleave traffic on both flows over the shared channel.
        for i in range(8):
            testbed.node0.run_store(w1.start + i * 128, b"\x0a" * 128)
            testbed.node0.run_store(w2.start + i * 128, b"\x0b" * 128)
        for i in range(8):
            assert testbed.node0.run_load(w1.start + i * 128) == b"\x0a" * 128
            assert testbed.node0.run_load(w2.start + i * 128) == b"\x0b" * 128

    def test_flows_land_in_disjoint_donor_ranges(self, testbed):
        first = testbed.attach("node0", 1 * MIB, memory_host="node1")
        second = testbed.attach("node0", 1 * MIB, memory_host="node1")
        r1 = AddressRange(first.grant.effective_base, first.grant.size)
        r2 = AddressRange(second.grant.effective_base, second.grant.size)
        assert not r1.overlaps(r2)

    def test_detaching_one_flow_leaves_the_other_running(self, testbed):
        first = testbed.attach("node0", 1 * MIB, memory_host="node1")
        second = testbed.attach("node0", 1 * MIB, memory_host="node1")
        w2 = testbed.remote_window_range(second)
        testbed.node0.run_store(w2.start, b"\x33" * 128)
        testbed.detach(first)
        assert testbed.node0.run_load(w2.start) == b"\x33" * 128

    def test_bonded_and_unbonded_flows_share_channels(self, testbed):
        """§IV-A3: sharing works "regardless if one or more of them are
        using the channel in bonding mode"."""
        bonded = testbed.attach("node0", 1 * MIB, memory_host="node1",
                                bonded=True)
        plain = testbed.attach("node0", 1 * MIB, memory_host="node1")
        wb = testbed.remote_window_range(bonded)
        wp = testbed.remote_window_range(plain)
        for i in range(6):
            testbed.node0.run_store(wb.start + i * 128, b"\x0c" * 128)
            testbed.node0.run_store(wp.start + i * 128, b"\x0d" * 128)
        for i in range(6):
            assert testbed.node0.run_load(wb.start + i * 128) == b"\x0c" * 128
            assert testbed.node0.run_load(wp.start + i * 128) == b"\x0d" * 128
