"""End-to-end integration tests of the ThymesisFlow datapath.

Builds a minimal two-node rig by hand (the testbed package automates
this later): a compute node whose bus maps a ThymesisFlow window, and a
donor node whose memory is pinned and served through the C1 port.
"""

import pytest

from repro.core import LlcConfig, ThymesisFlowDevice
from repro.mem import (
    CACHELINE_BYTES,
    MIB,
    AddressRange,
    DramDevice,
    DramTiming,
)
from repro.net import DuplexChannel, FaultInjector, LinkConfig
from repro.opencapi import PasidRegistry, SystemBus
from repro.sim import Simulator


SECTION_BYTES = 1 * MIB  # scaled-down sections keep tests quick


class Rig:
    """Two-node ThymesisFlow test rig with one or two channels."""

    def __init__(
        self,
        channels=1,
        faults_ab=None,
        faults_ba=None,
        bonded=False,
        llc_config=None,
    ):
        self.sim = Simulator()
        llc_config = llc_config or LlcConfig()

        # Donor node: DRAM + bus + PASID-registered stealing process.
        self.donor_bus = SystemBus(self.sim, name="donor.bus")
        self.donor_dram = DramDevice(
            self.sim,
            AddressRange(0x0, 64 * MIB),
            timing=DramTiming(),
            name="donor.dram",
        )
        self.donor_bus.attach_dram(self.donor_dram)
        self.pasids = PasidRegistry()
        entry = self.pasids.register("memory-stealing-proc")
        self.pasid = entry.pasid
        self.donated = AddressRange(16 * MIB, 4 * SECTION_BYTES)
        self.pasids.add_window(self.pasid, self.donated)

        # Compute node: bus with a ThymesisFlow window.
        self.compute_bus = SystemBus(self.sim, name="compute.bus")
        self.window = AddressRange(0x2000_0000, 8 * SECTION_BYTES)

        # Devices and channels.
        self.compute_dev = ThymesisFlowDevice(
            self.sim, name="cdev", section_bytes=SECTION_BYTES,
            llc_config=llc_config,
        )
        self.donor_dev = ThymesisFlowDevice(
            self.sim, name="ddev", section_bytes=SECTION_BYTES,
            llc_config=llc_config,
        )
        self.channels = []
        for index in range(channels):
            channel = DuplexChannel(
                self.sim,
                LinkConfig(),
                faults_ab=faults_ab if index == 0 else None,
                faults_ba=faults_ba if index == 0 else None,
                name=f"ch{index}",
            )
            self.compute_dev.connect_channel(channel.endpoint_view("a"))
            self.donor_dev.connect_channel(channel.endpoint_view("b"))
            self.channels.append(channel)

        self.compute_dev.attach_compute(self.compute_bus, self.window)
        self.donor_dev.enable_memory_role(self.donor_bus, self.pasids)
        self.donor_dev.memory.set_pasid(self.pasid)

        # Program one section: device-internal section 0 → donated base.
        network_id = 7
        wire_id = network_id | (0x8000 if bonded else 0)
        self.compute_dev.program_section(0, self.donated.start, wire_id)
        self.compute_dev.program_route(
            network_id, list(range(channels)) if bonded else [0]
        )

    def store(self, address, data):
        return self.sim.run_process(self._store(address, data))

    def load(self, address, size=CACHELINE_BYTES):
        return self.sim.run_process(self._load(address, size))

    def _store(self, address, data):
        yield self.compute_bus.store(address, data)

    def _load(self, address, size):
        data = yield self.compute_bus.load(address, size)
        return data


class TestFunctionalDatapath:
    def test_remote_store_then_load_roundtrip(self):
        rig = Rig()
        payload = bytes(range(128))
        rig.store(rig.window.start, payload)
        assert rig.load(rig.window.start) == payload

    def test_data_really_lands_in_donor_dram(self):
        rig = Rig()
        payload = b"\xde\xad\xbe\xef" * 32
        rig.store(rig.window.start + 3 * CACHELINE_BYTES, payload)
        donor_bytes = rig.donor_dram.read_now(
            rig.donated.start + 3 * CACHELINE_BYTES, 128
        )
        assert donor_bytes == payload

    def test_unwritten_remote_memory_reads_zero(self):
        rig = Rig()
        assert rig.load(rig.window.start + 0x400) == bytes(CACHELINE_BYTES)

    def test_many_cachelines_distinct_content(self):
        rig = Rig()
        lines = 32
        for i in range(lines):
            rig.store(
                rig.window.start + i * CACHELINE_BYTES,
                bytes([i]) * CACHELINE_BYTES,
            )
        for i in range(lines):
            assert rig.load(rig.window.start + i * CACHELINE_BYTES) == (
                bytes([i]) * CACHELINE_BYTES
            )

    def test_unmapped_section_faults(self):
        rig = Rig()
        from repro.opencapi import BusError

        with pytest.raises(BusError, match="ADDRESS_ERROR"):
            # Section 5 was never programmed.
            rig.load(rig.window.start + 5 * SECTION_BYTES)

    def test_pasid_violation_denied(self):
        rig = Rig()
        # Program a second section pointing outside the pinned window.
        rig.compute_dev.program_section(1, 0x0, 7)
        from repro.opencapi import BusError

        with pytest.raises(BusError, match="ACCESS_DENIED"):
            rig.load(rig.window.start + SECTION_BYTES)

    def test_concurrent_outstanding_transactions(self):
        rig = Rig()

        def issue_burst():
            stores = [
                rig.compute_bus.store(
                    rig.window.start + i * CACHELINE_BYTES,
                    bytes([i]) * CACHELINE_BYTES,
                )
                for i in range(16)
            ]
            yield rig.sim.all_of(stores)
            loads = [
                rig.compute_bus.load(rig.window.start + i * CACHELINE_BYTES)
                for i in range(16)
            ]
            results = yield rig.sim.all_of(loads)
            return results

        results = rig.sim.run_process(issue_burst())
        for i, data in enumerate(results):
            assert data == bytes([i]) * CACHELINE_BYTES


class TestDatapathTiming:
    def test_unloaded_rtt_close_to_prototype(self):
        """§V: 'hardware datapath flit RTT latency … is roughly 950ns'."""
        rig = Rig()
        rig.load(rig.window.start)  # warm: section etc. all static anyway
        rtt = rig.compute_dev.compute.rtt
        # Our RTT includes the donor DRAM access (~90 ns) on top of the
        # pure datapath; accept a band around 950ns + memory.
        assert 0.85e-6 <= rtt.mean <= 1.3e-6

    def test_read_and_write_have_similar_rtt(self):
        rig = Rig()
        rig.store(rig.window.start, bytes(128))
        write_rtt = rig.compute_dev.compute.rtt.mean
        rig2 = Rig()
        rig2.load(rig2.window.start)
        read_rtt = rig2.compute_dev.compute.rtt.mean
        assert write_rtt == pytest.approx(read_rtt, rel=0.25)


class TestReliability:
    def test_frame_drop_recovered_by_replay(self):
        faults = FaultInjector()
        rig = Rig(faults_ab=faults)
        faults.force_drop_next(1)  # first request frame vanishes
        payload = b"\x42" * 128
        rig.store(rig.window.start, payload)
        assert rig.load(rig.window.start) == payload
        compute_llc = rig.compute_dev.llcs[0]
        assert compute_llc.timeout_recoveries >= 1 or (
            rig.donor_dev.llcs[0].replays_requested >= 1
        )

    def test_frame_corruption_recovered_by_replay(self):
        faults = FaultInjector()
        rig = Rig(faults_ab=faults)
        faults.force_corrupt_next(1)
        payload = b"\x37" * 128
        rig.store(rig.window.start, payload)
        assert rig.load(rig.window.start) == payload
        donor_llc = rig.donor_dev.llcs[0]
        assert donor_llc.frames_corrupted >= 1
        assert donor_llc.replays_requested >= 1

    def test_response_drop_recovered(self):
        faults = FaultInjector()
        rig = Rig(faults_ba=faults)
        faults.force_drop_next(1)  # first *response* frame vanishes
        payload = b"\x55" * 128
        rig.store(rig.window.start, payload)
        assert rig.load(rig.window.start) == payload

    def test_lossy_link_delivers_everything_exactly_once(self):
        faults = FaultInjector(drop_probability=0.05, corrupt_probability=0.05)
        rig = Rig(faults_ab=faults)
        lines = 48
        for i in range(lines):
            rig.store(
                rig.window.start + i * CACHELINE_BYTES,
                bytes([i + 1]) * CACHELINE_BYTES,
            )
        for i in range(lines):
            assert rig.load(rig.window.start + i * CACHELINE_BYTES) == (
                bytes([i + 1]) * CACHELINE_BYTES
            ), f"line {i} corrupted or lost"
        assert faults.fault_count > 0, "fault injector never fired"

    def test_clean_link_never_replays(self):
        rig = Rig()
        for i in range(16):
            rig.store(rig.window.start + i * 128, bytes([i]) * 128)
        assert rig.compute_dev.llcs[0].replays_served == 0
        assert rig.donor_dev.llcs[0].replays_requested == 0


class TestBonding:
    def test_bonded_flow_uses_both_channels(self):
        rig = Rig(channels=2, bonded=True)
        for i in range(20):
            rig.store(rig.window.start + i * 128, bytes([i]) * 128)
        tx = rig.compute_dev.routing.per_channel_tx
        assert tx[0] > 0 and tx[1] > 0
        assert abs(tx[0] - tx[1]) <= 1  # round-robin balance

    def test_bonded_flow_functionally_correct(self):
        rig = Rig(channels=2, bonded=True)
        for i in range(20):
            rig.store(rig.window.start + i * 128, bytes([i * 3 % 251]) * 128)
        for i in range(20):
            assert rig.load(rig.window.start + i * 128) == (
                bytes([i * 3 % 251]) * 128
            )

    def test_unbonded_flow_sticks_to_one_channel(self):
        rig = Rig(channels=2, bonded=False)
        for i in range(10):
            rig.store(rig.window.start + i * 128, bytes(128))
        tx = rig.compute_dev.routing.per_channel_tx
        assert tx[1] == 0


class TestCreditBackpressure:
    def test_tiny_credit_pool_still_completes(self):
        config = LlcConfig(rx_queue_slots=2)
        rig = Rig(llc_config=config)
        for i in range(12):
            rig.store(rig.window.start + i * 128, bytes([i]) * 128)
        for i in range(12):
            assert rig.load(rig.window.start + i * 128) == bytes([i]) * 128

    def test_credits_are_conserved(self):
        config = LlcConfig(rx_queue_slots=8)
        rig = Rig(llc_config=config)
        for i in range(20):
            rig.store(rig.window.start + i * 128, bytes(128))
        rig.sim.run()
        # After quiescence every consumed credit must have been granted back.
        for llc in (rig.compute_dev.llcs[0], rig.donor_dev.llcs[0]):
            assert llc.credits_available == config.rx_queue_slots


class TestTransactionTimeout:
    """Donor-failure handling: a watchdog fails stuck transactions back
    to the bus instead of hanging the CPU forever."""

    def build_rig_with_timeout(self, drop_everything=False):
        from repro.net import FaultInjector

        faults = FaultInjector(drop_probability=1.0 if drop_everything else 0.0)
        rig = Rig(faults_ab=faults)
        rig.compute_dev.compute.transaction_timeout_s = 100e-6
        return rig, faults

    def test_dead_link_times_out_instead_of_hanging(self):
        from repro.opencapi import BusError

        rig, _faults = self.build_rig_with_timeout(drop_everything=True)
        with pytest.raises(BusError, match="RETRY"):
            rig.load(rig.window.start)
        assert rig.compute_dev.compute.timeouts == 1
        assert rig.compute_dev.compute.outstanding_count == 0

    def test_healthy_link_unaffected_by_watchdog(self):
        rig, _faults = self.build_rig_with_timeout(drop_everything=False)
        payload = b"\x66" * 128
        rig.store(rig.window.start, payload)
        assert rig.load(rig.window.start) == payload
        assert rig.compute_dev.compute.timeouts == 0

    def test_late_response_after_expiry_is_dropped(self):
        """A response racing the watchdog must not crash the endpoint."""
        rig, faults = self.build_rig_with_timeout(drop_everything=False)
        # Expire almost immediately: the response will arrive after.
        rig.compute_dev.compute.transaction_timeout_s = 1e-9
        from repro.opencapi import BusError

        with pytest.raises(BusError, match="RETRY"):
            rig.load(rig.window.start)
        rig.sim.run(until=rig.sim.now + 1e-3)  # response arrives; dropped
        assert rig.compute_dev.compute.outstanding_count == 0
