"""Application models: VoltDB, Memcached, Twemproxy, Elasticsearch."""

from .elastic import CHALLENGE_PROFILES, Elasticsearch, ElasticsearchModel
from .memcached import CacheStats, Memcached, MemcachedLatencyModel
from .twemproxy import Twemproxy
from .voltdb import WORKLOAD_PROFILES, VoltDb, VoltDbMetrics, VoltDbModel

__all__ = [
    "VoltDb",
    "VoltDbModel",
    "VoltDbMetrics",
    "WORKLOAD_PROFILES",
    "Memcached",
    "MemcachedLatencyModel",
    "CacheStats",
    "Twemproxy",
    "Elasticsearch",
    "ElasticsearchModel",
    "CHALLENGE_PROFILES",
]
