"""Memcached application model — paper §VI-E / Fig. 8.

* :class:`Memcached` — a functional LRU key-value cache with memcached
  semantics (GET/SET/DELETE, byte-accounted capacity including per-item
  overhead, eviction statistics). Tests drive it with the real ETC
  operation stream.
* :class:`MemcachedLatencyModel` — the GET-latency model behind the
  Fig. 8 CDFs. A request's latency decomposes into a *floor* (NIC,
  kernel stack, event loop — identical across configurations), the
  *memory component* (the ~40 LLC misses a GET takes walking the hash
  chain, LRU-updating and copying a ~330 B item out of a 10 GiB working
  set, each served at the configuration's miss latency), and an
  exponential *tail* whose scale is calibrated to the per-configuration
  p90 degradations the paper reports (19 % local, 33 % interleaved,
  34 % single, 64 % bonding, ~2× scale-out).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..sim.rng import SeededRNG
from ..sim.stats import LatencyRecorder
from ..testbed.configurations import AccessEnvironment, MemoryConfigKind
from ..workloads.etc import ITEM_OVERHEAD_BYTES

__all__ = ["Memcached", "MemcachedLatencyModel", "CacheStats"]


@dataclass
class CacheStats:
    gets: int = 0
    hits: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.gets - self.hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0


class Memcached:
    """LRU key-value cache with byte-accurate capacity accounting."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be > 0: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._items: "OrderedDict[str, bytes]" = OrderedDict()
        self.used_bytes = 0
        self.stats = CacheStats()

    @staticmethod
    def _cost(key: str, value: bytes) -> int:
        return len(key) + len(value) + ITEM_OVERHEAD_BYTES

    # -- protocol ----------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        self.stats.gets += 1
        value = self._items.get(key)
        if value is None:
            return None
        self.stats.hits += 1
        self._items.move_to_end(key)  # LRU touch
        return value

    def set(self, key: str, value: bytes) -> None:
        self.stats.sets += 1
        if key in self._items:
            self.used_bytes -= self._cost(key, self._items.pop(key))
        cost = self._cost(key, value)
        if cost > self.capacity_bytes:
            raise ValueError(
                f"item of {cost} bytes exceeds cache capacity"
            )
        while self.used_bytes + cost > self.capacity_bytes:
            victim_key, victim_value = self._items.popitem(last=False)
            self.used_bytes -= self._cost(victim_key, victim_value)
            self.stats.evictions += 1
        self._items[key] = value
        self.used_bytes += cost

    def delete(self, key: str) -> bool:
        value = self._items.pop(key, None)
        if value is None:
            return False
        self.stats.deletes += 1
        self.used_bytes -= self._cost(key, value)
        return True

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items


# --------------------------------------------------------------------------- #
# Latency model (Fig. 8)                                                      #
# --------------------------------------------------------------------------- #

#: LLC misses per GET on a 10 GiB working set: hash-bucket walk, item
#: header + LRU pointers, ~330 B of value copy-out, socket buffer churn.
MISSES_PER_GET = 40

#: Latency floor + local-config mean calibrated to the measured 600 µs.
_NETWORK_CPU_BASE_S = 596.6e-6

#: Measured p90/mean degradation per configuration (§VI-E):
#: "90% of all requests served with only 19% degradation" (local);
#: "33%, 34% and 64%" (interleaved, single, bonding); "up-to 2×"
#: (scale-out, behind Twemproxy).
TAIL_DEGRADATION_AT_P90: Dict[MemoryConfigKind, float] = {
    MemoryConfigKind.LOCAL: 0.19,
    MemoryConfigKind.INTERLEAVED: 0.33,
    MemoryConfigKind.SINGLE_DISAGGREGATED: 0.34,
    MemoryConfigKind.BONDING_DISAGGREGATED: 0.64,
    MemoryConfigKind.SCALE_OUT: 1.00,
}

#: Extra mean latency of the scale-out path: one Twemproxy hop plus the
#: proxy's connection multiplexing (§VI-E reports 713 µs vs 600 µs).
PROXY_HOP_MEAN_S = 110e-6

_LN10 = float(np.log(10.0))


class MemcachedLatencyModel:
    """Shifted-exponential GET latency per configuration.

    ``mean = floor + tail_scale`` and ``p90 = floor + ln(10)·tail_scale``
    — the two calibration targets (mean latency and p90 degradation)
    uniquely determine both parameters.
    """

    def __init__(
        self,
        environment: AccessEnvironment,
        misses_per_get: int = MISSES_PER_GET,
        seed: int = 5,
    ):
        self.environment = environment
        self.misses_per_get = misses_per_get
        self._rng = SeededRNG(seed).derive(
            f"memcached/{environment.kind.value}"
        )

    # -- first moments -------------------------------------------------------------
    def memory_component_s(self) -> float:
        env = self.environment
        miss_latency = (
            (1.0 - env.remote_fraction) * env.local_latency_s
            + env.remote_fraction * env.remote_latency_s
        )
        if env.remote_fraction == 0.0:
            miss_latency = env.local_latency_s
        return self.misses_per_get * miss_latency

    def mean_latency_s(self) -> float:
        mean = _NETWORK_CPU_BASE_S + self.memory_component_s()
        if self.environment.kind is MemoryConfigKind.SCALE_OUT:
            mean += PROXY_HOP_MEAN_S
        return mean

    def p90_latency_s(self) -> float:
        degradation = TAIL_DEGRADATION_AT_P90[self.environment.kind]
        return self.mean_latency_s() * (1.0 + degradation)

    # -- distribution ----------------------------------------------------------------
    def _parameters(self) -> Tuple[float, float]:
        """(floor, tail_scale) of the shifted exponential."""
        mean = self.mean_latency_s()
        p90 = self.p90_latency_s()
        tail_scale = (p90 - mean) / (_LN10 - 1.0)
        floor = mean - tail_scale
        if floor <= 0:
            raise ValueError(
                f"unphysical tail for {self.environment.kind}: "
                f"mean={mean}, p90={p90}"
            )
        return floor, tail_scale

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` GET latencies (seconds)."""
        floor, tail_scale = self._parameters()
        return floor + self._rng.numpy.exponential(tail_scale, size=count)

    def record(self, count: int) -> LatencyRecorder:
        recorder = LatencyRecorder(
            f"memcached-get/{self.environment.kind.value}"
        )
        recorder.extend(self.sample(count))
        return recorder
