"""ThymesisFlow endpoint attachment modules — paper §IV-A1/§IV-A2.

* :class:`ComputeEndpoint` — the recipient side. Receives cacheline
  transactions from the host bus (through an OpenCAPI **M1** port),
  re-bases them into the device-internal address space, translates them
  through the RMMU (donor effective address + network id) and forwards
  them via the routing layer. Matches responses to outstanding requests
  by transaction id.
* :class:`MemoryStealingEndpoint` — the donor side. Entirely passive:
  it masters arriving transactions into the donor's effective address
  space through an OpenCAPI **C1** port (authorized by the stealing
  process's PASID) and sends each response back on the channel the
  request arrived from, echoing the request's network identifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from ..errors import RemoteMemoryError
from ..mem.address import AddressRange, CACHELINE_BYTES
from ..obs import events as _events
from ..obs import trace as _trace
from ..opencapi.ports import OpenCapiC1Port
from ..opencapi.transactions import MemTransaction, ResponseCode, TLCommand
from ..sim.engine import Process, Signal, Simulator
from ..sim.stats import LatencyRecorder
from .hbm import HbmCache
from .rmmu import Rmmu, RmmuFault
from .routing import RoutingLayer

__all__ = [
    "ComputeEndpoint",
    "MemoryStealingEndpoint",
    "EndpointError",
    "RetryPolicy",
]


class EndpointError(RuntimeError):
    """Endpoint misconfiguration (datapath errors become bus responses)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for watchdog-expired transactions.

    Attempt ``k`` (zero-based) that times out is retried after
    ``min(backoff_base_s * multiplier**k, backoff_max_s)`` of simulated
    time, up to ``max_attempts`` total attempts. After exhaustion the
    endpoint raises :class:`~repro.errors.RemoteMemoryError` — a
    structured failure the resilience layer can act on — instead of
    retrying forever or hanging the event loop.
    """

    max_attempts: int = 3
    backoff_base_s: float = 2e-6
    multiplier: float = 2.0
    backoff_max_s: float = 100e-6

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")

    def backoff_s(self, failed_attempts: int) -> float:
        """Delay before the retry following ``failed_attempts`` misses."""
        delay = self.backoff_base_s * self.multiplier ** max(
            0, failed_attempts - 1
        )
        return min(delay, self.backoff_max_s)


class ComputeEndpoint:
    """Introduces remote memory into the host's real address space.

    Acts as a :class:`~repro.opencapi.bus.BusTarget` (behind the M1
    port): firmware maps ``window`` in the host real address space; the
    device-internal view of an arriving transaction is its offset within
    that window ("the Device Internal Address Space is always starting
    from address 0x0").
    """

    def __init__(
        self,
        sim: Simulator,
        rmmu: Rmmu,
        routing: RoutingLayer,
        name: str = "compute-ep",
        transaction_timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.rmmu = rmmu
        self.routing = routing
        self.name = name
        #: When set, an outstanding transaction older than this is failed
        #: back to the bus (donor crash / unrecoverable link loss).
        self.transaction_timeout_s = transaction_timeout_s
        #: When set (together with ``transaction_timeout_s``), expired
        #: transactions are retried with fresh ids under exponential
        #: backoff; exhaustion raises :class:`RemoteMemoryError`. With
        #: no policy the endpoint keeps its legacy single-attempt
        #: behaviour (timeout -> ``ResponseCode.RETRY`` bus response).
        self.retry_policy = retry_policy
        self.window: Optional[AddressRange] = None
        self.hbm: Optional[HbmCache] = None
        self._outstanding: Dict[int, Signal] = {}
        #: Reassembly state for outstanding burst requests, keyed by the
        #: burst's base transaction id. Response segments arrive as the
        #: donor's per-frame serves complete; the request's signal fires
        #: when the last line lands.
        self._bulk_rx: Dict[int, dict] = {}
        #: Called with ``(endpoint, RemoteMemoryError)`` when a
        #: transaction exhausts its retry budget — the health monitor's
        #: failure-detection signal.
        self._failure_listeners: List[
            Callable[["ComputeEndpoint", RemoteMemoryError], None]
        ] = []
        self.rtt = LatencyRecorder(f"{name}.rtt")
        self.requests = 0
        self.hbm_hits = 0
        self.fault_responses = 0
        self.timeouts = 0
        self.retries = 0
        self.retries_exhausted = 0

    def assign_window(self, window: AddressRange) -> None:
        """Firmware assigns the real-address window backing this device."""
        self.window = window

    def enable_hbm_cache(self, cache: HbmCache) -> None:
        """Install the §VII HBM caching layer in front of the RMMU."""
        self.hbm = cache

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    # -- BusTarget protocol ----------------------------------------------------------
    def handle(self, txn: MemTransaction) -> Process:
        return self.sim.process(self._handle(txn), name=f"{self.name}.txn")

    def _handle(self, txn: MemTransaction) -> Generator:
        if self.window is None:
            raise EndpointError(f"{self.name}: no window assigned")
        started = self.sim.now
        self.requests += txn.burst
        internal_address = self.window.offset_of(txn.address)
        # HBM caching layer (§VII): reads that hit never leave the card.
        # Bulk transfers bypass the cache (their working sets are moved
        # once, not re-referenced), but bulk writes must still
        # invalidate any cached lines they overwrite.
        if (
            self.hbm is not None
            and txn.burst == 1
            and txn.command.name == "RD_MEM"
        ):
            cached = self.hbm.lookup(internal_address, txn.size)
            if cached is not None:
                self.hbm_hits += 1
                if _trace.ENABLED:
                    _trace.txn_mark(
                        self.sim.now, txn.base_txn_id, "hbm.hit", self.name
                    )
                yield self.hbm.config.hit_latency_s
                self.rtt.add(self.sim.now - started)
                return txn.make_response(data=cached)
        try:
            remote_address, network_id = self.rmmu.translate(
                internal_address, lines=txn.burst
            )
        except RmmuFault:
            self.fault_responses += txn.burst
            return txn.make_response(code=ResponseCode.ADDRESS_ERROR)
        if _trace.ENABLED:
            _trace.txn_mark(
                self.sim.now, txn.base_txn_id, "rmmu.translate", self.rmmu.name
            )
        outbound = txn.with_address(remote_address)
        outbound.network_id = network_id
        policy = self.retry_policy
        attempts = (
            policy.max_attempts
            if policy is not None and self.transaction_timeout_s is not None
            else 1
        )
        response = None
        for attempt in range(attempts):
            if attempt:
                # Backoff, then re-send under fresh transaction ids so a
                # straggler response to the timed-out attempt cannot be
                # confused with (or double-complete) the retry.
                delay = policy.backoff_s(attempt)
                if delay > 0:
                    yield delay
                outbound = outbound.reissue()
                self.retries += txn.burst
                if _trace.ENABLED:
                    _trace.txn_mark(
                        self.sim.now, txn.base_txn_id, "endpoint.retry",
                        self.name,
                    )
                if _events.ENABLED:
                    _events.emit(
                        self.sim.now,
                        "endpoint.retry",
                        endpoint=self.name,
                        txn=txn.base_txn_id,
                        attempt=attempt,
                        network_id=outbound.network_id,
                    )
            response = yield from self._attempt(outbound, started)
            if response is not None:
                break
            # Watchdog fired: the donor (or every path to it) is gone.
            self.timeouts += txn.burst
        if response is None:
            if policy is None:
                return txn.make_response(code=ResponseCode.RETRY)
            self.retries_exhausted += txn.burst
            error = RemoteMemoryError(
                f"{self.name}: transaction {txn.base_txn_id} to network "
                f"{outbound.network_id:#x} failed after {attempts} "
                f"attempts ({self.sim.now - started:.2e}s)",
                endpoint=self.name,
                network_id=outbound.network_id,
                txn_id=txn.base_txn_id,
                attempts=attempts,
                elapsed_s=self.sim.now - started,
            )
            if _events.ENABLED:
                _events.emit(
                    self.sim.now,
                    "endpoint.retries_exhausted",
                    endpoint=self.name,
                    txn=txn.base_txn_id,
                    attempts=attempts,
                    network_id=outbound.network_id,
                    elapsed_s=self.sim.now - started,
                )
            for listener in self._failure_listeners:
                listener(self, error)
            raise error
        if txn.burst == 1:
            # Burst round-trips are recorded per line as each response
            # segment arrives (see deliver_response).
            self.rtt.add(self.sim.now - started)
        if self.hbm is not None:
            if txn.burst > 1:
                if txn.command.name == "WRITE_MEM":
                    self.hbm.invalidate_range(internal_address, txn.size)
            elif txn.command.name == "RD_MEM" and response.data is not None:
                self.hbm.fill(internal_address, response.data)
            elif txn.command.name == "WRITE_MEM" and txn.data is not None:
                self.hbm.write_through(internal_address, txn.data)
        return response

    def _attempt(
        self, outbound: MemTransaction, started: float
    ) -> Generator:
        """Send one attempt and wait for its response (None = expired)."""
        done = Signal(name=f"{self.name}.txn{outbound.txn_id}", oneshot=True)
        self._outstanding[outbound.txn_id] = done
        if outbound.burst > 1:
            self._bulk_rx[outbound.txn_id] = {
                "lines": outbound.burst,
                "left": outbound.burst,
                "data": (
                    bytearray(outbound.size)
                    if outbound.command == TLCommand.RD_MEM
                    else None
                ),
                "code": ResponseCode.OK,
                "started": started,
            }
        if self.transaction_timeout_s is not None:
            self.sim.schedule(
                self.transaction_timeout_s, self._expire, outbound.txn_id
            )
        yield self.routing.forward(outbound)
        response = yield done
        return response

    def add_failure_listener(
        self,
        listener: Callable[["ComputeEndpoint", RemoteMemoryError], None],
    ) -> None:
        """Subscribe to retry-exhaustion events (health monitoring)."""
        self._failure_listeners.append(listener)

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector: request mix, HBM hits, faults, RTT stats."""

        def collect(reg):
            base = dict(endpoint=self.name, **labels)
            reg.gauge("endpoint.requests", **base).set(self.requests)
            reg.gauge("endpoint.hbm_hits", **base).set(self.hbm_hits)
            reg.gauge("endpoint.fault_responses", **base).set(
                self.fault_responses
            )
            reg.gauge("endpoint.timeouts", **base).set(self.timeouts)
            reg.gauge("endpoint.retries", **base).set(self.retries)
            reg.gauge("endpoint.retries_exhausted", **base).set(
                self.retries_exhausted
            )
            reg.gauge("endpoint.outstanding", **base).set(
                len(self._outstanding)
            )
            if self.rtt.count:
                reg.gauge("endpoint.rtt_mean_s", **base).set(self.rtt.mean)
                reg.gauge("endpoint.rtt_p99_s", **base).set(
                    self.rtt.percentile(99)
                )

        registry.add_collector(collect)

    def _expire(self, txn_id: int) -> None:
        pending = self._outstanding.pop(txn_id, None)
        self._bulk_rx.pop(txn_id, None)
        if pending is not None:
            pending.fire(None)

    # -- network ingress (responses coming back) ----------------------------------------
    def deliver_response(self, txn: MemTransaction, channel: int) -> None:
        if not txn.is_response:
            raise EndpointError(
                f"{self.name}: unexpected non-response on network: {txn!r}"
            )
        base_id = txn.txn_id - txn.burst_offset
        gather = self._bulk_rx.get(base_id)
        if gather is not None:
            self._gather_segment(base_id, gather, txn)
            return
        done = self._outstanding.pop(txn.txn_id, None)
        if done is None:
            # A response for a request satisfied by replayed duplicate —
            # drop it; the id matcher already completed the bus txn.
            return
        done.fire(txn)

    def _gather_segment(
        self, base_id: int, gather: dict, txn: MemTransaction
    ) -> None:
        """Fold one burst response segment into the reassembly buffer."""
        now = self.sim.now
        started = gather["started"]
        self.rtt.add_repeated(now - started, txn.burst)
        if gather["data"] is not None and txn.data is not None:
            offset = txn.burst_offset * CACHELINE_BYTES
            gather["data"][offset : offset + len(txn.data)] = txn.data
        if txn.response_code is not ResponseCode.OK:
            gather["code"] = txn.response_code
        gather["left"] -= txn.burst
        if gather["left"] > 0:
            return
        del self._bulk_rx[base_id]
        done = self._outstanding.pop(base_id, None)
        if done is None:
            return
        assembled = MemTransaction(
            txn.command,
            address=txn.address - txn.burst_offset * CACHELINE_BYTES,
            size=(
                len(gather["data"])
                if gather["data"] is not None
                else gather["lines"] * CACHELINE_BYTES
            ),
            # The reassembly bytearray is handed over as-is: nothing
            # writes it after the last segment lands, and copying it to
            # bytes was the single largest allocation on the read path.
            data=gather["data"] if gather["data"] is not None else None,
            txn_id=base_id,
            network_id=txn.network_id,
            arrival_channel=txn.arrival_channel,
            response_code=gather["code"],
        )
        done.fire(assembled)


class MemoryStealingEndpoint:
    """Exposes donated local memory to a remote compute node.

    Configured once with the stealing process's PASID; afterwards "the
    memory-stealing endpoint is passive and does not require further
    configuration" — every arriving request is mastered into host memory
    and answered on its arrival channel.
    """

    def __init__(
        self,
        sim: Simulator,
        c1_port: OpenCapiC1Port,
        routing: RoutingLayer,
        name: str = "memory-ep",
    ):
        self.sim = sim
        self.c1 = c1_port
        self.routing = routing
        self.name = name
        self.pasid: Optional[int] = None
        self.served = 0
        self.denied = 0

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector: served/denied request counts."""

        def collect(reg):
            base = dict(endpoint=self.name, **labels)
            reg.gauge("endpoint.served", **base).set(self.served)
            reg.gauge("endpoint.denied", **base).set(self.denied)

        registry.add_collector(collect)

    def set_pasid(self, pasid: int) -> None:
        """Register the memory-stealing process's address space id."""
        self.pasid = pasid

    def deliver_request(self, txn: MemTransaction, channel: int) -> None:
        if not txn.is_request:
            raise EndpointError(
                f"{self.name}: unexpected non-request on network: {txn!r}"
            )
        self.sim.process(self._serve(txn), name=f"{self.name}.serve")

    def _serve(self, txn: MemTransaction) -> Generator:
        txn.pasid = self.pasid
        response = yield self.c1.master(txn)
        if response.response_code is ResponseCode.ACCESS_DENIED:
            self.denied += txn.burst
        else:
            self.served += txn.burst
        response.arrival_channel = txn.arrival_channel
        response.network_id = txn.network_id
        yield self.routing.forward_response(response)
