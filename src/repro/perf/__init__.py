"""Architectural performance counters: CPI stacks, IPC/UCC aggregation."""

from .counters import PerfAggregator, PerfSample
from .cpi import CpiBreakdown, CpiModel

__all__ = ["CpiModel", "CpiBreakdown", "PerfSample", "PerfAggregator"]
