"""Differential tests: batched bulk transfers vs the per-line formulation.

The bulk datapath carries runs of contiguous cachelines as single burst
transactions purely as a *simulator* optimization — the modelled
hardware behaviour must be indistinguishable from issuing the same
lines as concurrent per-line transactions. These tests run identical
scenarios in both modes and require bit-identical stored bytes,
bit-identical final simulated time, and identical protocol counters at
every LLC, DRAM and bus in the testbed — including under injected
frame loss and corruption, where the replay machinery must fire
identically in both formulations.
"""

import pytest

from repro.mem import MIB
from repro.net.faults import FaultInjector
from repro.osmodel import NumaBalancer, PagePolicy
from repro.testbed import RemoteBuffer, Testbed

LLC_COUNTERS = [
    "frames_built",
    "control_frames",
    "replays_requested",
    "replays_served",
    "frames_corrupted",
    "frames_out_of_order",
    "frames_duplicate",
    "nops_padded",
    "txns_sent",
    "txns_received",
    "timeout_recoveries",
]


def _snapshot(testbed):
    """Every externally-visible protocol counter in the testbed."""
    state = {"sim.now": testbed.sim.now}
    for node in (testbed.node0, testbed.node1):
        host = node.hostname
        for index, llc in enumerate(node.device.llcs):
            for counter in LLC_COUNTERS:
                state[f"{host}.llc{index}.{counter}"] = getattr(llc, counter)
            state[f"{host}.llc{index}.credits"] = llc.credits_available
        state[f"{host}.dram.reads"] = node.dram.reads
        state[f"{host}.dram.writes"] = node.dram.writes
        state[f"{host}.bus.loads"] = node.bus.loads
        state[f"{host}.bus.stores"] = node.bus.stores
        rtt = node.device.compute.rtt
        state[f"{host}.rtt.count"] = rtt.count
        state[f"{host}.rtt.mean"] = rtt.mean
        state[f"{host}.rtt.max"] = rtt.stats.maximum
        state[f"{host}.forwarded"] = node.device.routing.forwarded
        state[f"{host}.responses"] = node.device.routing.responses_returned
        state[f"{host}.per_channel_tx"] = tuple(
            node.device.routing.per_channel_tx
        )
    return state


def _assert_equivalent(batched, unbatched):
    """Compare snapshots key by key for a readable failure message."""
    assert batched.keys() == unbatched.keys()
    different = {
        key: (batched[key], unbatched[key])
        for key in batched
        if batched[key] != unbatched[key]
    }
    assert different == {}


def _stream_scenario(batched, faults=None, bonded=False):
    """STREAM-style triad chunk: bulk write then bulk read-back."""
    injectors = {0: faults} if faults is not None else None
    testbed = Testbed(fault_injectors=injectors)
    attachment = testbed.attach(
        "node0", 4 * MIB, memory_host="node1", bonded=bonded
    )
    buffer = RemoteBuffer.allocate(
        testbed.node0,
        2 * testbed.node0.spec.page_bytes,
        policy=PagePolicy.BIND,
        numa_nodes=[attachment.plan.numa_node_id],
        batched=batched,
    )
    blob = bytes(range(256)) * (len(buffer) // 256)
    buffer.write(0, blob)
    data = buffer.read(0, len(blob))
    return testbed, data, blob


class TestStreamEquivalence:
    def test_bulk_write_readback_identical(self):
        tb_b, data_b, blob = _stream_scenario(batched=True)
        tb_u, data_u, _ = _stream_scenario(batched=False)
        assert data_b == blob
        assert data_u == blob
        _assert_equivalent(_snapshot(tb_b), _snapshot(tb_u))

    def test_bonded_route_sprays_identically(self):
        tb_b, data_b, blob = _stream_scenario(batched=True, bonded=True)
        tb_u, data_u, _ = _stream_scenario(batched=False, bonded=True)
        assert data_b == blob == data_u
        snap_b, snap_u = _snapshot(tb_b), _snapshot(tb_u)
        _assert_equivalent(snap_b, snap_u)
        # The bonded flow really used both channels.
        assert snap_b["node0.per_channel_tx"][1] > 0

    def test_unaligned_ranges_identical(self):
        """Head/tail fragments around the batched windows line up too."""

        def run(batched):
            testbed = Testbed()
            attachment = testbed.attach("node0", 4 * MIB,
                                        memory_host="node1")
            buffer = RemoteBuffer.allocate(
                testbed.node0,
                2 * testbed.node0.spec.page_bytes,
                policy=PagePolicy.BIND,
                numa_nodes=[attachment.plan.numa_node_id],
                batched=batched,
            )
            blob = bytes([0xA5]) * 5000
            buffer.write(37, blob)
            data = buffer.read(37, len(blob))
            return testbed, data, blob

        tb_b, data_b, blob = run(True)
        tb_u, data_u, _ = run(False)
        assert data_b == blob == data_u
        _assert_equivalent(_snapshot(tb_b), _snapshot(tb_u))


class TestMigrationEquivalence:
    def _migrate(self, bulk):
        testbed = Testbed()
        attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
        testbed.node0.bulk_transfers = bulk
        remote_node = attachment.plan.numa_node_id
        buffer = RemoteBuffer.allocate(
            testbed.node0,
            2 * testbed.node0.spec.page_bytes,
            policy=PagePolicy.BIND,
            numa_nodes=[remote_node],
            batched=bulk,
        )
        blob = bytes(range(256)) * (testbed.node0.spec.page_bytes // 256)
        buffer.write(0, blob)
        balancer = NumaBalancer(testbed.node0.kernel, sample_period=1,
                                min_samples=2)
        for _ in range(6):
            balancer.record_access(buffer.mapping, 0, cpu_node=0)
        assert balancer.balance(buffer.mapping) == 1
        assert buffer.mapping.pages[0].node_id == 0
        data = buffer.read(0, len(blob))
        return testbed, data, blob

    def test_page_migration_identical(self):
        tb_b, data_b, blob = self._migrate(bulk=True)
        tb_u, data_u, _ = self._migrate(bulk=False)
        assert data_b == blob == data_u
        _assert_equivalent(_snapshot(tb_b), _snapshot(tb_u))


class TestFaultEquivalence:
    """Injected frame loss/corruption must trigger identical replays."""

    def _faulted(self, batched, drops=0, corruptions=0):
        faults = FaultInjector()
        # Arm the faults before any traffic: the Nth data frame crossing
        # channel 0 node0->node1 is damaged in both formulations.
        faults.force_drop_next(drops)
        faults.force_corrupt_next(corruptions)
        return _stream_scenario(batched=batched, faults=faults)

    @pytest.mark.parametrize("drops,corruptions", [(1, 0), (0, 1), (2, 1)])
    def test_replay_identical(self, drops, corruptions):
        tb_b, data_b, blob = self._faulted(True, drops, corruptions)
        tb_u, data_u, _ = self._faulted(False, drops, corruptions)
        assert data_b == blob == data_u
        snap_b, snap_u = _snapshot(tb_b), _snapshot(tb_u)
        _assert_equivalent(snap_b, snap_u)
        # The fault actually exercised the replay machinery.
        recovered = (
            snap_b["node1.llc0.replays_requested"]
            + snap_b["node1.llc0.frames_corrupted"]
            + snap_b["node1.llc0.timeout_recoveries"]
            + snap_b["node0.llc0.timeout_recoveries"]
        )
        assert recovered > 0


class TestLazyLatencyRecorder:
    """The lazily-sorted LatencyRecorder must answer exactly like a
    sorted-reference implementation, whatever order queries interleave
    with appends."""

    def test_interleaved_queries_match_reference(self):
        from repro.sim.stats import LatencyRecorder, percentile

        recorder = LatencyRecorder("lazy")
        reference = []
        values = [5.0, 1.0, 3.0, 9.0, 7.0, 2.0, 8.0, 4.0, 6.0, 0.5]
        for index, value in enumerate(values):
            recorder.add(value)
            reference.append(value)
            if index % 3 == 2:  # query mid-stream, then keep appending
                ordered = sorted(reference)
                assert recorder.percentile(50) == percentile(ordered, 50)
                assert recorder.fraction_below(4.0) == (
                    sum(1 for v in ordered if v < 4.0) / len(ordered)
                )
        ordered = sorted(reference)
        assert recorder.percentile(90) == percentile(ordered, 90)
        assert recorder.cdf() == [
            (v, (i + 1) / len(ordered)) for i, v in enumerate(ordered)
        ]
        assert recorder.count == len(values)
        assert recorder.mean == pytest.approx(sum(values) / len(values))
