"""Unified error hierarchy and the versioned REST error contract."""

import pytest

from repro.control import RestApi, UnknownAttachmentError
from repro.control.graph import GraphError
from repro.control.orchestrator import OrchestrationError
from repro.control.planner import NoPathError
from repro.control.security import AuthError, Role
from repro.errors import (
    HTTP_STATUS_BY_CODE,
    RemoteMemoryError,
    ReproError,
    http_status_for,
)
from repro.mem.address import AddressError
from repro.net.packet import PacketSwitchError
from repro.net.switch import SwitchError
from repro.resilience import make_rest_fault_hook
from repro.testbed import RackTestbed, Testbed

MIB = 1 << 20


class TestErrorHierarchy:
    def test_every_domain_error_is_a_repro_error(self):
        for cls in (
            SwitchError,
            PacketSwitchError,
            OrchestrationError,
            UnknownAttachmentError,
            GraphError,
            NoPathError,
            AuthError,
            AddressError,
            RemoteMemoryError,
        ):
            assert issubclass(cls, ReproError)

    def test_stdlib_bases_preserved(self):
        # Callers that caught stdlib exceptions keep working.
        assert issubclass(AddressError, ValueError)
        assert issubclass(AuthError, PermissionError)
        assert issubclass(SwitchError, RuntimeError)
        assert issubclass(RemoteMemoryError, RuntimeError)

    def test_stable_codes(self):
        assert SwitchError("x").code == "switch/circuit"
        assert PacketSwitchError("x").code == "switch/packet-session"
        assert GraphError("x").code == "graph/inconsistent"
        assert NoPathError("x").code == "graph/no-path"
        assert AuthError("x").code == "auth/denied"
        assert AddressError("x").code == "mem/address"
        assert OrchestrationError("x").code == "control/orchestration"
        assert (
            UnknownAttachmentError("x").code
            == "control/unknown-attachment"
        )
        assert RemoteMemoryError("x").code == "memory/unreachable"

    def test_describe_shape(self):
        error = RemoteMemoryError("gone", endpoint="node0", attempts=3)
        body = error.describe()
        assert body["error"] == "gone"
        assert body["code"] == "memory/unreachable"
        assert body["details"] == {"endpoint": "node0", "attempts": 3}

    def test_instance_code_override(self):
        error = ReproError("odd", code="memory/quarantined")
        assert error.code == "memory/quarantined"

    def test_http_table_covers_every_declared_code(self):
        for cls in (
            SwitchError,
            PacketSwitchError,
            OrchestrationError,
            UnknownAttachmentError,
            GraphError,
            NoPathError,
            AuthError,
            AddressError,
            RemoteMemoryError,
        ):
            assert cls.code in HTTP_STATUS_BY_CODE

    def test_http_status_for(self):
        assert http_status_for("auth/denied") == 401
        assert http_status_for("control/unknown-attachment") == 404
        assert http_status_for("memory/unreachable") == 502
        assert http_status_for("never-heard-of-it") == 500


@pytest.fixture
def testbed():
    return Testbed()


@pytest.fixture
def api(testbed):
    return RestApi(testbed.plane)


class TestVersionedErrorBodies:
    def test_unknown_attachment_maps_via_code_table(self, api, testbed):
        status, body = api.handle(
            "DELETE", "/v1/attachments/99", token=testbed.admin_token
        )
        assert status == 404
        assert body["code"] == "control/unknown-attachment"
        assert "99" in body["error"]

    def test_auth_denied_carries_code(self, api):
        status, body = api.handle("GET", "/v1/state", token=None)
        assert status == 401
        assert body["code"] == "auth/denied"

    def test_no_route_and_method_not_allowed(self, api, testbed):
        status, body = api.handle(
            "GET", "/v1/nope", token=testbed.admin_token
        )
        assert (status, body["code"]) == (404, "request/no-route")
        status, body = api.handle(
            "PUT", "/v1/attachments", token=testbed.admin_token
        )
        assert (status, body["code"]) == (
            405,
            "request/method-not-allowed",
        )

    def test_invalid_request_code(self, api, testbed):
        status, body = api.handle(
            "POST",
            "/v1/attachments",
            body={"size": 1},
            token=testbed.admin_token,
        )
        assert status == 400
        assert body["code"] == "request/invalid"


class TestHealthRoute:
    def test_unmonitored_plane(self, api, testbed):
        status, body = api.handle(
            "GET", "/v1/health", token=testbed.admin_token
        )
        assert status == 200
        assert body == {"status": "unmonitored", "attachments": []}

    def test_requires_read_permission(self, api):
        status, body = api.handle("GET", "/v1/health", token=None)
        assert status == 401
        assert body["code"] == "auth/denied"

    def test_monitored_plane_reports_watches(self):
        from repro.control import HealthMonitor

        rack = RackTestbed(nodes=2, channels_per_node=1)
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        monitor = HealthMonitor(rack)
        monitor.watch(attachment)
        api = RestApi(rack.plane, monitor=monitor)
        status, body = api.handle(
            "GET", "/v1/health", token=rack.admin_token
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["attachments"][0]["state"] == "healthy"
        monitor.report_failure(attachment.attachment_id, "probe lost")
        status, body = api.handle(
            "GET", "/v1/health", token=rack.admin_token
        )
        assert body["status"] == "degraded"


class TestFaultRoute:
    def test_no_hook_is_structured_503(self, api, testbed):
        status, body = api.handle(
            "POST",
            "/v1/faults",
            body={"campaign": "link-kill", "attachment": 1},
            token=testbed.admin_token,
        )
        assert status == 503
        assert body["code"] == "resilience/no-injector"

    def test_inject_named_campaign(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        api = RestApi(rack.plane, fault_hook=make_rest_fault_hook(rack))
        status, body = api.handle(
            "POST",
            "/v1/faults",
            body={
                "campaign": "link-flap",
                "attachment": attachment.attachment_id,
                "at_s": 1e-6,
                "duration_s": 2e-6,
            },
            token=rack.admin_token,
        )
        assert status == 202
        assert body["injected"] == "link-flap"
        assert body["target_host"] == "node1"
        assert body["links"]  # the lender's fault domain
        # The campaign is really armed: the injectors flip down.
        rack.sim.run(until=rack.sim.now + 1.5e-6)
        assert all(
            link.faults.down for link in rack.links_of("node1")
        )

    def test_unknown_campaign_maps_to_400(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        api = RestApi(rack.plane, fault_hook=make_rest_fault_hook(rack))
        status, body = api.handle(
            "POST",
            "/v1/faults",
            body={
                "campaign": "meteor-strike",
                "attachment": attachment.attachment_id,
            },
            token=rack.admin_token,
        )
        assert status == 400
        assert body["code"] == "resilience/unknown-campaign"

    def test_fault_injection_requires_attach_permission(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        viewer = rack.plane.acl.issue_token(Role.VIEWER)
        api = RestApi(rack.plane, fault_hook=make_rest_fault_hook(rack))
        status, body = api.handle(
            "POST",
            "/v1/faults",
            body={"campaign": "link-kill", "attachment": 1},
            token=viewer,
        )
        assert status == 401
        assert body["code"] == "auth/denied"


class TestForceDetachRoute:
    def test_force_flag_passes_through(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        api = RestApi(rack.plane)
        status, _ = api.handle(
            "DELETE",
            f"/v1/attachments/{attachment.attachment_id}",
            body={"force": True},
            token=rack.admin_token,
        )
        assert status == 204
        status, body = api.handle(
            "GET",
            f"/v1/attachments/{attachment.attachment_id}",
            token=rack.admin_token,
        )
        assert status == 404
        assert body["code"] == "control/unknown-attachment"
