"""Software-defined control plane: state graph, planning, security, REST.

``repro.control.server`` (the asyncio HTTP binding) and
``repro.control.loadgen`` (the open-loop load generator) are imported
lazily by their users rather than re-exported here — they pull in
asyncio plumbing that the in-process surface doesn't need.
"""

from .api import RestApi, RouteSpec, route_catalogue
from .graph import GraphError, NodeKind, StateGraph
from .health import FailoverReport, HealthMonitor, HealthState
from .orchestrator import (
    Attachment,
    ControlPlane,
    OrchestrationError,
    UnknownAttachmentError,
)
from .planner import NoPathError, PathPlanner, PlannedPath
from .qos import (
    AdmissionQueue,
    DrainingError,
    NoHeadroomError,
    OverloadedError,
    QosClass,
    QuotaExceededError,
    QuotaLedger,
    TenantSpec,
)
from .security import (
    AccessControl,
    AuthError,
    Permission,
    PlaneTrust,
    Role,
)
from .switching import SwitchDriver, extract_switch_hops

__all__ = [
    "ControlPlane",
    "Attachment",
    "OrchestrationError",
    "UnknownAttachmentError",
    "HealthMonitor",
    "HealthState",
    "FailoverReport",
    "StateGraph",
    "NodeKind",
    "GraphError",
    "PathPlanner",
    "PlannedPath",
    "NoPathError",
    "AccessControl",
    "Role",
    "Permission",
    "AuthError",
    "PlaneTrust",
    "RestApi",
    "RouteSpec",
    "route_catalogue",
    "QosClass",
    "TenantSpec",
    "QuotaLedger",
    "AdmissionQueue",
    "QuotaExceededError",
    "NoHeadroomError",
    "OverloadedError",
    "DrainingError",
    "SwitchDriver",
    "extract_switch_hops",
]
