"""Shared worker-process bootstrap for every multiprocess fan-out.

Two layers of the stack fan work out over a ``ProcessPoolExecutor``:
the sweep engine (independent :class:`~repro.sweep.RunSpec` runs) and
the rack-domain coordinator (:mod:`repro.sim.domains` — shards of *one*
run). Both need identical worker hygiene, and both used to duplicate
it; this module is the single source of truth for:

* **Backend pinning** — a worker re-importing ``repro.accel`` would
  re-resolve ``REPRO_BACKEND`` from its own environment; workers are
  pinned to the parent's active backend via initargs so every result
  in one run comes off one code path.
* **Tracing hygiene** — a worker forked mid-trace would inherit the
  parent's live tracer; every worker starts from a clean
  observability slate.
* **Job-count resolution** — ``SWEEP_JOBS`` is honored by both pools
  through :func:`resolve_jobs`, so one environment variable sizes the
  whole fleet.
* **Seed derivation** — :func:`derive_seed` is the stable (process-
  and hash-randomization-independent) way to split one base seed into
  per-worker / per-domain streams.
* **Registry capture** — :func:`worker_run_snapshot` is the flattened
  per-run metrics record workers ship back for the parent registry to
  ``merge_flat``.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Optional, Tuple, Union

from .. import accel
from ..obs import MetricsRegistry, disable_tracing

__all__ = [
    "JOBS_ENV",
    "normalize_jobs",
    "resolve_jobs",
    "pool_worker_init",
    "pool_initargs",
    "derive_seed",
    "worker_run_snapshot",
]

#: Environment variable sizing every multiprocess pool in the repo.
JOBS_ENV = "SWEEP_JOBS"


def normalize_jobs(jobs: Union[int, str, None]) -> int:
    """``'auto'`` -> CPU count; anything else -> positive int."""
    if jobs in (None, "", "auto"):
        return max(1, os.cpu_count() or 1)
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
    return count


def resolve_jobs(value: Union[int, str, None] = None,
                 env: str = JOBS_ENV) -> int:
    """Resolve a job count: explicit value, else ``$SWEEP_JOBS``, else 1.

    The explicit value (CLI flag, constructor argument) always wins;
    an unset/empty value falls back to the environment so campaigns
    can size both the sweep pool and the domain pool with one knob.
    """
    if value in (None, ""):
        value = os.environ.get(env) or "1"
        if value == "":  # pragma: no cover - defensive (env set to "")
            value = "1"
    return normalize_jobs(value)


def pool_worker_init(backend_name: Optional[str] = None) -> None:
    """Initializer every pool worker runs before its first task.

    A worker forked mid-trace would inherit the parent's live tracer;
    every task must simulate from a clean observability slate. Spawned
    workers re-import and would re-resolve ``REPRO_BACKEND`` from
    their own environment; pin them to the parent's active backend so
    one run's results all come off one code path (and match the
    backend recorded in cache fingerprints).
    """
    disable_tracing()
    if backend_name is not None:
        accel.select_backend(backend_name)


def pool_initargs() -> Tuple[str]:
    """The initargs matching :func:`pool_worker_init` (parent side)."""
    return (accel.ops.NAME,)


def derive_seed(base: int, *parts: Union[int, str]) -> int:
    """Derive a stable 63-bit child seed from ``base`` and name parts.

    sha256-based like :meth:`repro.sim.rng.SeededRNG.derive`, so the
    result is identical across processes regardless of hash
    randomization — the property per-domain and per-replicate seeds
    need for byte-identical parallel runs.
    """
    text = "/".join([str(base)] + [str(part) for part in parts])
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") & (2 ** 63 - 1)


def worker_run_snapshot(pool: str, elapsed_s: float,
                        **labels: str) -> Dict[str, float]:
    """Flattened per-run metrics record a worker ships to its parent.

    Both pools return ``{pool}.worker.runs`` / ``{pool}.worker.busy_s``
    series; the parent folds them with
    :meth:`~repro.obs.MetricsRegistry.merge_flat` so N workers' busy
    time sums into one fleet-wide summary.
    """
    registry = MetricsRegistry(f"{pool}-worker")
    registry.gauge(f"{pool}.worker.runs", **labels).adjust(1)
    registry.gauge(f"{pool}.worker.busy_s", **labels).adjust(elapsed_s)
    return registry.snapshot()
