"""Tail-loss recovery under sustained drop storms (§IV-A4 replay).

The LLC's replay protocol is only correct if its recovery counters
(``timeout_recoveries``, ``replays_served``) stay consistent with the
traffic counters — and if forced drops that land exactly across a
retention-timeout boundary neither lose nor duplicate a transaction.
"""

import pytest

from repro.core import LlcConfig, LlcEndpoint
from repro.net import DuplexChannel, FaultInjector, LinkConfig
from repro.opencapi import MemTransaction
from repro.sim import Simulator

REPLAY_TIMEOUT_S = 5e-6


def make_pair(faults_ab=None, faults_ba=None):
    sim = Simulator()
    config = LlcConfig(replay_timeout_s=REPLAY_TIMEOUT_S)
    channel = DuplexChannel(
        sim, LinkConfig(), faults_ab=faults_ab, faults_ba=faults_ba
    )
    a = LlcEndpoint(sim, channel.endpoint_view("a"), config, name="a")
    b = LlcEndpoint(sim, channel.endpoint_view("b"), config, name="b")
    return sim, a, b


def pump(sim, source, sink, count):
    sent_ids = []

    def sender():
        for index in range(count):
            txn = MemTransaction.write(
                index * 128, bytes([index % 251]) * 128
            )
            sent_ids.append(txn.txn_id)
            yield source.submit(txn)

    received = []

    def receiver():
        for _ in range(count):
            txn = yield sink.receive()
            received.append(txn)

    sim.process(sender(), name="sender")
    proc = sim.process(receiver(), name="receiver")
    sim.run(until=sim.now + 1.0)
    assert not proc.alive, "receiver did not get every transaction"
    return sent_ids, received


class TestDropStorm:
    def test_sustained_storm_exactly_once(self):
        """A storm of forced drops: every txn still lands exactly once."""
        injector = FaultInjector()
        sim, a, b = make_pair(faults_ab=injector)

        def storm():
            # Drop one frame every half replay-timeout for a sustained
            # window — replays themselves keep getting dropped.
            for _ in range(20):
                injector.force_drop_next(1)
                yield REPLAY_TIMEOUT_S / 2

        sim.process(storm(), name="storm")
        sent, received = pump(sim, a, b, 60)
        assert [t.txn_id for t in received] == sent
        assert injector.forced_drops_applied > 0
        # Every dropped data frame was recovered by some replay round
        # (receiver NACK or sender retention timeout — both funnel
        # through the sender's retransmit path).
        assert a.replays_served >= 1

    def test_counters_consistent_after_storm(self):
        injector = FaultInjector()
        sim, a, b = make_pair(faults_ab=injector)

        def storm():
            for _ in range(10):
                injector.force_drop_next(1)
                yield REPLAY_TIMEOUT_S / 2

        sim.process(storm(), name="storm")
        sent, received = pump(sim, a, b, 40)
        # No transaction lost or duplicated, whatever the wire did.
        assert a.txns_sent == 40
        assert b.txns_received == 40
        assert len({t.txn_id for t in received}) == 40
        # Replay accounting stays consistent: the number of replayed
        # frames is at least the number of frames the wire ate.
        assert a.replays_served >= 1
        # Retention drains once the storm ends (no immortal timers).
        sim.run(until=sim.now + 10 * REPLAY_TIMEOUT_S)

    def test_drop_across_retention_timeout_boundary(self):
        """Tail loss whose replay is *also* lost at the boundary.

        The last frame of the conversation is dropped — no following
        traffic exists to trigger a receiver-side replay request, so
        only the sender's retention timer can recover it. The first
        timeout replay (fired exactly one retention timeout after the
        send) is dropped too; the second timer round must deliver the
        transaction exactly once, not zero or two times.
        """
        injector = FaultInjector()
        sim, a, b = make_pair(faults_ab=injector)
        sent_ids = []
        received = []

        def receiver():
            for _ in range(2):
                received.append((yield b.receive()))

        proc = sim.process(receiver(), name="receiver")

        def sender():
            first = MemTransaction.write(0, b"x" * 128)
            sent_ids.append(first.txn_id)
            yield a.submit(first)
            # Let the first frame deliver; the next one is the tail.
            yield 4 * REPLAY_TIMEOUT_S
            injector.force_drop_next(2)  # original + boundary replay
            tail = MemTransaction.write(128, b"y" * 128)
            sent_ids.append(tail.txn_id)
            yield a.submit(tail)

        sim.process(sender(), name="sender")
        sim.run(until=sim.now + 1.0)
        assert not proc.alive, "tail transaction never delivered"
        assert [t.txn_id for t in received] == sent_ids
        assert injector.forced_drops_applied == 2
        # Two timer rounds: one for the lost original, one for the
        # lost replay that crossed the retention-timeout boundary.
        assert a.timeout_recoveries >= 2
        assert a.txns_sent == b.txns_received == 2

    def test_both_directions_storm(self):
        """Drops on data *and* ack paths: still exactly once."""
        ab = FaultInjector()
        ba = FaultInjector()
        sim, a, b = make_pair(faults_ab=ab, faults_ba=ba)

        def storm():
            for _ in range(8):
                ab.force_drop_next(1)
                ba.force_drop_next(1)
                yield REPLAY_TIMEOUT_S / 2

        sim.process(storm(), name="storm")
        sent, received = pump(sim, a, b, 30)
        assert [t.txn_id for t in received] == sent
        assert a.txns_sent == 30
        assert b.txns_received == 30
