"""Rack-scale disaggregation over a *packet-switched* fabric — §VII.

The alternative to :class:`~repro.testbed.rack.RackTestbed`'s circuit
switch: "with a packet-based network … a node could access all other
nodes in the rack with no need for reconfiguration, although packet
networks come with congestion issues as network links are shared
between many connections."

Every node uplink wraps its LLC frames in :class:`Addressed` envelopes;
the store-and-forward switch routes them by destination port with no
light-path setup. Congestion is real: flows converging on one node
share its downlink and the switch's bounded egress queue (drops are
absorbed by the LLC replay protocol).

One modelling caveat, faithful to the current LLC design: each LLC
channel is a point-to-point session (frame ids are per-channel), so a
channel is still *logically pinned* to one peer at a time — the fabric
removes the optical reconfiguration delay and the physical circuit
exclusivity, not the session pinning. True any-to-any sharing of one
channel would need per-peer LLC sessions (future work, as in the
paper).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..control.orchestrator import ControlPlane
from ..control.security import Role
from ..core.llc import LlcConfig
from ..net.link import ChannelEndpointView, LinkConfig, SerialLink
from ..net.packet import Addressed, PacketSwitch, PacketSwitchError
from ..sim.engine import Simulator
from .base import TestbedBase
from .node import Ac922Node, NodeSpec

__all__ = ["PacketRackTestbed", "AddressedUplink", "PacketFabricDriver"]


class AddressedUplink:
    """Tx-side adapter: wraps LLC frames for the packet fabric.

    Presents the :class:`SerialLink` send interface the LLC expects and
    stamps each frame with the currently-pinned destination port.
    """

    def __init__(self, link: SerialLink):
        self.link = link
        self.destination_port: Optional[int] = None
        self.frames_unpinned = 0

    def try_send(self, payload, size_bytes: int,
                 pre_corrupted: bool = False) -> bool:
        if self.destination_port is None:
            # No session pinned: the frame has nowhere to go (parallels
            # dark fibre on the circuit fabric).
            self.frames_unpinned += 1
            return True
        return self.link.try_send(
            Addressed(self.destination_port, payload),
            size_bytes,
            pre_corrupted=pre_corrupted,
        )

    def send(self, payload, size_bytes: int, pre_corrupted: bool = False):
        if self.destination_port is None:
            self.frames_unpinned += 1
            from ..sim.engine import Signal

            done = Signal(oneshot=True)
            done.fire()
            return done
        return self.link.send(
            Addressed(self.destination_port, payload),
            size_bytes,
            pre_corrupted=pre_corrupted,
        )


class PacketFabricDriver:
    """Control-plane driver pinning LLC sessions over the packet fabric.

    Same interface as :class:`~repro.control.switching.SwitchDriver`
    (the orchestrator is agnostic), but "connect" just sets destination
    ports on the two uplinks — there is no optical path to program and
    no reconfiguration blackout.
    """

    def __init__(
        self,
        name: str,
        uplinks: Dict[int, AddressedUplink],
        on_circuit_up: Optional[Callable[[int, int], None]] = None,
        on_circuit_down: Optional[Callable[[int, int], None]] = None,
    ):
        self.name = name
        self.uplinks = uplinks
        self.on_circuit_up = on_circuit_up
        self.on_circuit_down = on_circuit_down
        self._refs: Dict[Tuple[int, int], int] = {}

    def _canonical(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def connect(self, port_a: int, port_b: int) -> None:
        key = self._canonical(port_a, port_b)
        if self._refs.get(key, 0) > 0:
            self._refs[key] += 1
            return
        for (existing_a, existing_b), refs in self._refs.items():
            if refs > 0 and {existing_a, existing_b} & {port_a, port_b}:
                raise PacketSwitchError(
                    f"{self.name}: session conflict — ({port_a},{port_b}) "
                    f"vs existing ({existing_a},{existing_b})"
                )
        self.uplinks[port_a].destination_port = port_b
        self.uplinks[port_b].destination_port = port_a
        self._refs[key] = 1
        if self.on_circuit_up is not None:
            self.on_circuit_up(port_a, port_b)

    def disconnect(self, port_a: int, port_b: int) -> None:
        key = self._canonical(port_a, port_b)
        refs = self._refs.get(key, 0)
        if refs <= 0:
            raise PacketSwitchError(
                f"{self.name}: session ({port_a},{port_b}) not pinned"
            )
        if refs == 1:
            self.uplinks[port_a].destination_port = None
            self.uplinks[port_b].destination_port = None
            del self._refs[key]
            if self.on_circuit_down is not None:
                self.on_circuit_down(port_a, port_b)
        else:
            self._refs[key] = refs - 1

    def circuits(self) -> List[Tuple[int, int]]:
        return sorted(key for key, refs in self._refs.items() if refs > 0)


class PacketRackTestbed(TestbedBase):
    """N nodes on a store-and-forward packet switch, one control plane."""

    SWITCH_NAME = "psw0"

    def __init__(
        self,
        nodes: int = 4,
        channels_per_node: int = 2,
        spec: Optional[NodeSpec] = None,
        llc_config: Optional[LlcConfig] = None,
        link_config: Optional[LinkConfig] = None,
        forwarding_latency_s: float = 300e-9,
        egress_queue_frames: int = 64,
    ):
        if nodes < 2:
            raise ValueError(f"need >= 2 nodes, got {nodes}")
        self.sim = Simulator()
        self.spec = spec or NodeSpec()
        link_config = link_config or LinkConfig()
        self.channels_per_node = channels_per_node

        self.switch = PacketSwitch(
            self.sim,
            ports=nodes * channels_per_node,
            forwarding_latency_s=forwarding_latency_s,
            egress_queue_frames=egress_queue_frames,
            name=self.SWITCH_NAME,
        )
        self.nodes: List[Ac922Node] = []
        self.uplinks: Dict[int, AddressedUplink] = {}
        self._node_links: Dict[str, List[SerialLink]] = {}
        self.plane = ControlPlane()
        # Control events share the datapath's sim-time timeline.
        self.plane.clock = lambda: self.sim.now

        for index in range(nodes):
            node = Ac922Node(self.sim, f"node{index}", self.spec, llc_config)
            self.nodes.append(node)
            self._node_links[node.hostname] = []
            for channel in range(channels_per_node):
                port = index * channels_per_node + channel
                raw_up = SerialLink(
                    self.sim,
                    link_config,
                    name=f"node{index}.c{channel}.up",
                    rx_store=self.switch.ingress_store(port),
                )
                uplink = AddressedUplink(raw_up)
                self.uplinks[port] = uplink
                down = SerialLink(
                    self.sim,
                    link_config,
                    name=f"node{index}.c{channel}.down",
                )
                self.switch.attach_egress(port, down)
                node.device.connect_channel(ChannelEndpointView(uplink, down))
                self._node_links[node.hostname].extend((raw_up, down))

        driver = PacketFabricDriver(
            self.SWITCH_NAME,
            self.uplinks,
            on_circuit_up=self._sync_session_llcs,
            on_circuit_down=self._sync_session_llcs,
        )
        for node in self.nodes:
            self.plane.register_host(
                node.agent,
                transceivers=channels_per_node,
                donor_capacity_bytes=node.spec.dram_bytes // 2,
            )
        self.plane.add_switch(
            self.SWITCH_NAME, nodes * channels_per_node, driver=driver
        )
        for index in range(nodes):
            for channel in range(channels_per_node):
                port = index * channels_per_node + channel
                self.plane.add_switch_cable(
                    f"node{index}", channel, self.SWITCH_NAME, port
                )
        self.driver = driver
        self.admin_token = self.plane.acl.issue_token(Role.ADMIN)

    def _sync_session_llcs(self, port_a: int, port_b: int) -> None:
        """Link bring-up on a fresh session (§IV-A4 frame-id agreement)."""
        for port in (port_a, port_b):
            node_index, channel = divmod(port, self.channels_per_node)
            self.nodes[node_index].device.llcs[channel].reset_link()

    # -- topology hooks -----------------------------------------------------------
    # (No _settle_after_attach override: there is no reconfiguration
    # blackout — the packet fabric is usable immediately.)

    def _register_network(self, registry) -> None:
        for links in self._node_links.values():
            for link in links:
                link.register_metrics(registry)

    def links_of(self, hostname: str) -> List[SerialLink]:
        self.node(hostname)  # KeyError on unknown host
        return list(self._node_links[hostname])
