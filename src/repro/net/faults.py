"""Network fault injection: frame drops and bit corruption.

The LLC reliability scheme (credits + frame replay) only earns its keep
when the link actually misbehaves; this module provides the misbehaviour
deterministically from a seeded RNG so replay tests reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.rng import SeededRNG

__all__ = ["FaultInjector", "FaultDecision"]


@dataclass(frozen=True)
class FaultDecision:
    """Outcome for one frame traversal."""

    drop: bool = False
    corrupt: bool = False

    @property
    def clean(self) -> bool:
        return not (self.drop or self.corrupt)


class FaultInjector:
    """Per-frame Bernoulli drop/corrupt decisions, plus forced faults.

    ``force_drop_next``/``force_corrupt_next`` let tests and ablations
    inject a fault at an exact point rather than probabilistically.
    """

    def __init__(
        self,
        rng: Optional[SeededRNG] = None,
        drop_probability: float = 0.0,
        corrupt_probability: float = 0.0,
    ):
        for label, p in (
            ("drop_probability", drop_probability),
            ("corrupt_probability", corrupt_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")
        self.rng = rng or SeededRNG(0).derive("faults")
        self.drop_probability = drop_probability
        self.corrupt_probability = corrupt_probability
        self._forced_drops = 0
        self._forced_corruptions = 0
        #: Link-down state: while set, *every* frame is dropped — the
        #: macro-fault (dead cable, crashed peer) the campaign layer
        #: schedules, as opposed to per-frame Bernoulli noise.
        self.down = False
        self.frames_seen = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        #: Forced faults actually applied to a frame (as opposed to the
        #: pending ``force_*_next`` counts still waiting for traffic).
        self.forced_drops_applied = 0
        self.forced_corruptions_applied = 0
        #: Frames swallowed while the link was down.
        self.frames_dropped_down = 0

    def force_drop_next(self, count: int = 1) -> None:
        self._forced_drops += count

    def force_corrupt_next(self, count: int = 1) -> None:
        self._forced_corruptions += count

    def set_down(self, down: bool = True) -> None:
        """Kill (or revive) the link; scheduled by fault campaigns."""
        self.down = down

    def reseed(self, rng: SeededRNG) -> None:
        """Swap in a fresh Bernoulli stream (per-campaign hygiene).

        The REST fault hook derives one stream per POST from
        ``(seed, attachment, call index)`` and reseeds the (possibly
        pre-existing) injector with it, so repeated campaigns against
        the same links never replay each other's draws.
        """
        self.rng = rng

    def set_drop_probability(self, probability: float) -> None:
        """Adjust the Bernoulli drop rate (brownout campaigns)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {probability}"
            )
        self.drop_probability = probability

    def decide(self) -> FaultDecision:
        """Fate of the next frame crossing the link."""
        self.frames_seen += 1
        if self.down:
            self.frames_dropped += 1
            self.frames_dropped_down += 1
            return FaultDecision(drop=True)
        if self._forced_drops > 0:
            self._forced_drops -= 1
            self.forced_drops_applied += 1
            self.frames_dropped += 1
            return FaultDecision(drop=True)
        if self._forced_corruptions > 0:
            self._forced_corruptions -= 1
            self.forced_corruptions_applied += 1
            self.frames_corrupted += 1
            return FaultDecision(corrupt=True)
        if self.drop_probability and self.rng.bernoulli(self.drop_probability):
            self.frames_dropped += 1
            return FaultDecision(drop=True)
        if self.corrupt_probability and self.rng.bernoulli(
            self.corrupt_probability
        ):
            self.frames_corrupted += 1
            return FaultDecision(corrupt=True)
        return FaultDecision()

    @property
    def fault_count(self) -> int:
        return self.frames_dropped + self.frames_corrupted

    def breakdown(self) -> dict:
        """Per-kind fault accounting: forced vs. random, by outcome."""
        return {
            "frames_seen": self.frames_seen,
            "frames_dropped": self.frames_dropped,
            "frames_corrupted": self.frames_corrupted,
            "forced_drops": self.forced_drops_applied,
            "forced_corruptions": self.forced_corruptions_applied,
            "down_drops": self.frames_dropped_down,
            "random_drops": self.frames_dropped
            - self.forced_drops_applied
            - self.frames_dropped_down,
            "random_corruptions": (
                self.frames_corrupted - self.forced_corruptions_applied
            ),
            "fault_count": self.fault_count,
        }

    def collect_into(self, registry, **labels) -> None:
        """Copy the breakdown into ``net.faults.*`` registry gauges."""
        for key, value in self.breakdown().items():
            registry.gauge(f"net.faults.{key}", **labels).set(value)

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector for an injector used outside a SerialLink."""
        registry.add_collector(
            lambda reg: self.collect_into(reg, **labels)
        )
