"""Tests for the figures module and the ``python -m repro`` CLI."""

import pytest

from repro.figures import FIGURES, fig5, fig8, render, rtt


class TestFigures:
    def test_registry_covers_every_figure(self):
        assert set(FIGURES) == {
            "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "rtt"
        }

    def test_fig5_shape(self):
        title, headers, rows = fig5(threads=(4,))
        assert "Fig. 5" in title
        assert headers[0] == "threads"
        assert len(rows) == 4  # four kernels at one thread count

    def test_fig8_rows_per_config(self):
        _title, _headers, rows = fig8(samples=2_000)
        assert len(rows) == 5
        configs = [row[0] for row in rows]
        assert "local" in configs and "scale-out" in configs

    def test_rtt_values_near_950(self):
        _title, _headers, rows = rtt(samples=4)
        budget_ns = float(rows[0][1].split()[0])
        assert budget_ns == pytest.approx(960, abs=20)

    def test_render_aligns_columns(self):
        text = render(("T", ["a", "bb"], [["1", "2"], ["333", "4"]]))
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert len(lines) == 4


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "STREAM" in out

    def test_single_figure(self, capsys):
        from repro.__main__ import main

        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out

    def test_demo(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "roundtrip OK" in out
        assert "detached cleanly" in out

    def test_unknown_target_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["bogus"])


class TestCliHelp:
    """Every subcommand is listed with one-line help, and each
    option-taking subcommand answers ``--help`` (no drift)."""

    def test_top_level_help_lists_every_subcommand(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("list", "all", "demo", "trace", "figures", "sweep",
                        "cluster"):
            assert command in out, command
        for figure in FIGURES:
            assert figure in out, figure

    @pytest.mark.parametrize("command", ["trace", "figures", "sweep",
                                         "cluster"])
    def test_subcommand_help(self, command, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert f"python -m repro {command}" in out

    def test_no_arguments_prints_help(self, capsys):
        from repro.__main__ import main

        assert main([]) == 2
        assert "figures" in capsys.readouterr().out


class TestCliSweepEngine:
    def test_figures_subcommand_parallel_cached(self, tmp_path, capsys):
        from repro.__main__ import main

        cache_dir = str(tmp_path / "cache")
        argv = ["figures", "fig5", "rtt", "--jobs", "2",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Fig. 5" in cold and "remote access RTT" in cold
        assert "4 executed" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 executed" in warm and "4 hits" in warm
        # The rendered tables themselves are identical cold vs warm.
        assert cold.split("sweep:")[0] == warm.split("sweep:")[0]

    def test_figures_subcommand_rejects_unknown_figure(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["figures", "nope", "--cache-dir", str(tmp_path)])

    def test_sweep_subcommand_grid(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main([
            "sweep", "slice:fig5.threads", "--sweep", "count=4,8",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert '{"count":4}' in out and '{"count":8}' in out
        assert "2 specs" in out

    def test_sweep_subcommand_rejects_unknown_target(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["sweep", "bogus-target", "--cache-dir", str(tmp_path)])
