#!/usr/bin/env python3
"""RemoteBuffer tour: program against disaggregated memory directly.

Shows the library's user-facing memory API: allocate buffers under any
NUMA policy (local, remote-bound, interleaved), read and write byte
ranges that physically cross the simulated 100 Gb/s wire, and watch
AutoNUMA migrate hot pages home.

Run:  python examples/remote_buffer_tour.py
"""

from repro.mem import MIB
from repro.osmodel import NumaBalancer, PagePolicy
from repro.testbed import RemoteBuffer, Testbed


def main() -> None:
    testbed = Testbed()
    attachment = testbed.attach("node0", 8 * MIB, memory_host="node1")
    remote_node = attachment.plan.numa_node_id
    print(f"attached 8 MiB of node1 as NUMA node {remote_node}\n")

    print("1. A buffer bound to the remote node:")
    remote = RemoteBuffer.allocate(
        testbed.node0, 1 * MIB, policy=PagePolicy.BIND,
        numa_nodes=[remote_node],
    )
    remote.write(0, b"these bytes live on another machine")
    print(f"   read back: {remote.read(0, 35).decode()!r}")
    print(f"   pages by NUMA node: {remote.node_histogram()}")

    print("\n2. Slice sugar (step-1 slices only):")
    remote[1000:1010] = b"0123456789"
    print(f"   remote[1000:1010] == {remote[1000:1010].decode()!r}")

    print("\n3. An interleaved buffer (the paper's 50/50 configuration):")
    interleaved = RemoteBuffer.allocate(
        testbed.node0, 8 * testbed.node0.spec.page_bytes,
        policy=PagePolicy.INTERLEAVE, numa_nodes=[0, remote_node],
    )
    print(f"   pages by NUMA node: {interleaved.node_histogram()}")

    print("\n4. AutoNUMA pulls hot remote pages local:")
    balancer = NumaBalancer(testbed.node0.kernel, sample_period=1,
                            min_samples=2)
    hot_pages = range(0, len(remote.mapping.pages), 2)
    for _ in range(6):
        for index in hot_pages:
            balancer.record_access(remote.mapping, index, cpu_node=0)
    moved = balancer.balance(remote.mapping)
    print(f"   migrated {moved} hot pages -> {remote.node_histogram()}")
    print("   (data is preserved; cold pages stay remote)")
    assert remote.read(0, 35) == b"these bytes live on another machine"

    remote.free()
    interleaved.free()
    testbed.detach(attachment)
    print("\nbuffers freed, memory detached.")


if __name__ == "__main__":
    main()
