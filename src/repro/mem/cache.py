"""CPU cache models: a functional set-associative simulator and an
analytic average-memory-access-time (AMAT) model.

The functional simulator is used by unit/property tests and by the
microbenchmark path (STREAM streams real address traces through it);
the analytic model feeds the CPI stacks behind figures 6–9, where
simulating every instruction would be intractable.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .address import CACHELINE_BYTES

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "CacheHierarchy",
    "AccessProfile",
    "AmatModel",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = CACHELINE_BYTES
    hit_latency_s: float = 1e-9

    def __post_init__(self):
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError(f"invalid geometry for {self.name}")
        lines = self.size_bytes // self.line_bytes
        if lines % self.ways != 0:
            raise ValueError(
                f"{self.name}: {lines} lines not divisible by {self.ways} ways"
            )

    @property
    def sets(self) -> int:
        return (self.size_bytes // self.line_bytes) // self.ways


class SetAssociativeCache:
    """LRU set-associative cache over line addresses (functional only).

    ``access`` returns True on hit. Writes use write-allocate;
    write-back state is tracked so eviction statistics distinguish clean
    from dirty victims.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # One ordered dict per set: tag -> dirty flag; order = LRU order.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.sets, line // self.config.sets

    def access(self, address: int, write: bool = False) -> bool:
        """Touch the line containing ``address``; True on hit."""
        hit, _victim = self.access_detailed(address, write=write)
        return hit

    def access_detailed(
        self, address: int, write: bool = False
    ) -> Tuple[bool, Optional[int]]:
        """Like :meth:`access`, also reporting the evicted line address.

        Returns ``(hit, victim_line_address)`` where the victim is None
        unless this access evicted a line. Needed by functional caches
        (e.g. the HBM layer) that must write victims' *data* back.
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            self.hits += 1
            dirty = ways.pop(tag) or write
            ways[tag] = dirty
            return True, None
        self.misses += 1
        victim_address: Optional[int] = None
        if len(ways) >= self.config.ways:
            victim_tag, victim_dirty = ways.popitem(last=False)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
            victim_line = victim_tag * self.config.sets + set_index
            victim_address = victim_line * self.config.line_bytes
        ways[tag] = write
        return False, victim_address

    def invalidate(self, address: int) -> bool:
        """Drop a line if present (hot-unplug / migration support)."""
        set_index, tag = self._locate(address)
        return self._sets[set_index].pop(tag, None) is not None

    def flush(self) -> int:
        """Empty the cache; returns the number of dirty lines flushed."""
        dirty = 0
        for ways in self._sets:
            dirty += sum(1 for flag in ways.values() if flag)
            ways.clear()
        return dirty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)


class CacheHierarchy:
    """A stack of inclusive cache levels in front of memory.

    ``access`` walks L1→L2→…; the return value is the index of the level
    that hit (len(levels) means it went to memory), which maps directly
    to a latency via the level configs.
    """

    def __init__(self, levels: Sequence[CacheConfig]):
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = [SetAssociativeCache(config) for config in levels]

    def access(self, address: int, write: bool = False) -> int:
        for index, level in enumerate(self.levels):
            if level.access(address, write=write):
                return index
        return len(self.levels)

    def hit_latency(self, level_index: int, memory_latency_s: float) -> float:
        """Latency of a hit at ``level_index`` (== len(levels) → memory)."""
        total = 0.0
        for index, level in enumerate(self.levels):
            total += level.config.hit_latency_s
            if index == level_index:
                return total
        return total + memory_latency_s

    def flush(self) -> int:
        return sum(level.flush() for level in self.levels)

    def miss_ratios(self) -> List[float]:
        return [1.0 - level.hit_ratio for level in self.levels]


#: Default POWER9-like three-level hierarchy (per-core slices simplified).
def power9_hierarchy() -> CacheHierarchy:
    return CacheHierarchy(
        [
            CacheConfig("L1d", 32 * 1024, ways=8, hit_latency_s=1.0e-9),
            CacheConfig("L2", 512 * 1024, ways=8, hit_latency_s=4.0e-9),
            CacheConfig("L3", 10 * 1024 * 1024, ways=20, hit_latency_s=12.0e-9),
        ]
    )


@dataclass
class AccessProfile:
    """Analytic description of a workload's memory behaviour.

    This is the application-level interface to the memory system: rather
    than a full address trace, an app model states how often its
    instruction stream touches memory and how well it caches.

    * ``memory_instruction_fraction`` — loads+stores per instruction.
    * ``llc_miss_ratio`` — fraction of memory instructions missing the
      last-level cache (these are the ones exposed to NUMA/remote
      latency).
    * ``write_fraction`` — stores / (loads + stores); writes to remote
      memory post rather than stall, captured via ``write_stall_factor``.
    * ``remote_fraction`` — fraction of LLC misses served by
      disaggregated memory (0 for local; 0.5 for 50/50 interleave; 1.0
      for fully-remote).
    """

    memory_instruction_fraction: float = 0.3
    llc_miss_ratio: float = 0.02
    write_fraction: float = 0.3
    remote_fraction: float = 0.0
    write_stall_factor: float = 0.3

    def __post_init__(self):
        for label, value in (
            ("memory_instruction_fraction", self.memory_instruction_fraction),
            ("llc_miss_ratio", self.llc_miss_ratio),
            ("write_fraction", self.write_fraction),
            ("remote_fraction", self.remote_fraction),
            ("write_stall_factor", self.write_stall_factor),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")

    def with_remote_fraction(self, remote_fraction: float) -> "AccessProfile":
        return AccessProfile(
            self.memory_instruction_fraction,
            self.llc_miss_ratio,
            self.write_fraction,
            remote_fraction,
            self.write_stall_factor,
        )


class AmatModel:
    """Average memory access time from hit latencies + miss ratios.

    Exposes ``miss_penalty`` — the average cost of an LLC miss given a
    local/remote latency split — which is the quantity the CPI stack in
    :mod:`repro.perf` consumes.
    """

    def __init__(
        self,
        llc_hit_latency_s: float = 12e-9,
        local_memory_latency_s: float = 85e-9,
    ):
        self.llc_hit_latency_s = llc_hit_latency_s
        self.local_memory_latency_s = local_memory_latency_s

    def miss_penalty(
        self, profile: AccessProfile, remote_latency_s: float
    ) -> float:
        """Mean latency of an LLC miss under the profile's NUMA split."""
        local = (1.0 - profile.remote_fraction) * self.local_memory_latency_s
        remote = profile.remote_fraction * remote_latency_s
        return local + remote

    def amat(self, profile: AccessProfile, remote_latency_s: float) -> float:
        """Average latency of one memory *instruction*."""
        miss = self.miss_penalty(profile, remote_latency_s)
        return (
            self.llc_hit_latency_s
            + profile.llc_miss_ratio * miss
        )
