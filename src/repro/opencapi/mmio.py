"""MMIO configuration space for OpenCAPI devices.

The ThymesisFlow configuration space "is exposed to the Linux operating
system as a memory mapped I/O (MMIO) area, using the OpenCAPI generic
device driver" (§IV-B). The user-space agent pokes these registers to
program the RMMU section table and channel configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["MmioRegister", "MmioRegisterFile", "MmioError"]

REGISTER_BYTES = 8
_REGISTER_MASK = (1 << (REGISTER_BYTES * 8)) - 1


class MmioError(RuntimeError):
    """Bad MMIO access: unknown offset, misalignment, or readonly write."""


@dataclass
class MmioRegister:
    """One 64-bit register: a name, a value, and optional side effects."""

    name: str
    offset: int
    value: int = 0
    readonly: bool = False
    on_write: Optional[Callable[[int], None]] = None
    on_read: Optional[Callable[[], int]] = None


class MmioRegisterFile:
    """A register map addressed by byte offset (8-byte aligned)."""

    def __init__(self, name: str = "mmio"):
        self.name = name
        self._by_offset: Dict[int, MmioRegister] = {}
        self._by_name: Dict[str, MmioRegister] = {}

    def define(
        self,
        name: str,
        offset: int,
        initial: int = 0,
        readonly: bool = False,
        on_write: Optional[Callable[[int], None]] = None,
        on_read: Optional[Callable[[], int]] = None,
    ) -> MmioRegister:
        if offset % REGISTER_BYTES != 0:
            raise MmioError(f"offset {offset:#x} not 8-byte aligned")
        if offset in self._by_offset:
            raise MmioError(f"offset {offset:#x} already defined")
        if name in self._by_name:
            raise MmioError(f"register {name!r} already defined")
        register = MmioRegister(
            name=name,
            offset=offset,
            value=initial & _REGISTER_MASK,
            readonly=readonly,
            on_write=on_write,
            on_read=on_read,
        )
        self._by_offset[offset] = register
        self._by_name[name] = register
        return register

    # -- offset-based access (what the generic driver does) ---------------------
    def read(self, offset: int) -> int:
        register = self._lookup(offset)
        if register.on_read is not None:
            register.value = register.on_read() & _REGISTER_MASK
        return register.value

    def write(self, offset: int, value: int) -> None:
        register = self._lookup(offset)
        if register.readonly:
            raise MmioError(f"register {register.name!r} is read-only")
        register.value = value & _REGISTER_MASK
        if register.on_write is not None:
            register.on_write(register.value)

    # -- name-based access (agent convenience) ------------------------------------
    def read_named(self, name: str) -> int:
        return self.read(self._named(name).offset)

    def write_named(self, name: str, value: int) -> None:
        self.write(self._named(name).offset, value)

    def poke(self, name: str, value: int) -> None:
        """Set a register value without side effects (hardware-internal)."""
        self._named(name).value = value & _REGISTER_MASK

    def _lookup(self, offset: int) -> MmioRegister:
        if offset % REGISTER_BYTES != 0:
            raise MmioError(f"unaligned MMIO access at {offset:#x}")
        try:
            return self._by_offset[offset]
        except KeyError:
            raise MmioError(f"no register at offset {offset:#x}") from None

    def _named(self, name: str) -> MmioRegister:
        try:
            return self._by_name[name]
        except KeyError:
            raise MmioError(f"no register named {name!r}") from None

    def registers(self) -> Dict[str, int]:
        """Snapshot of the whole register file (diagnostics)."""
        return {name: reg.value for name, reg in self._by_name.items()}

    def __len__(self) -> int:
        return len(self._by_offset)
