"""Switch drivers: the control plane's hook into switching layers.

§IV-C lists "configuration of ThymesisFlow endpoints and possible
intermediate switching layers" among the plane's responsibilities. A
:class:`SwitchDriver` translates planned graph paths into bidirectional
circuits on a physical (simulated) circuit switch, with reference
counting so multiple flows may share an identical circuit and the
circuit is torn down when the last flow detaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from typing import Callable, Optional

from ..net.switch import CircuitSwitch, SwitchError
from .graph import GraphError

__all__ = ["SwitchDriver", "extract_switch_hops"]

#: Invoked with (port_a, port_b) when a circuit is freshly established
#: or fully torn down (not on refcount changes).
CircuitHook = Callable[[int, int], None]


def extract_switch_hops(
    node_path: Sequence[str], switch_name: str
) -> List[Tuple[int, int]]:
    """(ingress port, egress port) pairs a path takes through a switch.

    Graph node names for switch ports are ``"<switch>/p<N>"``; a path
    crosses the switch wherever two consecutive nodes belong to it.
    """
    prefix = f"{switch_name}/p"
    hops: List[Tuple[int, int]] = []
    for left, right in zip(node_path, node_path[1:]):
        if left.startswith(prefix) and right.startswith(prefix):
            hops.append(
                (int(left[len(prefix):]), int(right[len(prefix):]))
            )
    return hops


class SwitchDriver:
    """Reference-counted bidirectional circuits on one CircuitSwitch."""

    def __init__(
        self,
        name: str,
        switch: CircuitSwitch,
        on_circuit_up: Optional["CircuitHook"] = None,
        on_circuit_down: Optional["CircuitHook"] = None,
    ):
        self.name = name
        self.switch = switch
        self.on_circuit_up = on_circuit_up
        self.on_circuit_down = on_circuit_down
        self._refs: Dict[Tuple[int, int], int] = {}

    def _canonical(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def connect(self, port_a: int, port_b: int) -> None:
        """Establish (or share) the bidirectional circuit a<->b."""
        key = self._canonical(port_a, port_b)
        if self._refs.get(key, 0) > 0:
            self._refs[key] += 1
            return
        # Exclusivity: a circuit switch port carries exactly one circuit.
        for (existing_a, existing_b), refs in self._refs.items():
            if refs > 0 and {existing_a, existing_b} & {port_a, port_b}:
                raise SwitchError(
                    f"{self.name}: port conflict — ({port_a},{port_b}) "
                    f"vs existing ({existing_a},{existing_b})"
                )
        self.switch.connect(port_a, port_b)
        self.switch.connect(port_b, port_a)
        self._refs[key] = 1
        if self.on_circuit_up is not None:
            self.on_circuit_up(port_a, port_b)

    def disconnect(self, port_a: int, port_b: int) -> None:
        key = self._canonical(port_a, port_b)
        refs = self._refs.get(key, 0)
        if refs <= 0:
            raise GraphError(
                f"{self.name}: circuit ({port_a},{port_b}) not connected"
            )
        if refs == 1:
            self.switch.disconnect(port_a)
            self.switch.disconnect(port_b)
            del self._refs[key]
            if self.on_circuit_down is not None:
                self.on_circuit_down(port_a, port_b)
        else:
            self._refs[key] = refs - 1

    def circuits(self) -> List[Tuple[int, int]]:
        return sorted(key for key, refs in self._refs.items() if refs > 0)
