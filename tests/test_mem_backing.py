"""Unit + property tests for the sparse backing store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import GIB, AddressError, AddressRange, BackingStore


def make_store(size=1 << 20, start=0, chunk=4096):
    return BackingStore(AddressRange(start, size), chunk_bytes=chunk)


class TestBackingStore:
    def test_read_back_what_was_written(self):
        store = make_store()
        store.write(0x100, b"hello thymesisflow")
        assert store.read(0x100, 18) == b"hello thymesisflow"

    def test_untouched_memory_reads_zero(self):
        store = make_store()
        assert store.read(0x5000, 16) == bytes(16)

    def test_write_straddling_chunks(self):
        store = make_store(chunk=256)
        payload = bytes(range(200)) * 3  # 600 bytes across 3+ chunks
        store.write(200, payload)
        assert store.read(200, len(payload)) == payload

    def test_partial_overwrite(self):
        store = make_store()
        store.write(0, b"AAAAAAAA")
        store.write(2, b"BB")
        assert store.read(0, 8) == b"AABBAAAA"

    def test_sparse_residency(self):
        store = make_store(size=1 << 30, chunk=4096)
        store.write(0x2000_0000, b"x")
        assert store.resident_bytes == 4096

    def test_out_of_window_access_raises(self):
        store = make_store(size=0x1000)
        with pytest.raises(AddressError):
            store.write(0x1000, b"x")
        with pytest.raises(AddressError):
            store.read(0xFFF, 2)

    def test_non_zero_window_base(self):
        store = make_store(size=0x1000, start=0x2_0000_0000)
        store.write(0x2_0000_0800, b"based")
        assert store.read(0x2_0000_0800, 5) == b"based"
        with pytest.raises(AddressError):
            store.read(0x0, 1)

    def test_zero_size_read_is_empty(self):
        store = make_store()
        assert store.read(0, 0) == b""

    def test_fill(self):
        store = make_store()
        store.fill(0x10, 0x20, value=0xAB)
        assert store.read(0x10, 0x20) == bytes([0xAB]) * 0x20
        assert store.read(0x30, 4) == bytes(4)

    def test_fill_zero_on_untouched_is_free(self):
        store = make_store(size=1 << 30)
        store.fill(0, 1 << 30, value=0)
        assert store.resident_bytes == 0

    def test_fill_bad_value_raises(self):
        with pytest.raises(AddressError):
            make_store().fill(0, 16, value=256)

    def test_copy_range_within_store(self):
        store = make_store()
        store.write(0, b"payload!")
        store.copy_range(0, 0x100, 8)
        assert store.read(0x100, 8) == b"payload!"

    def test_copy_range_across_stores(self):
        src = make_store()
        dst = make_store(start=0x10_0000)
        src.write(0x40, b"migrated-page")
        src.copy_range(0x40, 0x10_0040, 13, other=dst)
        assert dst.read(0x10_0040, 13) == b"migrated-page"

    def test_discard_releases_whole_chunks(self):
        store = make_store(chunk=256)
        store.write(0, bytes(1024))
        store.write(0, b"\xff" * 1024)
        assert store.resident_bytes == 1024
        store.discard(0, 512)
        assert store.resident_bytes == 512
        assert store.read(0, 4) == bytes(4)  # discarded reads as zeros

    def test_traffic_counters(self):
        store = make_store()
        store.write(0, b"abcd")
        store.read(0, 2)
        assert store.bytes_written == 4
        assert store.bytes_read == 2

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(AddressError):
            BackingStore(AddressRange(0, 0x1000), chunk_bytes=1000)

    @settings(max_examples=50, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0xF000),
                st.binary(min_size=1, max_size=512),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_matches_reference_flat_buffer(self, writes):
        """The sparse store must behave exactly like one big bytearray."""
        store = make_store(size=0x10000, chunk=512)
        reference = bytearray(0x10000)
        for address, data in writes:
            address = min(address, 0x10000 - len(data))
            store.write(address, data)
            reference[address : address + len(data)] = data
        assert store.read(0, 0x10000) == bytes(reference)
