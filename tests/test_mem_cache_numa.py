"""Tests for cache models, DRAM device timing and NUMA topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    CACHELINE_BYTES,
    LOCAL_DISTANCE,
    AccessProfile,
    AddressRange,
    AmatModel,
    CacheConfig,
    CacheHierarchy,
    DramDevice,
    DramTiming,
    NumaNode,
    NumaTopology,
    SetAssociativeCache,
    power9_hierarchy,
)
from repro.sim import Simulator


def tiny_cache(size=1024, ways=2, line=64):
    return SetAssociativeCache(CacheConfig("test", size, ways=ways, line_bytes=line))


class TestSetAssociativeCache:
    def test_first_access_misses_second_hits(self):
        cache = tiny_cache()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_different_bytes_hit(self):
        cache = tiny_cache(line=64)
        cache.access(0x100)
        assert cache.access(0x13F) is True
        assert cache.access(0x140) is False

    def test_lru_eviction_order(self):
        # 2-way cache: two tags fit per set; a third evicts the LRU one.
        cache = tiny_cache(size=128, ways=2, line=64)  # 1 set only... no: 128/64/2=1 set
        a, b, c = 0x000, 0x040 + 0x00, 0x080
        # All three map to set 0 in a single-set cache.
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU, b is LRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_dirty_eviction_tracking(self):
        cache = tiny_cache(size=128, ways=1, line=64)  # direct-mapped, 2 sets
        cache.access(0x000, write=True)
        cache.access(0x080)  # same set as 0x000, evicts dirty line
        assert cache.dirty_evictions == 1

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(0x100)
        assert cache.invalidate(0x100) is True
        assert cache.invalidate(0x100) is False
        assert cache.access(0x100) is False

    def test_flush_counts_dirty_lines(self):
        cache = tiny_cache()
        cache.access(0x000, write=True)
        cache.access(0x100, write=False)
        assert cache.flush() == 1
        assert cache.occupancy == 0

    def test_hit_ratio(self):
        cache = tiny_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x0)
        assert cache.hit_ratio == pytest.approx(2 / 3)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", 100, ways=3, line_bytes=64)

    @settings(max_examples=30, deadline=None)
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=200
        )
    )
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = tiny_cache(size=512, ways=2, line=64)
        capacity_lines = 512 // 64
        for address in addresses:
            cache.access(address)
        assert cache.occupancy <= capacity_lines
        assert cache.hits + cache.misses == len(addresses)


class TestCacheHierarchy:
    def test_miss_walks_all_levels(self):
        hierarchy = power9_hierarchy()
        level = hierarchy.access(0x1234)
        assert level == 3  # missed L1, L2, L3 -> memory
        assert hierarchy.access(0x1234) == 0  # now in L1

    def test_hit_latency_accumulates(self):
        hierarchy = power9_hierarchy()
        memory_latency = 100e-9
        # A memory access pays all lookup latencies plus the memory latency.
        total = hierarchy.hit_latency(3, memory_latency)
        assert total == pytest.approx(1e-9 + 4e-9 + 12e-9 + 100e-9)

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestAmatModel:
    def test_local_profile_ignores_remote_latency(self):
        model = AmatModel(local_memory_latency_s=85e-9)
        profile = AccessProfile(remote_fraction=0.0)
        assert model.miss_penalty(profile, 950e-9) == pytest.approx(85e-9)

    def test_fully_remote_profile(self):
        model = AmatModel()
        profile = AccessProfile(remote_fraction=1.0)
        assert model.miss_penalty(profile, 950e-9) == pytest.approx(950e-9)

    def test_interleaved_is_mean_of_local_and_remote(self):
        model = AmatModel(local_memory_latency_s=100e-9)
        profile = AccessProfile(remote_fraction=0.5)
        assert model.miss_penalty(profile, 900e-9) == pytest.approx(500e-9)

    def test_amat_scales_with_miss_ratio(self):
        model = AmatModel(llc_hit_latency_s=10e-9, local_memory_latency_s=100e-9)
        low = AccessProfile(llc_miss_ratio=0.01)
        high = AccessProfile(llc_miss_ratio=0.10)
        assert model.amat(high, 0) > model.amat(low, 0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AccessProfile(llc_miss_ratio=1.5)
        with pytest.raises(ValueError):
            AccessProfile(remote_fraction=-0.1)

    def test_with_remote_fraction_copies(self):
        base = AccessProfile(remote_fraction=0.0, llc_miss_ratio=0.05)
        remote = base.with_remote_fraction(1.0)
        assert remote.remote_fraction == 1.0
        assert remote.llc_miss_ratio == 0.05
        assert base.remote_fraction == 0.0


class TestDramDevice:
    def make_dram(self, sim, latency=100e-9):
        timing = DramTiming(
            access_latency_s=latency,
            bandwidth_bytes_per_s=128e9,
            banks=2,
        )
        return DramDevice(sim, AddressRange(0, 1 << 20), timing=timing)

    def test_functional_read_after_write(self):
        sim = Simulator()
        dram = self.make_dram(sim)

        def proc():
            yield dram.write(0x100, b"W" * CACHELINE_BYTES)
            data = yield dram.read(0x100, CACHELINE_BYTES)
            return data

        assert sim.run_process(proc()) == b"W" * CACHELINE_BYTES

    def test_access_takes_latency_plus_transfer(self):
        sim = Simulator()
        dram = self.make_dram(sim, latency=100e-9)

        def proc():
            yield dram.read(0, CACHELINE_BYTES)
            return sim.now

        elapsed = sim.run_process(proc())
        expected = 100e-9 + CACHELINE_BYTES / 128e9
        assert elapsed == pytest.approx(expected)

    def test_bank_contention_serializes_excess_requests(self):
        sim = Simulator()
        dram = self.make_dram(sim, latency=100e-9)  # 2 banks

        def issue_three():
            procs = [dram.read(i * 128, 128) for i in range(3)]
            yield sim.all_of(procs)
            return sim.now

        elapsed = sim.run_process(issue_three())
        one_access = 100e-9 + 128 / 128e9
        # Third request waits for a bank: total ≈ 2 serialized accesses.
        assert elapsed == pytest.approx(2 * one_access, rel=0.01)

    def test_latency_stats_recorded(self):
        sim = Simulator()
        dram = self.make_dram(sim)

        def proc():
            yield dram.read(0, 128)
            yield dram.write(0, b"x" * 128)

        sim.run_process(proc())
        assert dram.reads == 1
        assert dram.writes == 1
        assert dram.read_latency.count == 1

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            DramTiming(access_latency_s=-1)
        with pytest.raises(ValueError):
            DramTiming(banks=0)


class TestNumaTopology:
    def build(self):
        topo = NumaTopology()
        topo.add_node(NumaNode(0, memory_bytes=1 << 30, cpu_count=16))
        topo.add_node(NumaNode(1, memory_bytes=1 << 30, cpu_count=16))
        topo.set_distance(0, 1, 20)
        return topo

    def test_self_distance_is_local(self):
        topo = self.build()
        assert topo.distance(0, 0) == LOCAL_DISTANCE

    def test_distance_is_symmetric(self):
        topo = self.build()
        assert topo.distance(0, 1) == topo.distance(1, 0) == 20

    def test_latency_scales_with_distance(self):
        topo = self.build()
        local = topo.latency_s(0, 0)
        remote = topo.latency_s(0, 1)
        assert remote == pytest.approx(2 * local)

    def test_cpuless_node_classification(self):
        topo = self.build()
        topo.add_node(NumaNode(2, memory_bytes=1 << 30, cpu_count=0,
                               base_latency_s=950e-9))
        assert topo.node(2).is_cpuless
        assert [n.node_id for n in topo.cpu_nodes()] == [0, 1]

    def test_distance_for_latency_roundtrip(self):
        topo = self.build()
        topo.add_node(NumaNode(2, memory_bytes=1 << 30, cpu_count=0,
                               base_latency_s=85e-9))
        distance = topo.distance_for_latency(0, 2, 950e-9)
        topo.set_distance(0, 2, distance)
        assert topo.latency_s(0, 2) == pytest.approx(950e-9, rel=0.06)

    def test_nodes_by_distance_sorted(self):
        topo = self.build()
        topo.add_node(NumaNode(2, memory_bytes=1 << 30, cpu_count=0))
        topo.set_distance(0, 2, 80)
        ordered = [n.node_id for n in topo.nodes_by_distance(0)]
        assert ordered == [0, 1, 2]

    def test_reserve_release(self):
        node = NumaNode(0, memory_bytes=1000)
        node.reserve(400)
        assert node.free_bytes == 600
        node.release(400)
        assert node.free_bytes == 1000
        with pytest.raises(ValueError):
            node.reserve(2000)
        with pytest.raises(ValueError):
            node.release(1)

    def test_resize_protects_used_memory(self):
        node = NumaNode(0, memory_bytes=1000)
        node.reserve(800)
        with pytest.raises(ValueError):
            node.resize(500)
        node.resize(2000)
        assert node.free_bytes == 1200

    def test_duplicate_node_rejected(self):
        topo = self.build()
        with pytest.raises(ValueError):
            topo.add_node(NumaNode(0, memory_bytes=1))

    def test_remove_node_clears_distances(self):
        topo = self.build()
        topo.remove_node(1)
        assert 1 not in topo
        with pytest.raises(KeyError):
            topo.distance(0, 1)

    def test_below_local_distance_rejected(self):
        topo = self.build()
        with pytest.raises(ValueError):
            topo.set_distance(0, 1, 5)

    def test_totals(self):
        topo = self.build()
        assert topo.total_memory() == 2 << 30
        topo.node(0).reserve(1 << 20)
        assert topo.total_free() == (2 << 30) - (1 << 20)
