"""Sampling profiler for the discrete-event kernel.

Answers *which component is the simulation spending its time in* —
both sim-time (who owns the event timeline: link pump, DRAM bank
service, LLC, RMMU) and host-time (who is expensive to execute). The
kernel's dispatch loop samples every ``stride``-th event: the profiler
attributes the sim-time and host wall-clock elapsed since the previous
sample to the component that owned the sampled event, classified into
a coarse phase by its name.

Sampling keeps overhead bounded and stride-proportional: between
samples the only per-event cost in the hot loop is one local integer
decrement, and when profiling is disabled it is a single local
truthiness check. The output is statistical — with the default stride
of 1024 a STREAM run yields hundreds of samples, plenty to rank
components — and is emitted in two forms: a flame-graph-compatible
folded-stacks file (``sim;phase;component count``, feed straight to
``flamegraph.pl`` or speedscope) and a top-N table in a
:class:`~repro.obs.summary.RunSummary`.

Same guard-flag pattern as ``trace``/``events``; stdlib-only.
"""

from __future__ import annotations

import time as _time
from typing import Any, Dict, List, Optional, Tuple

from .summary import RunSummary

__all__ = [
    "PHASES",
    "classify_phase",
    "SimProfiler",
    "enable_profiling",
    "disable_profiling",
    "active_profiler",
    "profiling",
]

#: Coarse datapath phases, matched against component names in order.
#: First substring hit wins; unmatched components land in "other".
PHASES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("link", ("link", "pump", "serdes", "flit")),
    ("dram", ("dram", "bank", "mem")),
    ("llc", ("llc", "cache")),
    ("rmmu", ("rmmu", "mmu", "translat")),
    ("bus", ("bus", "noc", "switch", "fabric")),
    ("endpoint", ("endpoint", "compute", "lender", "agent", "nic")),
)


def classify_phase(name: str) -> str:
    lowered = name.lower()
    for phase, needles in PHASES:
        for needle in needles:
            if needle in lowered:
                return phase
    return "other"


def _target_name(target: Any) -> str:
    """Best-effort component name for a sampled dispatch target."""
    name = getattr(target, "name", None)
    if isinstance(name, str) and name:
        return name
    # Bound method: prefer the owner's name over the method's, so every
    # handler of one component aggregates under that component.
    owner = getattr(target, "__self__", None)
    if owner is not None:
        owner_name = getattr(owner, "name", None)
        if isinstance(owner_name, str) and owner_name:
            return owner_name
        return type(owner).__name__
    name = getattr(target, "__name__", None)
    if isinstance(name, str) and name:
        return name
    return type(target).__name__


class SimProfiler:
    """Accumulates per-(phase, component) sim-time and host-time.

    ``stride`` is the sampling period in kernel events. The kernel
    calls :meth:`begin_run` when its dispatch loop starts and
    :meth:`sample` every ``stride``-th event; everything else here is
    reporting.
    """

    def __init__(self, stride: int = 1024):
        if stride < 1:
            raise ValueError("profiler stride must be >= 1")
        self.stride = stride
        # (phase, component) -> [samples, sim_s, host_s]
        self._stats: Dict[Tuple[str, str], List[float]] = {}
        self.samples_taken = 0
        self.runs = 0
        self._last_sim = 0.0
        self._last_host = 0.0

    def begin_run(self, now: float) -> None:
        """Reset the inter-sample markers at dispatch-loop entry."""
        self.runs += 1
        self._last_sim = now
        self._last_host = _time.perf_counter()

    def sample(self, now: float, target: Any) -> None:
        """Attribute time since the last sample to ``target``."""
        host = _time.perf_counter()
        # Resolve the name fresh every sample. Dispatch targets are
        # often short-lived bound methods, so memoizing by ``id()``
        # would mis-attribute samples once the allocator reuses an
        # address; sampling is strided, so the getattr chain is cheap
        # in aggregate.
        name = _target_name(target)
        key = (classify_phase(name), name)
        stat = self._stats.get(key)
        if stat is None:
            self._stats[key] = stat = [0, 0.0, 0.0]
        stat[0] += 1
        stat[1] += now - self._last_sim
        stat[2] += host - self._last_host
        self.samples_taken += 1
        self._last_sim = now
        self._last_host = host

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> Dict[Tuple[str, str], Tuple[int, float, float]]:
        return {
            key: (int(v[0]), v[1], v[2]) for key, v in self._stats.items()
        }

    def folded(self) -> str:
        """Flame-graph folded-stacks text: ``sim;phase;name count``."""
        lines = []
        for (phase, name), (samples, _sim, _host) in sorted(
            self._stats.items()
        ):
            frame = name.replace(";", "_").replace(" ", "_")
            lines.append(f"sim;{phase};{frame} {int(samples)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.folded())

    def top_table(self, n: int = 10) -> RunSummary:
        """Top-N components by attributed sim-time as a RunSummary."""
        summary = RunSummary("sim-time profile")
        total_sim = sum(v[1] for v in self._stats.values())
        total_host = sum(v[2] for v in self._stats.values())
        summary.section("totals")
        summary.row("samples", self.samples_taken)
        summary.row("stride", self.stride, "events")
        summary.row("sim time attributed", total_sim, "s")
        summary.row("host time attributed", total_host, "s")
        ranked = sorted(
            self._stats.items(), key=lambda item: item[1][1], reverse=True
        )
        summary.section(f"top {min(n, len(ranked))} by sim-time")
        for (phase, name), (samples, sim_s, host_s) in ranked[:n]:
            share = (100.0 * sim_s / total_sim) if total_sim > 0 else 0.0
            summary.row(
                f"{phase}:{name}",
                f"{sim_s:.3e} s sim ({share:.1f}%), "
                f"{host_s:.3e} s host, {int(samples)} samples",
            )
        return summary

    def describe(self) -> Dict[str, Any]:
        by_phase: Dict[str, Dict[str, Any]] = {}
        for (phase, name), (samples, sim_s, host_s) in self._stats.items():
            bucket = by_phase.setdefault(
                phase, {"samples": 0, "sim_s": 0.0, "host_s": 0.0}
            )
            bucket["samples"] += int(samples)
            bucket["sim_s"] += sim_s
            bucket["host_s"] += host_s
        return {
            "stride": self.stride,
            "samples": self.samples_taken,
            "runs": self.runs,
            "phases": by_phase,
        }


# -- module-level switch (same pattern as trace) ----------------------------------

#: Hot-path guard checked once per dispatch-loop entry; the per-event
#: cost while enabled is a local integer countdown in the kernel.
ENABLED = False

_PROFILER: Optional[SimProfiler] = None


def enable_profiling(stride: int = 1024) -> SimProfiler:
    """Install a fresh profiler and enable kernel sampling."""
    global ENABLED, _PROFILER
    _PROFILER = SimProfiler(stride=stride)
    ENABLED = True
    return _PROFILER


def disable_profiling() -> Optional[SimProfiler]:
    """Stop sampling; returns the profiler for reporting."""
    global ENABLED, _PROFILER
    profiler = _PROFILER
    ENABLED = False
    _PROFILER = None
    return profiler


def active_profiler() -> Optional[SimProfiler]:
    return _PROFILER


class profiling:
    """Context manager for scoped profiling: yields the SimProfiler."""

    def __init__(self, stride: int = 1024):
        self.stride = stride
        self.profiler: Optional[SimProfiler] = None

    def __enter__(self) -> SimProfiler:
        self.profiler = enable_profiling(stride=self.stride)
        return self.profiler

    def __exit__(self, *exc_info: Any) -> None:
        disable_profiling()
