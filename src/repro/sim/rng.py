"""Seeded random-number utilities with named substreams.

Every stochastic component (workload generators, fault injectors, trace
synthesis) draws from a :class:`SeededRNG` substream derived from one
root seed, so whole experiments replay identically while components stay
statistically independent of one another.
"""

from __future__ import annotations

import hashlib
import math
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["SeededRNG", "ZipfGenerator"]


class SeededRNG:
    """Thin wrapper over ``numpy.random.Generator`` with stream derivation.

    ``derive("voltdb/clients")`` produces a child whose seed is a stable
    hash of (parent seed, name) — adding a new consumer never perturbs the
    draws seen by existing ones.
    """

    def __init__(self, seed: int = 0, _label: str = "root"):
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        self.label = _label
        self._gen = np.random.default_rng(self.seed)

    def derive(self, name: str) -> "SeededRNG":
        digest = hashlib.sha256(
            f"{self.seed}:{name}".encode("utf-8")
        ).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return SeededRNG(child_seed, _label=f"{self.label}/{name}")

    # -- draws ---------------------------------------------------------------
    def random(self) -> float:
        return float(self._gen.random())

    def uniform(self, low: float, high: float) -> float:
        return float(self._gen.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Integer in [low, high] inclusive."""
        return int(self._gen.integers(low, high + 1))

    def choice(self, seq: Sequence):
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: List) -> None:
        self._gen.shuffle(items)

    def sample_indices(self, population: int, count: int) -> List[int]:
        return list(self._gen.choice(population, size=count, replace=False))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def normal(self, mean: float, stdev: float) -> float:
        return float(self._gen.normal(mean, stdev))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._gen.lognormal(mean, sigma))

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        return float(scale * (1.0 + self._gen.pareto(shape)))

    def bernoulli(self, p: float) -> bool:
        return bool(self._gen.random() < p)

    def integers_array(self, low: int, high: int, size: int) -> np.ndarray:
        return self._gen.integers(low, high, size=size)

    def bytes(self, n: int) -> bytes:
        return self._gen.bytes(n)

    @property
    def numpy(self) -> np.random.Generator:
        """Escape hatch for vectorized draws."""
        return self._gen


class ZipfGenerator:
    """Bounded Zipf(s) sampler over ranks ``0 .. n-1``.

    Implements inverse-CDF sampling over the truncated distribution
    (numpy's ``zipf`` is unbounded, which is wrong for a finite keyspace).
    Memcached key popularity in the ETC model follows Zipf with exponent
    1.0 over a fixed keyspace (paper §VI-E, citing Breslau et al.).
    """

    def __init__(self, n: int, exponent: float, rng: SeededRNG):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if exponent <= 0:
            raise ValueError(f"exponent must be > 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        weights = np.arange(1, n + 1, dtype=np.float64) ** (-exponent)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self) -> int:
        """One rank in [0, n)."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="left"))

    def sample_many(self, count: int) -> np.ndarray:
        u = self._rng.numpy.random(count)
        return np.searchsorted(self._cdf, u, side="left")

    def probability(self, rank: int) -> float:
        """P(rank) for 0-based ``rank``."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank out of range: {rank}")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)

    def head_mass(self, k: int) -> float:
        """Total probability of the k most popular keys."""
        if k <= 0:
            return 0.0
        k = min(k, self.n)
        return float(self._cdf[k - 1])
