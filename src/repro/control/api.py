"""REST-style system access interface — paper §IV-C.

"The various remote memory allocation/deallocation interactions occur
via a REST API." This module shapes the orchestrator as an HTTP-ish
request handler (method, path, body, bearer token) → (status, body)
without binding a socket, so tests and examples drive the exact same
surface an administrator or a cloud-orchestration plugin would. The
real socket binding is :mod:`repro.control.server`, which fronts this
dispatch with an asyncio HTTP server, admission control and QoS-aware
queueing.

Dispatch is **table-driven**: every route lives in :data:`ROUTES` — a
:class:`RouteSpec` with its method, path template, query parameters
and OpenAPI-lite request/response schemas — and ``GET /v1`` serves the
table back as a machine-readable catalogue. The catalogue cannot drift
from ``handle()`` because both read the same table.

Error contract: every error body is the versioned shape
``{"error": <human text>, "code": <machine-readable slug>}``. Domain
exceptions all derive from :class:`~repro.errors.ReproError`; their
``code`` maps to an HTTP status through the single
:data:`~repro.errors.HTTP_STATUS_BY_CODE` table — no message matching.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl

from ..errors import ReproError, http_status_for
from ..obs import events as _events
from ..obs.promtext import CONTENT_TYPE, render_prometheus
from .orchestrator import ControlPlane
from .security import Permission

__all__ = ["RestApi", "RouteSpec", "ROUTES", "route_catalogue"]

#: ``fault_hook(campaign, attachment_id, params) -> description dict``;
#: installed by the resilience layer to arm chaos campaigns via POST
#: /v1/faults (the plane itself knows nothing about injectors).
FaultHook = Callable[[str, int, Dict], Dict]

#: Cap on ``?limit=`` for /v1/events (and the default page size when a
#: cursor is given): large journals stream in pages, never whole.
EVENTS_MAX_LIMIT = 1024


@dataclass(frozen=True)
class RouteSpec:
    """One route: dispatch target + its catalogue entry.

    ``template`` uses ``{name}`` placeholders for integer path
    parameters. ``request``/``response`` are OpenAPI-lite field maps
    (``"field": "type"`` with a trailing ``?`` marking optional);
    ``raw`` marks routes whose 200 body is a raw text document wrapped
    as ``{"content_type", "body"}`` (the HTTP server unwraps them).
    """

    method: str
    template: str
    handler: str
    summary: str
    query: Tuple[str, ...] = ()
    request: Optional[Dict[str, str]] = None
    response: Optional[Dict[str, str]] = None
    raw: bool = False

    @property
    def pattern(self) -> "re.Pattern":
        return _compile_template(self.template)

    def describe(self) -> Dict:
        entry: Dict = {
            "method": self.method,
            "path": self.template,
            "summary": self.summary,
        }
        if self.query:
            entry["query"] = list(self.query)
        if self.request is not None:
            entry["request"] = dict(self.request)
        if self.response is not None:
            entry["response"] = dict(self.response)
        if self.raw:
            entry["raw"] = True
        return entry


def _compile_template(template: str) -> "re.Pattern":
    pattern = re.sub(r"\{(\w+)\}", r"(?P<\1>\\d+)", template)
    return re.compile(f"^{pattern}$")


_ERROR_SCHEMA = {"error": "str", "code": "str", "details": "object?"}

_ATTACHMENT_SCHEMA = {
    "id": "int",
    "compute_host": "str",
    "memory_host": "str",
    "size": "int",
    "network_id": "int",
    "bonded": "bool",
    "channels": "list[int]",
    "numa_node": "int",
    "sections": "list[int]",
    "tenant": "str?",
    "qos": "str?",
}

#: The one route table: ``handle()`` dispatches from it and ``GET /v1``
#: renders it. Sorted by (path, method) for a stable catalogue.
ROUTES: Tuple[RouteSpec, ...] = (
    RouteSpec(
        "GET", "/v1", "_catalogue",
        "machine-readable route catalogue (this document)",
        response={"version": "str", "routes": "list[object]"},
    ),
    RouteSpec(
        "GET", "/v1/state", "_state",
        "full control-plane state-graph snapshot",
        response={"state": "object"},
    ),
    RouteSpec(
        "GET", "/v1/health", "_health",
        "health-monitor summary (unmonitored planes answer statically)",
        response={"status": "str", "attachments": "list[object]"},
    ),
    RouteSpec(
        "GET", "/v1/metrics", "_metrics",
        "Prometheus text exposition of the wired metrics registry",
        response={"content_type": "str", "body": "str"},
        raw=True,
    ),
    RouteSpec(
        "GET", "/v1/events", "_events",
        "structured event journal, paginated by sequence cursor",
        query=("since_seq", "limit"),
        response={
            "total": "int",
            "evicted": "int",
            "count": "int",
            "next_seq": "int",
            "events": "list[object]",
        },
    ),
    RouteSpec(
        "GET", "/v1/tenants", "_tenants",
        "per-tenant QoS class, quota ceilings and live usage",
        response={"tenants": "list[object]"},
    ),
    RouteSpec(
        "GET", "/v1/attachments", "_list_attachments",
        "all live attachments",
        response={"attachments": "list[object]"},
    ),
    RouteSpec(
        "POST", "/v1/attachments", "_create",
        "attach disaggregated memory (the §IV-C workflow)",
        request={
            "compute_host": "str",
            "size": "int",
            "memory_host": "str?",
            "bonded": "bool?",
        },
        response=_ATTACHMENT_SCHEMA,
    ),
    RouteSpec(
        "GET", "/v1/attachments/{id}", "_get_attachment",
        "one attachment's description",
        response=_ATTACHMENT_SCHEMA,
    ),
    RouteSpec(
        "DELETE", "/v1/attachments/{id}", "_delete_attachment",
        "detach (force=true tolerates a dead donor)",
        request={"force": "bool?"},
        response={},
    ),
    RouteSpec(
        "GET", "/v1/faults", "_fault_catalogue",
        "fault-campaign catalogue with parameter schemas",
        response={"campaigns": "list[object]"},
    ),
    RouteSpec(
        "POST", "/v1/faults", "_inject_fault",
        "arm one chaos campaign against an attachment",
        request={"campaign": "str", "attachment": "int", "...": "params"},
        response={"injected": "str", "...": "campaign-specific"},
    ),
)


def route_catalogue() -> Dict:
    """The ``GET /v1`` body: version + every route's catalogue entry."""
    return {
        "version": "v1",
        "error_schema": dict(_ERROR_SCHEMA),
        "routes": [
            spec.describe()
            for spec in sorted(ROUTES, key=lambda s: (s.template, s.method))
        ],
    }


class RestApi:
    """In-process REST facade over :class:`ControlPlane`.

    Routes are defined in :data:`ROUTES`; ``GET /v1`` serves the
    catalogue. ``monitor`` (a
    :class:`~repro.control.health.HealthMonitor`) backs ``/v1/health``;
    ``fault_hook`` backs ``POST /v1/faults``; ``registry`` (a
    :class:`~repro.obs.MetricsRegistry`) backs ``/v1/metrics``. All are
    optional — unwired routes answer with a structured 503.

    ``GET /v1/metrics`` is the scrape endpoint: the body carries
    ``content_type`` (the exposition content type a socket binding
    must answer with) and ``body`` (the rendered exposition text).
    """

    def __init__(
        self,
        plane: ControlPlane,
        monitor: Optional[object] = None,
        fault_hook: Optional[FaultHook] = None,
        registry: Optional[object] = None,
    ):
        self.plane = plane
        self.monitor = monitor
        self.fault_hook = fault_hook
        self.registry = registry
        # Compiled once per instance: (spec, pattern) in table order.
        self._routes = [(spec, spec.pattern) for spec in ROUTES]

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        token: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        """Dispatch one request; returns (status code, response body).

        ``path`` may carry a query string (``/v1/events?since_seq=8``);
        it is split off and handed to the route as a parameter dict.
        """
        try:
            return self._route(method.upper(), path, body or {}, token)
        except ReproError as exc:
            return http_status_for(exc.code), exc.describe()
        except (MemoryError, ValueError, KeyError) as exc:
            return 400, {
                "error": f"{type(exc).__name__}: {exc}",
                "code": "request/invalid",
            }

    # -- routing -------------------------------------------------------------------
    def _route(
        self, method: str, path: str, body: Dict, token: Optional[str]
    ) -> Tuple[int, Dict]:
        path, _, query_string = path.partition("?")
        query = dict(parse_qsl(query_string, keep_blank_values=True))
        allowed: List[str] = []
        for spec, pattern in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            if spec.method != method:
                allowed.append(spec.method)
                continue
            params = {k: int(v) for k, v in match.groupdict().items()}
            handler = getattr(self, spec.handler)
            return handler(params, query, body, token)
        if allowed:
            return 405, {
                "error": f"{method} not allowed on {path} "
                         f"(allowed: {', '.join(sorted(set(allowed)))})",
                "code": "request/method-not-allowed",
            }
        return 404, {
            "error": f"no route for {method} {path}",
            "code": "request/no-route",
        }

    def route_for(self, method: str, path: str) -> Optional[RouteSpec]:
        """The :class:`RouteSpec` that would serve ``method path``.

        Socket bindings use this to learn response framing (e.g. the
        ``raw`` flag on the metrics exposition) without re-dispatching.
        Returns ``None`` for unmatched targets.
        """
        path = path.partition("?")[0]
        method = method.upper()
        for spec, pattern in self._routes:
            if spec.method == method and pattern.match(path):
                return spec
        return None

    @staticmethod
    def _query_int(
        query: Dict[str, str], key: str, default: Optional[int]
    ) -> Optional[int]:
        raw = query.get(key)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(
                f"query parameter {key}={raw!r} is not an integer",
                code="request/invalid",
            ) from None
        if value < 0:
            raise ReproError(
                f"query parameter {key} must be >= 0, got {value}",
                code="request/invalid",
            )
        return value

    # -- discovery -----------------------------------------------------------------
    def _catalogue(self, params, query, body, token) -> Tuple[int, Dict]:
        # Unauthenticated on purpose: the catalogue is the API's shape,
        # not its state — the one discovery document a client needs
        # before it holds a credential.
        return 200, route_catalogue()

    # -- state + attachments ---------------------------------------------------------
    def _state(self, params, query, body, token) -> Tuple[int, Dict]:
        return 200, {"state": self.plane.system_state(token=token)}

    def _list_attachments(self, params, query, body, token) -> Tuple[int, Dict]:
        return 200, {
            "attachments": [
                a.describe() for a in self.plane.attachments(token=token)
            ]
        }

    def _get_attachment(self, params, query, body, token) -> Tuple[int, Dict]:
        attachment = self.plane.attachment(params["id"], token=token)
        return 200, attachment.describe()

    def _delete_attachment(self, params, query, body, token) -> Tuple[int, Dict]:
        self.plane.detach(
            params["id"],
            token=token,
            force=bool(body.get("force", False)),
        )
        return 204, {}

    def _create(self, params, query, body, token) -> Tuple[int, Dict]:
        try:
            compute_host = body["compute_host"]
            size = int(body["size"])
        except KeyError as exc:
            return 400, {
                "error": f"missing field {exc}",
                "code": "request/invalid",
            }
        if size <= 0:
            return 400, {
                "error": f"size must be > 0, got {size}",
                "code": "request/invalid",
            }
        attachment = self.plane.attach(
            compute_host,
            size,
            memory_host=body.get("memory_host"),
            bonded=bool(body.get("bonded", False)),
            token=token,
        )
        return 201, attachment.describe()

    # -- tenancy --------------------------------------------------------------------
    def _tenants(self, params, query, body, token) -> Tuple[int, Dict]:
        return 200, {"tenants": self.plane.tenant_usage(token=token)}

    # -- resilience surface ---------------------------------------------------------
    def _health(self, params, query, body, token) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.READ_STATE)
        if self.monitor is None:
            return 200, {"status": "unmonitored", "attachments": []}
        return 200, self.monitor.describe()

    # -- telemetry surface ----------------------------------------------------------
    def _metrics(self, params, query, body, token) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.READ_STATE)
        if self.registry is None:
            return 503, {
                "error": "no metrics registry wired to this API",
                "code": "obs/no-registry",
            }
        return 200, {
            "content_type": CONTENT_TYPE,
            "body": render_prometheus(self.registry),
        }

    def _events(self, params, query, body, token) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.READ_STATE)
        log = _events.active_event_log()
        if log is None:
            return 503, {
                "error": "event logging is not enabled",
                "code": "obs/no-event-log",
            }
        since = self._query_int(query, "since_seq", None)
        limit = self._query_int(query, "limit", None)
        if limit is None:
            # Unpaginated calls keep their historical whole-journal
            # behaviour; a cursor without a limit gets the default page.
            limit = EVENTS_MAX_LIMIT if since is not None else len(log)
        limit = min(limit, EVENTS_MAX_LIMIT) if limit else limit
        events = []
        for event in log:
            if since is not None and event.seq < since:
                continue
            if len(events) >= limit:
                break
            events.append(event.as_dict())
        if events:
            next_seq = events[-1]["seq"] + 1
        else:
            # Nothing (yet) past the cursor: resume from the same spot.
            next_seq = since if since is not None else log.total
        return 200, {
            "total": log.total,
            "evicted": log.evicted,
            "since_seq": since,
            "count": len(events),
            "next_seq": next_seq,
            "events": events,
        }

    def _fault_catalogue(self, params, query, body, token) -> Tuple[int, Dict]:
        """Discoverable campaign catalogue with parameter schemas."""
        self.plane.acl.require(token, Permission.READ_STATE)
        # Local import: the resilience layer sits above the control
        # plane; importing it at module scope would invert the layering.
        from ..resilience.campaigns import campaign_catalogue

        return 200, {"campaigns": campaign_catalogue()}

    def _inject_fault(self, params, query, body, token) -> Tuple[int, Dict]:
        self.plane.acl.require(token, Permission.ATTACH)
        if self.fault_hook is None:
            return 503, {
                "error": "no fault-injection hook installed",
                "code": "resilience/no-injector",
            }
        try:
            campaign = body["campaign"]
            attachment_id = int(body["attachment"])
        except KeyError as exc:
            return 400, {
                "error": f"missing field {exc}",
                "code": "request/invalid",
            }
        extra = {
            key: value
            for key, value in body.items()
            if key not in ("campaign", "attachment")
        }
        description = self.fault_hook(campaign, attachment_id, extra)
        return 202, {"injected": campaign, **description}
