"""Control-plane system-state graph — paper §IV-C.

"The system state is modeled as an undirected graph whose nodes are
compute and memory endpoints, transceivers associated with each
endpoint and switch ports. The edges of the graph are instead the
possible physical links between nodes."

The production prototype keeps this in Janusgraph; here networkx plays
that role (same model, embedded instead of distributed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError

import networkx as nx

__all__ = ["NodeKind", "StateGraph", "GraphError"]


class GraphError(ReproError, RuntimeError):
    """Inconsistent wiring or unknown graph elements."""

    code = "graph/inconsistent"


class NodeKind(enum.Enum):
    COMPUTE_ENDPOINT = "compute"
    MEMORY_ENDPOINT = "memory"
    TRANSCEIVER = "transceiver"
    SWITCH_PORT = "switch_port"


class StateGraph:
    """Typed facade over the undirected state graph.

    Node keys are strings: ``"<host>/cep"``, ``"<host>/mep"``,
    ``"<host>/x<N>"`` (transceivers) and ``"<switch>/p<N>"`` (switch
    ports). Transceiver and switch-port nodes carry a ``capacity``
    attribute — how many concurrent flows they can carry — and a
    ``reserved`` counter maintained by the planner.
    """

    def __init__(self):
        self._graph = nx.Graph()

    # -- node registration -----------------------------------------------------------
    def add_host(
        self,
        host: str,
        transceivers: int,
        channel_capacity: int = 64,
        donor_capacity_bytes: int = 0,
    ) -> None:
        """Register one host: endpoints + its transceiver fan-out."""
        cep, mep = self.cep(host), self.mep(host)
        if self._graph.has_node(cep):
            raise GraphError(f"host {host!r} already registered")
        self._graph.add_node(cep, kind=NodeKind.COMPUTE_ENDPOINT, host=host)
        self._graph.add_node(
            mep,
            kind=NodeKind.MEMORY_ENDPOINT,
            host=host,
            donor_capacity=donor_capacity_bytes,
            donor_used=0,
        )
        for index in range(transceivers):
            xcvr = self.xcvr(host, index)
            self._graph.add_node(
                xcvr,
                kind=NodeKind.TRANSCEIVER,
                host=host,
                channel=index,
                capacity=channel_capacity,
                reserved=0,
            )
            # Internal links: both endpoint roles can reach every local
            # transceiver.
            self._graph.add_edge(cep, xcvr, internal=True)
            self._graph.add_edge(mep, xcvr, internal=True)

    def add_switch(self, switch: str, ports: int, port_capacity: int = 64) -> None:
        for index in range(ports):
            port = self.switch_port(switch, index)
            self._graph.add_node(
                port,
                kind=NodeKind.SWITCH_PORT,
                switch=switch,
                port=index,
                capacity=port_capacity,
                reserved=0,
            )
        # Any-to-any inside the switch fabric.
        for a in range(ports):
            for b in range(a + 1, ports):
                self._graph.add_edge(
                    self.switch_port(switch, a),
                    self.switch_port(switch, b),
                    internal=True,
                )

    def add_cable(self, end_a: str, end_b: str) -> None:
        """A physical link between two transceivers / switch ports."""
        for end in (end_a, end_b):
            if not self._graph.has_node(end):
                raise GraphError(f"unknown graph node {end!r}")
            kind = self._graph.nodes[end]["kind"]
            if kind not in (NodeKind.TRANSCEIVER, NodeKind.SWITCH_PORT):
                raise GraphError(f"cannot cable a {kind.value} node")
        self._graph.add_edge(end_a, end_b, internal=False)

    # -- naming helpers ----------------------------------------------------------------
    @staticmethod
    def cep(host: str) -> str:
        return f"{host}/cep"

    @staticmethod
    def mep(host: str) -> str:
        return f"{host}/mep"

    @staticmethod
    def xcvr(host: str, index: int) -> str:
        return f"{host}/x{index}"

    @staticmethod
    def switch_port(switch: str, index: int) -> str:
        return f"{switch}/p{index}"

    # -- queries --------------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def hosts(self) -> List[str]:
        return sorted(
            {
                data["host"]
                for _node, data in self._graph.nodes(data=True)
                if data["kind"] is NodeKind.COMPUTE_ENDPOINT
            }
        )

    def node_attr(self, node: str, key: str):
        try:
            return self._graph.nodes[node][key]
        except KeyError:
            raise GraphError(f"node {node!r} has no attribute {key!r}") from None

    def transceivers(self, host: str) -> List[str]:
        return sorted(
            node
            for node, data in self._graph.nodes(data=True)
            if data["kind"] is NodeKind.TRANSCEIVER and data.get("host") == host
        )

    def free_capacity(self, node: str) -> int:
        data = self._graph.nodes[node]
        return data["capacity"] - data["reserved"]

    # -- reservations -------------------------------------------------------------------
    def reserve(self, nodes: Iterable[str]) -> None:
        nodes = list(nodes)
        for node in nodes:
            if self.free_capacity(node) < 1:
                raise GraphError(f"{node}: no free capacity")
        for node in nodes:
            self._graph.nodes[node]["reserved"] += 1

    def release(self, nodes: Iterable[str]) -> None:
        for node in nodes:
            data = self._graph.nodes[node]
            if data["reserved"] <= 0:
                raise GraphError(f"{node}: release without reservation")
            data["reserved"] -= 1

    # -- donor capacity accounting ----------------------------------------------------------
    def reserve_donor_memory(self, host: str, size: int) -> None:
        data = self._graph.nodes[self.mep(host)]
        if data["donor_used"] + size > data["donor_capacity"]:
            raise GraphError(
                f"{host}: donor capacity exhausted "
                f"({data['donor_used'] + size} > {data['donor_capacity']})"
            )
        data["donor_used"] += size

    def release_donor_memory(self, host: str, size: int) -> None:
        data = self._graph.nodes[self.mep(host)]
        if data["donor_used"] < size:
            raise GraphError(f"{host}: donor release underflow")
        data["donor_used"] -= size

    def donor_free(self, host: str) -> int:
        data = self._graph.nodes[self.mep(host)]
        return data["donor_capacity"] - data["donor_used"]

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-able dump for the REST API's GET /state."""
        return {
            node: {
                "kind": data["kind"].value,
                **{
                    key: value
                    for key, value in data.items()
                    if key != "kind"
                },
            }
            for node, data in sorted(self._graph.nodes(data=True))
        }
