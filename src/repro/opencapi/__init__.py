"""OpenCAPI attachment model: transactions, buses, M1/C1 ports, PASIDs, MMIO."""

from .bus import BusError, BusTarget, DramBusTarget, SystemBus
from .mmio import MmioError, MmioRegister, MmioRegisterFile
from .pasid import PasidEntry, PasidError, PasidRegistry
from .ports import (
    FPGA_STACK_CROSSING_S,
    HOST_LINK_SERDES_S,
    OpenCapiC1Port,
    OpenCapiM1Port,
)
from .transactions import (
    FLIT_BYTES,
    MemTransaction,
    ResponseCode,
    TLCommand,
    flits_for_payload,
    transaction_flits,
)

__all__ = [
    "SystemBus",
    "BusTarget",
    "BusError",
    "DramBusTarget",
    "MmioRegisterFile",
    "MmioRegister",
    "MmioError",
    "PasidRegistry",
    "PasidEntry",
    "PasidError",
    "OpenCapiM1Port",
    "OpenCapiC1Port",
    "FPGA_STACK_CROSSING_S",
    "HOST_LINK_SERDES_S",
    "MemTransaction",
    "TLCommand",
    "ResponseCode",
    "FLIT_BYTES",
    "flits_for_payload",
    "transaction_flits",
]
