"""Remote Memory Management Unit (RMMU).

The RMMU sits in the compute endpoint and performs the second address
translation of Fig. 3: the transaction arrives in the **device-internal
address space** (re-based to 0x0), is bucketed into a *section* by a bit
range of the address, and the matching section-table entry supplies

  a) the **offset** converting the internal address into a valid
     effective address on the memory-stealing host, and
  b) the **network identifier** the routing layer forwards on.

"The one-to-one mapping between Linux kernel sparse memory model and
the ThymesisFlow RMMU configuration defines the section as the minimum
unit of disaggregated memory that can be independently handled"
(§IV-A1). Each section must map to a *consecutive* effective range of
the same size on the donor, so all of its transactions share one
forwarding entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mem.address import AddressError, CACHELINE_BYTES, DEFAULT_SECTION_BYTES
from ..opencapi.mmio import MmioRegisterFile

__all__ = ["SectionEntry", "Rmmu", "RmmuFault"]


class RmmuFault(RuntimeError):
    """Translation through an invalid or absent section entry."""


@dataclass
class SectionEntry:
    """One section-table row (§IV-A1).

    ``offset`` is the signed value added to a device-internal address to
    produce the donor effective address; ``network_id`` is the wire
    identifier (bonding flag included) stamped into headers.
    """

    section_index: int
    offset: int
    network_id: int
    valid: bool = True


class Rmmu:
    """Section-indexed translation + forwarding table.

    The table index is "a specific bit range of the transaction address,
    common to all transactions belonging to the same section": for a
    power-of-two ``section_bytes`` that is simply
    ``address >> log2(section_bytes)``.
    """

    def __init__(
        self,
        section_bytes: int = DEFAULT_SECTION_BYTES,
        table_entries: int = 2048,
        name: str = "rmmu",
    ):
        if section_bytes <= 0 or (section_bytes & (section_bytes - 1)) != 0:
            raise AddressError(
                f"section_bytes must be a power of two: {section_bytes}"
            )
        if table_entries < 1:
            raise AddressError(f"table_entries must be >= 1: {table_entries}")
        self.section_bytes = section_bytes
        self.table_entries = table_entries
        self.name = name
        self._shift = section_bytes.bit_length() - 1
        self._table: Dict[int, SectionEntry] = {}
        self.translations = 0
        self.faults = 0

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector: translations, faults, installed sections."""

        def collect(reg):
            base = dict(rmmu=self.name, **labels)
            reg.gauge("rmmu.translations", **base).set(self.translations)
            reg.gauge("rmmu.faults", **base).set(self.faults)
            reg.gauge("rmmu.sections_installed", **base).set(len(self._table))

        registry.add_collector(collect)

    # -- configuration (driven by the user-space agent over MMIO) -----------------
    def install(
        self, section_index: int, donor_effective_base: int, network_id: int
    ) -> SectionEntry:
        """Program one section entry.

        ``donor_effective_base`` is the start of the donor-side pinned
        range for this section; the stored offset re-bases the section's
        device-internal addresses onto it.
        """
        self._check_index(section_index)
        internal_base = section_index * self.section_bytes
        entry = SectionEntry(
            section_index=section_index,
            offset=donor_effective_base - internal_base,
            network_id=network_id,
        )
        self._table[section_index] = entry
        return entry

    def invalidate(self, section_index: int) -> SectionEntry:
        self._check_index(section_index)
        try:
            entry = self._table.pop(section_index)
        except KeyError:
            raise RmmuFault(
                f"{self.name}: section {section_index} not installed"
            ) from None
        entry.valid = False
        return entry

    def entry(self, section_index: int) -> Optional[SectionEntry]:
        return self._table.get(section_index)

    def installed_sections(self) -> List[int]:
        return sorted(self._table)

    # -- datapath ------------------------------------------------------------------
    def section_of(self, internal_address: int) -> int:
        """The table index bits of a device-internal address."""
        if internal_address < 0:
            raise AddressError(f"negative address: {internal_address:#x}")
        return internal_address >> self._shift

    def translate(
        self, internal_address: int, lines: int = 1
    ) -> Tuple[int, int]:
        """Device-internal address → (donor effective address, network id).

        Raises :class:`RmmuFault` for unconfigured sections — on the real
        hardware such a transaction is failed back to the bus, which the
        compute endpoint converts to an error response.

        ``lines`` > 1 translates a burst of contiguous cachelines in one
        table access; the whole run must fall inside a single section
        (the per-line formulation would otherwise split across entries
        with potentially discontiguous donor ranges).
        """
        section_index = self.section_of(internal_address)
        entry = self._table.get(section_index)
        if entry is None or not entry.valid:
            self.faults += lines
            raise RmmuFault(
                f"{self.name}: no valid entry for section {section_index} "
                f"(address {internal_address:#x})"
            )
        if lines > 1:
            last = internal_address + lines * CACHELINE_BYTES - 1
            if (last >> self._shift) != section_index:
                self.faults += lines
                raise RmmuFault(
                    f"{self.name}: burst of {lines} lines at "
                    f"{internal_address:#x} straddles section "
                    f"{section_index}"
                )
        self.translations += lines
        return internal_address + entry.offset, entry.network_id

    # -- MMIO exposure ---------------------------------------------------------------
    def attach_mmio(self, mmio: MmioRegisterFile, base_offset: int = 0x100) -> None:
        """Expose install/invalidate as a 3-register command interface.

        The agent writes SECTION_INDEX and DONOR_BASE, then a write to
        SECTION_CTRL commits: value = network id to install, or the
        all-ones value (2**64-1) to invalidate.
        """
        state = {"index": 0, "base": 0}
        mmio.define(
            "RMMU_SECTION_INDEX",
            base_offset,
            on_write=lambda v: state.__setitem__("index", v),
        )
        mmio.define(
            "RMMU_DONOR_BASE",
            base_offset + 8,
            on_write=lambda v: state.__setitem__("base", v),
        )

        def commit(value: int) -> None:
            if value == (1 << 64) - 1:
                self.invalidate(state["index"])
            else:
                self.install(state["index"], state["base"], value)

        mmio.define("RMMU_SECTION_CTRL", base_offset + 16, on_write=commit)
        mmio.define(
            "RMMU_SECTION_COUNT",
            base_offset + 24,
            readonly=True,
            on_read=lambda: len(self._table),
        )

    def _check_index(self, section_index: int) -> None:
        if not 0 <= section_index < self.table_entries:
            raise AddressError(
                f"{self.name}: section index {section_index} outside "
                f"table [0, {self.table_entries})"
            )

    def __len__(self) -> int:
        return len(self._table)
