"""Response extraction: turn one cell's raw run into robustness numbers.

The *responses* of a design point are the quantities the decision
support ranks and models:

* ``availability`` — fraction of the requested workload bytes that were
  acknowledged end-to-end (work-completion availability; a cell whose
  fault permanently loses the tail of the workload scores < 1);
* ``recovery_time_s`` — how long the executed failover took (0 when no
  failover ran);
* ``downtime_s`` — first fault taking effect -> failover completed (or
  end of run, if the cell never healed and lost work);
* ``goodput_bytes_per_s`` — acknowledged bytes over total sim time;
* ``bandwidth_cost`` — wire bytes sent per acknowledged byte (replay
  storms and journal replays make this climb);
* ``replayed_bytes`` / ``lost_bytes`` — journal replay volume vs work
  the configuration failed to deliver.

SLO verdicts are computed *outside* the cached cell value, against the
cell's embedded metrics snapshot (via a snapshot adapter), so changing
the objective thresholds re-judges cached cells without re-simulating
them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ...obs.slo import SloEngine, SloSpec

__all__ = ["DEFAULT_SLOS", "compute_responses", "evaluate_cell_slo"]

#: Stock objectives for ``python -m repro dse``. The availability floor
#: is the headline: a config that loses workload bytes to an unhealed
#: fault breaches it deterministically (the smoke design's ``none``
#: failover policy is the intended canary). The recovery/downtime
#: ceilings bound how long healing may take when it does run.
DEFAULT_SLOS = (
    "availability-floor: dse.availability{component=dse} >= 0.999",
    "recovery-ceiling: dse.recovery_time_s{component=dse} <= 5e-3",
    "downtime-ceiling: dse.downtime_s{component=dse} <= 5e-3",
)


def _sum_metric(metrics: Dict[str, float], name: str) -> float:
    """Sum one metric family over every label set in a snapshot."""
    prefix = name + "{"
    return sum(
        value
        for key, value in metrics.items()
        if key == name or key.startswith(prefix)
    )


def compute_responses(
    *,
    size_bytes: int,
    bytes_acked: int,
    drained_at_s: float,
    events: Sequence[Dict[str, Any]],
    metrics: Dict[str, float],
    replayed_bytes: int,
) -> Dict[str, float]:
    """Derive the response vector from a cell's raw run artifacts.

    ``events`` is the cell's (fault/health) journal slice; recovery and
    downtime come from it — fault onset is the first ``fault.*`` event,
    healing is the ``health.failover`` event. ``metrics`` is the cell's
    registry snapshot (wire volume, drop counters).
    """
    fault_times = [
        event["t"] for event in events
        if str(event.get("kind", "")).startswith("fault.")
    ]
    failovers = [
        event for event in events
        if event.get("kind") == "health.failover"
    ]
    fault_at = min(fault_times) if fault_times else None

    recovery_time_s = (
        float(failovers[-1]["recovery_time_s"]) if failovers else 0.0
    )
    if fault_at is None:
        downtime_s = 0.0
    elif failovers:
        downtime_s = max(0.0, float(failovers[-1]["t"]) - fault_at)
    elif bytes_acked < size_bytes:
        # Never healed and lost work: down for the rest of the run.
        downtime_s = max(0.0, drained_at_s - fault_at)
    else:
        # Fault absorbed by retry/replay with no work lost.
        downtime_s = 0.0

    wire_bytes = _sum_metric(metrics, "link.bytes_sent")
    frames_dropped = _sum_metric(metrics, "net.faults.frames_dropped")
    availability = bytes_acked / size_bytes if size_bytes else 0.0
    goodput = bytes_acked / drained_at_s if drained_at_s > 0 else 0.0
    # max(acked, 1): a cell that delivered nothing still reports its
    # wire spend as a finite (per-byte-requested) cost, keeping the
    # response JSON-clean instead of infinite.
    bandwidth_cost = wire_bytes / max(bytes_acked, 1)

    return {
        "availability": availability,
        "recovery_time_s": recovery_time_s,
        "downtime_s": downtime_s,
        "goodput_bytes_per_s": goodput,
        "bandwidth_cost": bandwidth_cost,
        "wire_bytes": wire_bytes,
        "frames_dropped": frames_dropped,
        "replayed_bytes": float(replayed_bytes),
        "lost_bytes": float(max(0, size_bytes - bytes_acked)),
    }


class _SnapshotRegistry:
    """Adapter: a frozen snapshot behind the registry's read surface.

    :meth:`SloEngine.evaluate` touches nothing but ``snapshot()``, so
    cached cells can be (re-)judged against new objectives without
    rebuilding a simulator or invalidating the sweep cache.
    """

    def __init__(self, snapshot: Dict[str, float]):
        self._snapshot = dict(snapshot)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._snapshot)


def evaluate_cell_slo(
    cell: Dict[str, Any], specs: Sequence[SloSpec]
) -> Dict[str, Any]:
    """Judge one cached cell value against the given objectives.

    Returns the :class:`~repro.obs.slo.SloReport` description (plain
    dict) evaluated at the cell's drain time.
    """
    engine = SloEngine(list(specs))
    report = engine.evaluate(
        _SnapshotRegistry(cell["metrics"]),
        now=float(cell.get("drained_at_s", 0.0)),
    )
    return report.describe()
