"""RemoteBuffer: a byte buffer over (possibly disaggregated) pages.

The paper's promise is that applications use remote memory through
plain ``ld/st`` semantics with no code changes. This helper is the
library's ergonomic face of that promise: allocate a buffer with any
NUMA policy (local, remote-bound, interleaved), then ``read``/``write``
arbitrary byte ranges — the buffer walks the page mapping and issues
bus transactions, so bytes destined for a disaggregated page really
cross the simulated wire into the donor's DRAM.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..mem.address import AddressError, CACHELINE_BYTES
from ..osmodel.kernel import Mapping
from ..osmodel.pages import PagePolicy
from .node import Ac922Node

__all__ = ["RemoteBuffer"]

#: Default transfer window: lines moved per in-flight batch. Sixteen
#: cachelines (2 KiB) matches one LLC read frame's request capacity.
DEFAULT_BATCH_LINES = 16


class RemoteBuffer:
    """A process buffer backed by physical pages on one host.

    Cacheline-aligned runs inside one page are moved in *windows* of up
    to ``batch_lines`` lines. With ``batched=True`` each window is one
    burst transaction carried through the datapath as a unit; with
    ``batched=False`` the window's lines are issued as concurrent
    per-line transactions and joined — the reference formulation the
    burst path is timing-equivalent to. Unaligned head/tail fragments
    always go as plain transactions.
    """

    def __init__(self, node: Ac922Node, mapping: Mapping,
                 size: Optional[int] = None,
                 batch_lines: int = DEFAULT_BATCH_LINES,
                 batched: bool = True):
        self.node = node
        self.mapping = mapping
        #: Logical size: the mapping is page-rounded, the buffer is not.
        self._size = mapping.size if size is None else size
        if self._size > mapping.size:
            raise AddressError(
                f"buffer size {self._size} exceeds mapping {mapping.size}"
            )
        if batch_lines < 1:
            raise AddressError(f"batch_lines must be >= 1: {batch_lines}")
        self.batch_lines = batch_lines
        self.batched = batched
        self._freed = False

    # -- lifecycle ---------------------------------------------------------------
    @classmethod
    def allocate(
        cls,
        node: Ac922Node,
        size: int,
        policy: PagePolicy = PagePolicy.LOCAL,
        numa_nodes: Optional[Sequence[int]] = None,
        batch_lines: int = DEFAULT_BATCH_LINES,
        batched: bool = True,
    ) -> "RemoteBuffer":
        """mmap ``size`` bytes under ``policy`` on ``node``."""
        mapping = node.kernel.mmap(size, policy=policy, nodes=numa_nodes)
        return cls(node, mapping, size=size, batch_lines=batch_lines,
                   batched=batched)

    def free(self) -> None:
        if not self._freed:
            self.node.kernel.munmap(self.mapping)
            self._freed = True

    @property
    def size(self) -> int:
        return self._size

    def node_histogram(self):
        """Pages per NUMA node (e.g. to verify an interleave policy)."""
        return self.mapping.node_histogram()

    # -- chunking ----------------------------------------------------------------
    def _segments(self, offset: int, size: int):
        """(physical address, chunk size) pieces of a byte range.

        Consecutive virtual offsets may land on discontiguous physical
        pages (that is the whole point of paging), so accesses are
        chunked at page boundaries.
        """
        self._check(offset, size)
        page_bytes = self.mapping.page_bytes
        cursor = offset
        remaining = size
        while remaining > 0:
            in_page = page_bytes - (cursor % page_bytes)
            chunk = min(remaining, in_page)
            yield self.mapping.address_for_offset(cursor), chunk
            cursor += chunk
            remaining -= chunk

    def _check(self, offset: int, size: int) -> None:
        if self._freed:
            raise AddressError("buffer already freed")
        if offset < 0 or size < 0 or offset + size > self.size:
            raise AddressError(
                f"access [{offset}, {offset + size}) outside buffer of "
                f"{self.size} bytes"
            )

    def _windows(self, address: int, chunk: int):
        """Split one page segment into (address, size, is_run) pieces.

        ``is_run`` marks a cacheline-aligned run of whole lines (at most
        ``batch_lines`` of them); other pieces are unaligned fragments.
        """
        line = CACHELINE_BYTES
        head = min(chunk, (-address) % line)
        if head:
            yield address, head, False
            address += head
            chunk -= head
        window_bytes = self.batch_lines * line
        while chunk >= line:
            size = min(chunk - chunk % line, window_bytes)
            yield address, size, True
            address += size
            chunk -= size
        if chunk:
            yield address, chunk, False

    # -- timed access (simulation processes) -----------------------------------------
    def write_process(self, offset: int, data: bytes) -> Generator:
        bus = self.node.bus
        # One memoryview over the caller's buffer; every page segment
        # and window below is a zero-copy slice of it. The old
        # ``data[:chunk], data[chunk:]`` split copied the remaining
        # tail once per page — quadratic in buffer size.
        view = memoryview(data)
        cursor = 0
        for address, chunk in self._segments(offset, len(data)):
            piece = view[cursor : cursor + chunk]
            cursor += chunk
            for start, size, is_run in self._windows(address, chunk):
                part = piece[start - address : start - address + size]
                if not is_run:
                    yield bus.store(start, part)
                elif self.batched:
                    yield bus.store_burst(start, part)
                else:
                    pending = [
                        bus.store(
                            start + line * CACHELINE_BYTES,
                            part[
                                line * CACHELINE_BYTES :
                                (line + 1) * CACHELINE_BYTES
                            ],
                        )
                        for line in range(size // CACHELINE_BYTES)
                    ]
                    for waitable in pending:
                        yield waitable

    def read_process(self, offset: int, size: int) -> Generator:
        bus = self.node.bus
        parts: List[bytes] = []
        for address, chunk in self._segments(offset, size):
            for start, span, is_run in self._windows(address, chunk):
                if not is_run:
                    parts.append((yield bus.load(start, span)))
                elif self.batched:
                    parts.append(
                        (yield bus.load_burst(
                            start, span // CACHELINE_BYTES
                        ))
                    )
                else:
                    pending = [
                        bus.load(
                            start + line * CACHELINE_BYTES, CACHELINE_BYTES
                        )
                        for line in range(span // CACHELINE_BYTES)
                    ]
                    for waitable in pending:
                        parts.append((yield waitable))
        return b"".join(parts)

    # -- convenience (runs the simulator) -----------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        """Blocking write: runs the simulation until the bytes landed."""
        self.node.sim.run_process(self.write_process(offset, data))

    def read(self, offset: int, size: int) -> bytes:
        """Blocking read through the full (possibly remote) datapath."""
        return self.node.sim.run_process(self.read_process(offset, size))

    # -- python conveniences ----------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __getitem__(self, key: slice) -> bytes:
        if not isinstance(key, slice) or key.step not in (None, 1):
            raise AddressError("only contiguous slices are supported")
        start, stop, _ = key.indices(self.size)
        return self.read(start, max(0, stop - start))

    def __setitem__(self, key: slice, data: bytes) -> None:
        if not isinstance(key, slice) or key.step not in (None, 1):
            raise AddressError("only contiguous slices are supported")
        start, stop, _ = key.indices(self.size)
        if stop - start != len(data):
            raise AddressError(
                f"slice of {stop - start} bytes != data of {len(data)}"
            )
        self.write(start, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RemoteBuffer({self.node.hostname!r}, {self.size} bytes, "
            f"nodes={self.node_histogram() if not self._freed else '-'})"
        )
