"""The SoC main bus: address-routed, timed load/store dispatch.

"From the System-on-Chip main bus standpoint, every peripheral is
memory-mapped … and communicates with specific load and store
transactions" (§I). The bus maps real-address windows to targets — DRAM
controllers, or an OpenCAPI-attached device in M1 mode (which then
behaves exactly like a memory controller for its window).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Protocol, Tuple

from ..mem.address import AddressError, AddressRange, CACHELINE_BYTES
from ..mem.dram import DramDevice
from ..obs import trace as _trace
from ..sim.engine import Process, Simulator
from .transactions import MemTransaction, ResponseCode, TLCommand

__all__ = ["BusTarget", "DramBusTarget", "SystemBus", "BusError"]


class BusError(RuntimeError):
    """Unroutable address or failed bus transaction."""


class BusTarget(Protocol):
    """Anything the bus can dispatch a transaction to.

    ``handle`` receives a request transaction whose address is already in
    the *target's* window, and must return a simulation
    :class:`~repro.sim.engine.Process` whose result is the response
    transaction.
    """

    def handle(self, txn: MemTransaction) -> Process:  # pragma: no cover
        ...


class DramBusTarget:
    """Adapter presenting a :class:`DramDevice` as a bus target."""

    def __init__(self, dram: DramDevice):
        self.dram = dram

    def handle(self, txn: MemTransaction) -> Process:
        sim = self.dram.sim
        return sim.process(self._serve(txn), name="dram.handle")

    def _serve(self, txn: MemTransaction) -> Generator:
        sim = self.dram.sim
        if _trace.ENABLED:
            _trace.txn_mark(
                sim.now, txn.base_txn_id, "dram.service", self.dram.name
            )
        response = yield from self._service(txn)
        if _trace.ENABLED:
            _trace.txn_mark(
                sim.now, txn.base_txn_id, "dram.done", self.dram.name
            )
        return response

    def _service(self, txn: MemTransaction) -> Generator:
        if txn.command == TLCommand.RD_MEM:
            if txn.burst > 1:
                data = yield self.dram.read_burst(txn.address, txn.burst)
            else:
                data = yield self.dram.read(txn.address, txn.size)
            return txn.make_response(data=data)
        if txn.command == TLCommand.WRITE_MEM:
            if txn.burst > 1:
                yield self.dram.write_burst(txn.address, txn.data)
            else:
                yield self.dram.write(txn.address, txn.data)
            return txn.make_response()
        return txn.make_response(code=ResponseCode.ADDRESS_ERROR)


class SystemBus:
    """Routes real-address transactions to the mapped target.

    Windows must not overlap. Lookup is a linear scan over a sorted list
    — node bus maps are tiny (DRAM per socket + a handful of devices).
    """

    def __init__(self, sim: Simulator, name: str = "bus"):
        self.sim = sim
        self.name = name
        self._map: List[Tuple[AddressRange, BusTarget]] = []
        self.loads = 0
        self.stores = 0

    # -- construction -----------------------------------------------------------
    def attach(self, window: AddressRange, target: BusTarget) -> None:
        for existing, _target in self._map:
            if existing.overlaps(window):
                raise BusError(
                    f"{self.name}: window {window!r} overlaps {existing!r}"
                )
        self._map.append((window, target))
        self._map.sort(key=lambda pair: pair[0].start)

    def detach(self, window: AddressRange) -> None:
        for index, (existing, _target) in enumerate(self._map):
            if existing == window:
                del self._map[index]
                return
        raise BusError(f"{self.name}: window {window!r} not attached")

    def attach_dram(self, dram: DramDevice) -> None:
        self.attach(dram.window, DramBusTarget(dram))

    # -- routing ------------------------------------------------------------------
    def target_for(self, address: int, size: int) -> Tuple[AddressRange, BusTarget]:
        access = AddressRange(address, size)
        for window, target in self._map:
            if window.contains_range(access):
                return window, target
            if window.overlaps(access):
                raise BusError(
                    f"{self.name}: access [{address:#x}, "
                    f"{address + size:#x}) straddles window {window!r}"
                )
        raise BusError(
            f"{self.name}: no target mapped at {address:#x} (+{size})"
        )

    def windows(self) -> List[AddressRange]:
        return [window for window, _target in self._map]

    # -- timed operations ------------------------------------------------------------
    def issue(self, txn: MemTransaction) -> Process:
        """Dispatch a prepared transaction; returns the response process."""
        _window, target = self.target_for(txn.address, txn.size)
        txn.issued_at = self.sim.now
        if txn.command == TLCommand.RD_MEM:
            self.loads += txn.burst
            if _trace.ENABLED:
                _trace.txn_begin(
                    self.sim.now, txn.base_txn_id, "load", txn.size, self.name
                )
        elif txn.command == TLCommand.WRITE_MEM:
            self.stores += txn.burst
            if _trace.ENABLED:
                _trace.txn_begin(
                    self.sim.now, txn.base_txn_id, "store", txn.size, self.name
                )
        return target.handle(txn)

    def load(self, address: int, size: int = CACHELINE_BYTES) -> Process:
        """Timed load; the process result is the data bytes."""
        return self.sim.process(
            self._load(address, size), name=f"{self.name}.load"
        )

    def store(self, address: int, data: bytes) -> Process:
        """Timed store; the process result is the response code."""
        return self.sim.process(
            self._store(address, data), name=f"{self.name}.store"
        )

    def load_burst(self, address: int, lines: int) -> Process:
        """Timed batched load of ``lines`` contiguous cachelines.

        The whole run must fall inside one bus window (callers batch
        within a page, which never straddles windows).
        """
        return self.sim.process(
            self._issue_burst(MemTransaction.read_burst(address, lines)),
            name=f"{self.name}.load",
        )

    def store_burst(self, address: int, data: bytes) -> Process:
        """Timed batched store of contiguous cachelines."""
        return self.sim.process(
            self._issue_burst(MemTransaction.write_burst(address, data)),
            name=f"{self.name}.store",
        )

    def register_metrics(self, registry, **labels) -> None:
        """Expose the per-node load/store mix through a pull collector."""

        def collect(reg):
            reg.gauge("bus.loads", bus=self.name, **labels).set(self.loads)
            reg.gauge("bus.stores", bus=self.name, **labels).set(self.stores)

        registry.add_collector(collect)

    def _issue_burst(self, txn: MemTransaction) -> Generator:
        response = yield self.issue(txn)
        if _trace.ENABLED:
            _trace.txn_end(self.sim.now, txn.base_txn_id, self.name)
        if response.response_code is not ResponseCode.OK:
            raise BusError(
                f"{self.name}: burst {txn.command.name} {txn.address:#x} "
                f"failed: {response.response_code.name}"
            )
        if txn.command == TLCommand.RD_MEM:
            return response.data
        return response.response_code

    def _load(self, address: int, size: int) -> Generator:
        txn = MemTransaction.read(address, size)
        response = yield self.issue(txn)
        if _trace.ENABLED:
            _trace.txn_end(self.sim.now, txn.base_txn_id, self.name)
        if response.response_code is not ResponseCode.OK:
            raise BusError(
                f"{self.name}: load {address:#x} failed: "
                f"{response.response_code.name}"
            )
        return response.data

    def _store(self, address: int, data: bytes) -> Generator:
        txn = MemTransaction.write(address, data)
        response = yield self.issue(txn)
        if _trace.ENABLED:
            _trace.txn_end(self.sim.now, txn.base_txn_id, self.name)
        if response.response_code is not ResponseCode.OK:
            raise BusError(
                f"{self.name}: store {address:#x} failed: "
                f"{response.response_code.name}"
            )
        return response.response_code

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SystemBus({self.name!r}, windows={len(self._map)})"
