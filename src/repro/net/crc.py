"""Frame integrity checking.

The Aurora datalink layer provides CRC support (§V); the LLC uses it to
detect corrupted frames and trigger replay. We compute a real CRC-32
over the frame's serialized transaction headers, so corruption detection
in tests is exercised with genuine check math rather than a flag.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable

__all__ = ["crc32", "frame_digest_bytes", "check"]


def crc32(data: bytes) -> int:
    """CRC-32 (IEEE) of ``data``."""
    return zlib.crc32(data) & 0xFFFFFFFF


def frame_digest_bytes(
    frame_id: int, flit_signature: Iterable[int]
) -> bytes:
    """Canonical byte serialization of a frame's identity for CRC.

    ``flit_signature`` is a stable per-flit integer summary (txn ids and
    commands); including the frame id makes mis-sequenced frames fail
    the check too.
    """
    signature = (
        flit_signature
        if isinstance(flit_signature, (list, tuple))
        else list(flit_signature)
    )
    return struct.pack(
        f"<Q{len(signature)}q",
        frame_id & 0xFFFFFFFFFFFFFFFF,
        *signature,
    )


def check(expected_crc: int, data: bytes) -> bool:
    """True when ``data`` still matches ``expected_crc``."""
    return crc32(data) == expected_crc
