"""Fig. 9 — Elasticsearch ESRally "nested" track throughput.

Series: challenges {RTQ, RNQIHBS, RSTQ, MA} × shards {5, 32} × all five
configurations.

Shape claims asserted (§VI-F):
* RTQ: scale-out outperforms every other configuration including local;
* RNQIHBS / RSTQ: scale-out beats the ThymesisFlow trio, and shard
  scaling 5→32 *degrades* throughput (sync-heavy challenges);
* MA: every configuration converges (client-path bound).

Known deviation (recorded in EXPERIMENTS.md): within the ThymesisFlow
trio on RTQ the paper measures bonding ahead of interleaved; our model
keeps interleaved ahead (its effective bandwidth bound is higher), while
preserving single-channel as the clear loser.
"""

import pytest
from conftest import print_table, save_results, sweep_payload

from repro.apps import ElasticsearchModel
from repro.testbed import MemoryConfigKind, make_environment
from repro.workloads import Challenge

ORDER = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.SCALE_OUT,
    MemoryConfigKind.INTERLEAVED,
    MemoryConfigKind.BONDING_DISAGGREGATED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
)
SHARDS = (5, 32)


def compute_payload(shards=SHARDS):
    """Sweep target: nested-track throughput for every series point."""
    environments = {kind: make_environment(kind) for kind in ORDER}
    return {
        f"{challenge.name}/{count}/{kind.value}": ElasticsearchModel(
            environments[kind], count
        ).throughput_qps(challenge)
        for challenge in Challenge
        for count in shards
        for kind in ORDER
    }


def test_fig9_elasticsearch(once):
    results = once(sweep_payload, __file__, shards=SHARDS)

    rows = []
    for challenge in Challenge:
        for shards in SHARDS:
            so = results[f"{challenge.name}/{shards}/scale-out"]
            for kind in ORDER:
                qps = results[f"{challenge.name}/{shards}/{kind.value}"]
                rows.append(
                    (
                        challenge.name,
                        shards,
                        kind.value,
                        f"{qps:.1f}",
                        f"{100 * (qps / so - 1):+.1f}%",
                    )
                )
    print_table(
        "Fig. 9 — nested track throughput (ops/s, % vs scale-out)",
        ["challenge", "shards", "config", "ops/s", "vs scale-out"],
        rows,
    )
    save_results("fig9", results)

    get = lambda c, s, k: results[f"{c}/{s}/{k.value}"]

    # RTQ: scale-out wins outright, including over local (§VI-F).
    for shards in SHARDS:
        values = {kind: get("RTQ", shards, kind) for kind in ORDER}
        assert values[MemoryConfigKind.SCALE_OUT] == max(values.values())
        assert (
            values[MemoryConfigKind.SCALE_OUT]
            > 1.3 * values[MemoryConfigKind.LOCAL]
        )
        # The TF trio trails far behind; single is the worst.
        assert values[MemoryConfigKind.SINGLE_DISAGGREGATED] == min(
            values.values()
        )
        assert (
            values[MemoryConfigKind.SINGLE_DISAGGREGATED]
            < 0.5 * values[MemoryConfigKind.SCALE_OUT]
        )

    # Sync-heavy challenges: scale-out beats the TF trio; the average
    # advantage is ordered interleaved < bonding < single (paper:
    # 17.95% / 41.26% / 60.61%).
    def average_gap(kind):
        gaps = []
        for challenge in ("RNQIHBS", "RSTQ", "MA"):
            so = get(challenge, 32, MemoryConfigKind.SCALE_OUT)
            gaps.append(1 - get(challenge, 32, kind) / so)
        return sum(gaps) / len(gaps)

    gap_interleaved = average_gap(MemoryConfigKind.INTERLEAVED)
    gap_bonding = average_gap(MemoryConfigKind.BONDING_DISAGGREGATED)
    gap_single = average_gap(MemoryConfigKind.SINGLE_DISAGGREGATED)
    assert gap_interleaved < gap_bonding < gap_single
    assert 0.05 <= gap_interleaved <= 0.35
    assert 0.20 <= gap_single <= 0.60

    # Shard scaling 5 -> 32 degrades the sync-heavy challenges.
    for challenge in ("RNQIHBS", "RSTQ"):
        assert get(challenge, 32, MemoryConfigKind.LOCAL) < get(
            challenge, 5, MemoryConfigKind.LOCAL
        )

    # MA converges across configurations at the reference shard count.
    ma5 = [get("MA", 5, kind) for kind in ORDER]
    assert max(ma5) / min(ma5) < 1.25
