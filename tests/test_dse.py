"""Fault-campaign design-space exploration: builders, models, reports.

Covers the DSE package end to end: factor-space validation, factorial
and evolutionary design builders (including the typed empty-feasible-
set refusal), the campaign param-spec table and its REST catalogue
route, RNG-stream hygiene in the fault hook, cell error paths, cache
resumption, the effects model (against constructed ground truth and
the accel solver differential), and decision-support report building.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.errors import HTTP_STATUS_BY_CODE
from repro.mem import MIB
from repro.resilience import (
    CAMPAIGN_PARAMS,
    CampaignParamError,
    UnknownCampaignError,
    campaign_catalogue,
    make_campaign,
    make_rest_fault_hook,
    validate_campaign_params,
)
from repro.resilience.dse import (
    CELL_TARGET,
    DseDesignError,
    EmptyFeasibleSetError,
    EvolutionarySearch,
    build_report,
    cells_for,
    default_space,
    evaluate_cell_slo,
    fit_effects,
    fractional_factorial,
    full_factorial,
    render_markdown,
    render_text,
    run_cell,
)
from repro.resilience.dse.responses import DEFAULT_SLOS, compute_responses


# -- factor space -----------------------------------------------------------------


class TestFactorSpace:
    def test_default_space_axes_in_order(self):
        space = default_space()
        assert space.names == [
            "frame_flits", "credit_depth", "bonding",
            "loss_rate", "campaign", "failover_policy",
        ]

    def test_campaign_choices_track_catalogue(self):
        factor = default_space().factor("campaign")
        assert set(factor.choices) == {"none"} | set(CAMPAIGN_PARAMS)

    def test_unknown_factor_raises(self):
        with pytest.raises(DseDesignError, match="unknown factor"):
            default_space().levels({"wavelength_nm": [1550]})

    def test_out_of_range_level_raises(self):
        with pytest.raises(DseDesignError, match="outside"):
            default_space().levels({"frame_flits": [4]})
        with pytest.raises(DseDesignError, match="outside"):
            default_space().levels({"loss_rate": [0.9]})

    def test_wrong_typed_level_raises(self):
        with pytest.raises(DseDesignError, match="integer"):
            default_space().levels({"frame_flits": [8.5]})
        with pytest.raises(DseDesignError, match="boolean"):
            default_space().levels({"bonding": [1]})
        with pytest.raises(DseDesignError, match="not in"):
            default_space().levels({"failover_policy": ["yolo"]})

    def test_duplicate_levels_raise(self):
        with pytest.raises(DseDesignError, match="duplicate"):
            default_space().levels({"frame_flits": [8, 8]})

    def test_validate_point_requires_every_factor(self):
        space = default_space()
        with pytest.raises(DseDesignError, match="missing factor"):
            space.validate_point({"frame_flits": 8})
        point = {
            "frame_flits": 8, "credit_depth": 64, "bonding": False,
            "loss_rate": 0.0, "campaign": "none",
            "failover_policy": "fast",
        }
        assert space.validate_point(point) == point
        with pytest.raises(DseDesignError, match="unknown factor"):
            space.validate_point({**point, "lasers": 3})

    def test_error_codes_route_to_http_400(self):
        assert HTTP_STATUS_BY_CODE["dse/bad-design"] == 400
        assert HTTP_STATUS_BY_CODE["dse/empty-feasible-set"] == 400
        assert (
            HTTP_STATUS_BY_CODE["resilience/bad-campaign-params"] == 400
        )


# -- design builders --------------------------------------------------------------


LEVELS = {"a": [1, 2], "b": [10, 20, 30], "c": [True, False]}


class TestFactorialDesigns:
    def test_full_factorial_is_ordered_cartesian_product(self):
        points = full_factorial(LEVELS)
        assert len(points) == 12
        assert points[0] == {"a": 1, "b": 10, "c": True}
        assert points[-1] == {"a": 2, "b": 30, "c": False}
        # first axis varies slowest
        assert [p["a"] for p in points[:6]] == [1] * 6

    def test_empty_space_raises(self):
        with pytest.raises(DseDesignError, match="empty factor space"):
            full_factorial({})

    def test_fraction_phases_partition_the_grid(self):
        key = lambda p: json.dumps(p, sort_keys=True)
        full = {key(p) for p in full_factorial(LEVELS)}
        half0 = {key(p) for p in fractional_factorial(LEVELS, 2, 0)}
        half1 = {key(p) for p in fractional_factorial(LEVELS, 2, 1)}
        assert half0 | half1 == full
        assert not half0 & half1

    def test_bad_fraction_and_phase_raise(self):
        with pytest.raises(DseDesignError, match="fraction"):
            fractional_factorial(LEVELS, 0)
        with pytest.raises(DseDesignError, match="phase"):
            fractional_factorial(LEVELS, 2, 2)

    def test_impossible_fraction_is_typed_empty_set(self):
        with pytest.raises(EmptyFeasibleSetError):
            fractional_factorial({"a": [1]}, 2, 1)

    def test_cells_replicate_with_derived_seeds(self):
        cells = cells_for([{"a": 1}, {"a": 2}], replicates=3, base_seed=40)
        assert len(cells) == 6
        assert [c.seed for c in cells if c.point == {"a": 1}] == [40, 41, 42]
        assert [c.replicate for c in cells[:3]] == [0, 1, 2]
        with pytest.raises(DseDesignError, match="replicates"):
            cells_for([{"a": 1}], replicates=0, base_seed=0)


class TestEvolutionarySearch:
    LEVELS = {"x": [0, 1, 2, 3], "y": [0, 1, 2, 3]}

    @staticmethod
    def _fitness(points):
        # Convex bowl with the optimum at (3, 3).
        return [
            (3 - p["x"]) ** 2 + (3 - p["y"]) ** 2 for p in points
        ]

    def test_finds_the_optimum_and_is_deterministic(self):
        runs = []
        for _ in range(2):
            search = EvolutionarySearch(
                self.LEVELS, population=6, generations=6, seed=11
            )
            runs.append(search.run(self._fitness))
        assert runs[0].best == {"x": 3, "y": 3}
        assert runs[0].best_fitness == 0.0
        assert runs[0].evaluated == runs[1].evaluated
        assert runs[0].generations == runs[1].generations
        # best-so-far never regresses across generations
        history = [g["best_fitness"] for g in runs[0].generations]
        assert history == sorted(history, reverse=True)

    def test_points_never_reevaluated(self):
        seen = []

        def fitness(points):
            keys = [json.dumps(p, sort_keys=True) for p in points]
            assert not set(keys) & set(seen)
            seen.extend(keys)
            return self._fitness(points)

        EvolutionarySearch(
            self.LEVELS, population=5, generations=5, seed=3
        ).run(fitness)

    def test_empty_feasible_set_raises_before_evaluating(self):
        search = EvolutionarySearch(
            self.LEVELS,
            population=4,
            generations=2,
            seed=0,
            feasible=lambda p: p["x"] + p["y"] > 100,
        )
        with pytest.raises(EmptyFeasibleSetError):
            search.run(lambda points: pytest.fail("evaluated a point"))

    def test_feasibility_constrains_the_search(self):
        search = EvolutionarySearch(
            self.LEVELS,
            population=6,
            generations=4,
            seed=5,
            feasible=lambda p: p["x"] < 2,
        )
        result = search.run(self._fitness)
        assert all(
            json.loads(key)["x"] < 2 for key in result.evaluated
        )
        assert result.best["x"] == 1

    def test_bad_parameters_raise(self):
        with pytest.raises(DseDesignError, match="population"):
            EvolutionarySearch(self.LEVELS, population=1)
        with pytest.raises(DseDesignError, match="tournament"):
            EvolutionarySearch(self.LEVELS, population=4, tournament=9)
        with pytest.raises(DseDesignError, match="mutation_rate"):
            EvolutionarySearch(self.LEVELS, mutation_rate=1.5)
        with pytest.raises(DseDesignError, match="generations"):
            EvolutionarySearch(self.LEVELS, generations=0)

    def test_evaluator_arity_mismatch_raises(self):
        search = EvolutionarySearch(
            self.LEVELS, population=4, generations=2, seed=0
        )
        with pytest.raises(DseDesignError, match="fitness"):
            search.run(lambda points: [1.0])


# -- campaign param-spec table (satellite) ---------------------------------------


class TestCampaignParamTable:
    def test_every_campaign_has_a_schema(self):
        from repro.resilience import CAMPAIGNS

        assert set(CAMPAIGN_PARAMS) == set(CAMPAIGNS)

    def test_catalogue_is_sorted_and_described(self):
        catalogue = campaign_catalogue()
        names = [entry["name"] for entry in catalogue]
        assert names == sorted(CAMPAIGN_PARAMS)
        brownout = next(e for e in catalogue if e["name"] == "brownout")
        assert brownout["doc"]
        params = {p["name"]: p for p in brownout["params"]}
        assert params["drop_probability"]["maximum"] == 1.0
        assert "doc" in params["at_s"]

    def test_unknown_campaign_is_distinct_from_bad_params(self):
        with pytest.raises(UnknownCampaignError) as info:
            validate_campaign_params("meteor-strike", {})
        assert info.value.code == "resilience/unknown-campaign"
        with pytest.raises(CampaignParamError) as info:
            validate_campaign_params("link-kill", {"duration_s": 1.0})
        assert info.value.code == "resilience/bad-campaign-params"
        # The param error still is an UnknownCampaignError subclass, so
        # pre-existing catch-all callers keep working.
        assert isinstance(info.value, UnknownCampaignError)

    def test_out_of_range_and_mistyped_values(self):
        with pytest.raises(CampaignParamError, match="outside"):
            validate_campaign_params(
                "brownout", {"drop_probability": 1.5}
            )
        with pytest.raises(CampaignParamError, match="number"):
            validate_campaign_params("link-flap", {"duration_s": "soon"})
        with pytest.raises(CampaignParamError):
            validate_campaign_params("link-kill", {"at_s": True})

    def test_validated_params_are_float_coerced(self):
        out = validate_campaign_params("link-flap", {"at_s": 1})
        assert out == {"at_s": 1.0}
        assert isinstance(out["at_s"], float)

    def test_make_campaign_validates_through_the_table(self):
        with pytest.raises(CampaignParamError):
            make_campaign("brownout", drop_probability=2.0)
        campaign = make_campaign("brownout", drop_probability=0.4)
        assert campaign.drop_probability == 0.4


class TestFaultCatalogueRoute:
    def _rack(self):
        from repro.testbed import RackTestbed

        return RackTestbed(nodes=2, channels_per_node=1)

    def test_get_faults_serves_the_catalogue(self):
        from repro.control import RestApi

        rack = self._rack()
        api = RestApi(rack.plane)
        status, body = api.handle(
            "GET", "/v1/faults", token=rack.admin_token
        )
        assert status == 200
        assert body["campaigns"] == campaign_catalogue()

    def test_get_faults_requires_read_permission(self):
        from repro.control import RestApi

        rack = self._rack()
        status, body = RestApi(rack.plane).handle(
            "GET", "/v1/faults", token=None
        )
        assert status == 401

    def test_bad_params_map_to_400_with_sharp_slug(self):
        from repro.control import RestApi

        rack = self._rack()
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        api = RestApi(rack.plane, fault_hook=make_rest_fault_hook(rack))
        status, body = api.handle(
            "POST",
            "/v1/faults",
            body={
                "campaign": "brownout",
                "attachment": attachment.attachment_id,
                "drop_probability": 7.0,
            },
            token=rack.admin_token,
        )
        assert status == 400
        assert body["code"] == "resilience/bad-campaign-params"


# -- RNG-stream hygiene (satellite) ----------------------------------------------


class TestFaultHookRngHygiene:
    def test_identical_posts_never_reuse_a_stream(self):
        from repro.control import RestApi
        from repro.testbed import RackTestbed

        rack = RackTestbed(nodes=2, channels_per_node=1)
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        api = RestApi(rack.plane, fault_hook=make_rest_fault_hook(rack))
        body = {
            "campaign": "brownout",
            "attachment": attachment.attachment_id,
            "at_s": 1e-6,
            "duration_s": 2e-6,
            "drop_probability": 0.5,
        }
        responses = []
        labels = []
        for _ in range(2):
            status, reply = api.handle(
                "POST", "/v1/faults", body=dict(body),
                token=rack.admin_token,
            )
            assert status == 202
            responses.append(reply)
            labels.append([
                link.faults.rng.label
                for link in rack.links_of("node1")
            ])
        assert responses[0]["call_index"] == 0
        assert responses[1]["call_index"] == 1
        assert responses[0]["rng_stream"] != responses[1]["rng_stream"]
        # The second POST reseeded every injector with a fresh stream.
        assert set(labels[0]).isdisjoint(labels[1])

    def test_hook_streams_derive_from_the_hook_seed(self):
        from repro.control import RestApi
        from repro.testbed import RackTestbed

        streams = []
        for _ in range(2):
            rack = RackTestbed(nodes=2, channels_per_node=1)
            attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
            api = RestApi(
                rack.plane, fault_hook=make_rest_fault_hook(rack, seed=9)
            )
            _, reply = api.handle(
                "POST",
                "/v1/faults",
                body={
                    "campaign": "link-kill",
                    "attachment": attachment.attachment_id,
                },
                token=rack.admin_token,
            )
            streams.append(reply["rng_stream"])
        assert streams[0] == streams[1]  # deterministic per hook seed


# -- cell runner error paths ------------------------------------------------------


class TestRunCellErrors:
    def test_unknown_campaign(self):
        with pytest.raises(DseDesignError):
            run_cell(campaign="meteor-strike", payload_kib=8)

    def test_out_of_range_factor_levels(self):
        with pytest.raises(DseDesignError, match="outside"):
            run_cell(frame_flits=4, payload_kib=8)
        with pytest.raises(DseDesignError, match="outside"):
            run_cell(credit_depth=0, payload_kib=8)
        with pytest.raises(DseDesignError, match="outside"):
            run_cell(loss_rate=0.75, payload_kib=8)

    def test_unknown_policy_and_bad_payload(self):
        with pytest.raises(DseDesignError, match="not in"):
            run_cell(failover_policy="heroic", payload_kib=8)
        with pytest.raises(DseDesignError, match="payload_kib"):
            run_cell(payload_kib=0)

    def test_campaign_params_rejected_for_fault_free_cell(self):
        with pytest.raises(DseDesignError, match="none"):
            run_cell(
                campaign="none",
                campaign_params={"at_s": 1e-6},
                payload_kib=8,
            )

    def test_bad_campaign_params_fail_before_simulation(self):
        with pytest.raises(CampaignParamError):
            run_cell(
                campaign="brownout",
                campaign_params={"drop_probability": 3.0},
                payload_kib=8,
            )


# -- cell runner semantics --------------------------------------------------------


class TestRunCellSemantics:
    def test_failover_cell_heals_and_is_fully_available(self):
        record = run_cell(
            campaign="link-kill", failover_policy="fast",
            payload_kib=32, seed=7,
        )
        assert record["verified"]
        assert record["failover"] is not None
        assert record["responses"]["availability"] == 1.0
        assert record["responses"]["recovery_time_s"] > 0.0
        assert record["responses"]["replayed_bytes"] > 0
        kinds = {event["kind"] for event in record["events"]}
        assert "fault.link_down" in kinds
        assert "health.failover" in kinds

    def test_canary_cell_loses_work_and_breaches_availability(self):
        from repro.obs.slo import parse_slo_specs

        record = run_cell(
            campaign="link-kill", failover_policy="none",
            payload_kib=32, seed=7,
        )
        assert record["write_failed"]
        assert record["responses"]["availability"] < 0.999
        assert record["responses"]["lost_bytes"] > 0
        verdict = evaluate_cell_slo(
            record, parse_slo_specs(DEFAULT_SLOS)
        )
        assert not verdict["ok"]
        breached = [
            r["name"] for r in verdict["results"] if not r["ok"]
        ]
        assert "availability-floor" in breached

    def test_fault_free_cell_is_clean(self):
        record = run_cell(campaign="none", payload_kib=16, seed=3)
        assert record["verified"]
        assert record["responses"]["availability"] == 1.0
        assert record["responses"]["downtime_s"] == 0.0
        assert record["events"] == []

    def test_cell_record_is_byte_deterministic(self):
        kwargs = dict(
            campaign="link-kill", failover_policy="fast",
            payload_kib=16, seed=5,
        )
        first = json.dumps(run_cell(**kwargs), sort_keys=True)
        second = json.dumps(run_cell(**kwargs), sort_keys=True)
        assert first == second


# -- response extraction ----------------------------------------------------------


class TestComputeResponses:
    def test_recovery_and_downtime_from_the_journal(self):
        events = [
            {"kind": "fault.link_down", "t": 10e-6},
            {
                "kind": "health.failover",
                "t": 25e-6,
                "recovery_time_s": 9e-6,
            },
        ]
        out = compute_responses(
            size_bytes=1000, bytes_acked=1000, drained_at_s=1e-3,
            events=events, metrics={}, replayed_bytes=64,
        )
        assert out["recovery_time_s"] == 9e-6
        assert out["downtime_s"] == pytest.approx(15e-6)
        assert out["availability"] == 1.0
        assert out["replayed_bytes"] == 64.0

    def test_unhealed_fault_is_down_to_end_of_run(self):
        events = [{"kind": "fault.link_down", "t": 10e-6}]
        out = compute_responses(
            size_bytes=1000, bytes_acked=400, drained_at_s=1e-3,
            events=events, metrics={}, replayed_bytes=0,
        )
        assert out["downtime_s"] == pytest.approx(1e-3 - 10e-6)
        assert out["availability"] == 0.4
        assert out["lost_bytes"] == 600.0

    def test_absorbed_fault_has_no_downtime(self):
        events = [{"kind": "fault.link_down", "t": 10e-6}]
        out = compute_responses(
            size_bytes=1000, bytes_acked=1000, drained_at_s=1e-3,
            events=events, metrics={}, replayed_bytes=0,
        )
        assert out["downtime_s"] == 0.0

    def test_wire_accounting_sums_label_sets(self):
        metrics = {
            "link.bytes_sent{link=a.up}": 500.0,
            "link.bytes_sent{link=b.up}": 700.0,
            "net.faults.frames_dropped{link=a.up}": 3.0,
        }
        out = compute_responses(
            size_bytes=100, bytes_acked=100, drained_at_s=1.0,
            events=[], metrics=metrics, replayed_bytes=0,
        )
        assert out["wire_bytes"] == 1200.0
        assert out["bandwidth_cost"] == 12.0
        assert out["frames_dropped"] == 3.0

    def test_zero_acked_stays_finite(self):
        out = compute_responses(
            size_bytes=100, bytes_acked=0, drained_at_s=1.0,
            events=[], metrics={"link.bytes_sent{link=a}": 50.0},
            replayed_bytes=0,
        )
        assert out["bandwidth_cost"] == 50.0
        assert out["availability"] == 0.0

    def test_missing_metric_is_a_breach(self):
        from repro.obs.slo import parse_slo_specs

        cell = {"metrics": {}, "drained_at_s": 0.0}
        verdict = evaluate_cell_slo(cell, parse_slo_specs(DEFAULT_SLOS))
        assert not verdict["ok"]
        assert all(
            r["reason"] == "metric absent from registry"
            for r in verdict["results"]
        )


# -- effects model ----------------------------------------------------------------


class TestEffectsModel:
    def test_recovers_constructed_main_effects(self):
        levels = {"a": ["lo", "hi"], "b": [1, 2]}
        effect = {
            ("lo",): 2.0, ("hi",): -2.0,
        }
        points = full_factorial(levels)
        values = [
            10.0
            + (2.0 if p["a"] == "lo" else -2.0)
            + (0.5 if p["b"] == 1 else -0.5)
            for p in points
        ]
        model = fit_effects(points, values, levels)
        assert model.mean == pytest.approx(10.0)
        assert model.r_squared == pytest.approx(1.0)
        assert model.ranking == ["a", "b"]
        a = model.factors[0]
        assert a["importance"] == pytest.approx(4.0)
        assert a["effects"]['"lo"'] == pytest.approx(2.0)
        assert a["effects"]['"hi"'] == pytest.approx(-2.0)
        b = model.factors[1]
        assert b["importance"] == pytest.approx(1.0)

    def test_recovers_constructed_interaction(self):
        levels = {"a": [0, 1], "b": [0, 1]}
        points = full_factorial(levels) * 2  # replicated
        values = [
            5.0 + (1.0 if p["a"] == p["b"] else -1.0) for p in points
        ]
        model = fit_effects(
            points, values, levels, interactions=[("a", "b")]
        )
        assert model.r_squared == pytest.approx(1.0)
        # Mains are flat; the interaction carries everything.
        assert all(
            entry["importance"] == pytest.approx(0.0, abs=1e-6)
            for entry in model.factors
        )
        inter = model.interactions[0]
        assert inter["factors"] == ["a", "b"]
        assert inter["importance"] == pytest.approx(2.0)
        assert inter["effects"]["0"]["0"] == pytest.approx(1.0)
        assert inter["effects"]["0"]["1"] == pytest.approx(-1.0)

    def test_single_level_factors_are_skipped(self):
        levels = {"a": [0, 1], "fixed": ["only"]}
        points = [{"a": 0, "fixed": "only"}, {"a": 1, "fixed": "only"}]
        model = fit_effects(points, [1.0, 3.0], levels)
        assert model.ranking == ["a"]

    def test_arity_and_emptiness_errors(self):
        with pytest.raises(DseDesignError, match="points"):
            fit_effects([{"a": 0}], [1.0, 2.0], {"a": [0, 1]})
        with pytest.raises(DseDesignError, match="no observations"):
            fit_effects([], [], {"a": [0, 1]})
        with pytest.raises(DseDesignError, match="non-varying"):
            fit_effects(
                [{"a": 0, "b": 0}],
                [1.0],
                {"a": [0, 1], "b": [0]},
                interactions=[("a", "b")],
            )


class TestSolverDifferential:
    def test_backends_agree_bit_for_bit(self):
        from repro.accel import numpy_backend, python_backend
        from repro.sim.rng import SeededRNG

        rng = SeededRNG(123).derive("solver")
        n = numpy_backend.SOLVE_MIN + 5  # forces the vectorized path
        matrix = [
            [rng.uniform(-2.0, 2.0) for _ in range(n)] for _ in range(n)
        ]
        for i in range(n):
            matrix[i][i] += n  # diagonal dominance: well conditioned
        rhs = [rng.uniform(-1.0, 1.0) for _ in range(n)]
        reference = python_backend.solve_linear_system(matrix, rhs)
        vectorized = numpy_backend.solve_linear_system(matrix, rhs)
        assert vectorized == reference  # exact, not approx

    def test_small_systems_take_the_reference_path(self):
        from repro.accel import numpy_backend, python_backend

        matrix = [[2.0, 1.0], [1.0, 3.0]]
        rhs = [3.0, 5.0]
        assert numpy_backend.solve_linear_system(
            matrix, rhs
        ) == python_backend.solve_linear_system(matrix, rhs)

    def test_singular_systems_raise_everywhere(self):
        from repro.accel import numpy_backend, python_backend

        n = numpy_backend.SOLVE_MIN + 2
        matrix = [[0.0] * n for _ in range(n)]
        rhs = [1.0] * n
        with pytest.raises(ZeroDivisionError):
            python_backend.solve_linear_system(matrix, rhs)
        with pytest.raises(ZeroDivisionError):
            numpy_backend.solve_linear_system(matrix, rhs)


# -- report building --------------------------------------------------------------


def _fake_cell(point, seed, replicate, availability, cost):
    responses = {
        "availability": availability,
        "recovery_time_s": 0.0,
        "downtime_s": 0.0,
        "goodput_bytes_per_s": 1e8,
        "bandwidth_cost": cost,
        "wire_bytes": cost * 100.0,
        "frames_dropped": 0.0,
        "replayed_bytes": 0.0,
        "lost_bytes": (1.0 - availability) * 1000,
    }
    metrics = {
        f"dse.{name}{{component=dse}}": value
        for name, value in responses.items()
    }
    return {
        "point": dict(point),
        "seed": seed,
        "replicate": replicate,
        "value": {
            "responses": responses,
            "metrics": metrics,
            "verified": availability == 1.0,
            "drained_at_s": 1e-3,
        },
    }


class TestBuildReport:
    LEVELS = {"flits": [8, 16], "policy": ["fast", "none"]}

    def _cells(self):
        cells = []
        for point in full_factorial(self.LEVELS):
            availability = 1.0 if point["policy"] == "fast" else 0.5
            cost = 10.0 if point["flits"] == 16 else 20.0
            for replicate in range(2):
                cells.append(_fake_cell(
                    point, 40 + replicate, replicate, availability, cost
                ))
        return cells

    def _report(self):
        return build_report(
            design={"kind": "factorial"},
            cells=self._cells(),
            levels=self.LEVELS,
        )

    def test_ranking_passes_cheapest_first_and_flags_breaches(self):
        report = self._report()
        passing = report["ranking"]["passing"]
        breaching = report["ranking"]["breaching"]
        assert len(passing) == 2 and len(breaching) == 2
        assert json.loads(passing[0])["flits"] == 16  # cheapest wire
        assert all(
            json.loads(key)["policy"] == "none" for key in breaching
        )
        for row in report["configs"]:
            if row["point"]["policy"] == "none":
                assert row["breached"] == ["availability-floor"]
        assert report["recommendation"] == {
            "flits": 16, "policy": "fast",
        }

    def test_sensitivity_names_the_dominant_factor(self):
        report = self._report()
        availability = report["sensitivity"]["availability"]
        assert availability["factors"][0]["factor"] == "policy"
        cost = report["sensitivity"]["bandwidth_cost"]
        assert cost["factors"][0]["factor"] == "flits"

    def test_replicate_means_and_all_must_pass(self):
        cells = [
            _fake_cell({"flits": 8}, 1, 0, 1.0, 10.0),
            _fake_cell({"flits": 8}, 2, 1, 0.5, 30.0),
        ]
        report = build_report(
            design={"kind": "factorial"},
            cells=cells,
            levels={"flits": [8]},
        )
        row = report["configs"][0]
        assert row["responses"]["bandwidth_cost"] == 20.0
        assert not row["slo_ok"]  # one breaching replicate fails it

    def test_report_is_deterministic_and_renders(self):
        first = json.dumps(self._report(), sort_keys=True)
        second = json.dumps(self._report(), sort_keys=True)
        assert first == second
        report = self._report()
        text = render_text(report)
        assert "configurations breaching SLOs" in text
        assert "availability-floor" in text
        assert "recommendation:" in text
        markdown = render_markdown(report)
        assert "## Ranking" in markdown
        assert "BREACH: availability-floor" in markdown

    def test_empty_design_and_bad_objective_raise(self):
        with pytest.raises(DseDesignError, match="empty"):
            build_report(
                design={}, cells=[], levels=self.LEVELS
            )
        with pytest.raises(DseDesignError, match="objective"):
            build_report(
                design={},
                cells=self._cells(),
                levels=self.LEVELS,
                objective="vibes",
            )


# -- cache resumption (satellite) -------------------------------------------------


class TestResumption:
    def _specs(self):
        from repro.sweep import make_spec

        points = full_factorial({
            "frame_flits": [8, 16],
        })
        specs = []
        for cell in cells_for(points, replicates=1, base_seed=3):
            specs.append(make_spec(
                CELL_TARGET,
                seed=cell.seed,
                payload_kib=8,
                campaign="none",
                **cell.point,
            ))
        return specs

    def test_killed_run_resumes_from_cache(self, tmp_path):
        from repro.sweep import SweepEngine

        cache_dir = str(tmp_path / "cache")
        specs = self._specs()

        # "Killed" first invocation: only one cell completed.
        first = SweepEngine(jobs=1, cache_dir=cache_dir)
        partial = first.run(specs[:1])
        assert first.executed == 1

        # Second invocation redoes the whole design: the completed
        # cell is served from cache, only the remainder executes.
        second = SweepEngine(jobs=1, cache_dir=cache_dir)
        outcomes = second.run(specs)
        assert second.cache_hits == 1
        assert second.executed == len(specs) - 1
        assert outcomes[0].cached
        assert outcomes[0].value == partial[0].value

        # Warm rerun: every cell from cache, values identical.
        third = SweepEngine(jobs=1, cache_dir=cache_dir)
        warm = third.run(specs)
        assert third.cache_hits == len(specs)
        assert third.executed == 0
        assert [o.value for o in warm] == [o.value for o in outcomes]


# -- CLI --------------------------------------------------------------------------


class TestDseCli:
    def _run(self, argv):
        from repro.__main__ import main

        stdout = io.StringIO()
        with redirect_stdout(stdout):
            code = main(argv)
        return code, stdout.getvalue()

    def test_factorial_cli_end_to_end(self, tmp_path):
        out = str(tmp_path / "artifacts")
        cache = str(tmp_path / "cache")
        argv = [
            "dse",
            "--factor", "frame_flits=8",
            "--factor", "loss_rate=0.0",
            "--factor", "failover_policy=fast,none",
            "--payload-kib", "32",
            "--seed", "7",
            "--out", out,
            "--cache-dir", cache,
        ]
        code, text = self._run(argv)
        assert code == 0
        assert "configurations breaching SLOs" in text
        assert "availability-floor" in text

        report_path = tmp_path / "artifacts" / "dse-report.json"
        first = report_path.read_bytes()
        report = json.loads(first)
        assert report["ranking"]["breaching"]
        assert report["recommendation"]["failover_policy"] == "fast"
        markdown = (tmp_path / "artifacts" / "dse-report.md").read_bytes()

        # Warm rerun: all cells from cache, artifacts byte-identical.
        code, text = self._run(argv)
        assert code == 0
        assert "cache 4 hits" in text
        assert report_path.read_bytes() == first
        assert (
            tmp_path / "artifacts" / "dse-report.md"
        ).read_bytes() == markdown

    def test_help_lists_dse(self):
        from repro.__main__ import _build_parser

        stdout = io.StringIO()
        with redirect_stdout(stdout):
            _build_parser().print_help()
        assert "dse" in stdout.getvalue()
