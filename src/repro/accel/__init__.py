"""Selectable accelerated backend for the hot datapath math.

The bulk datapath computes three families of numbers over and over:
serialization schedules for runs of frames on a link, per-line frame
digest signatures for CRC coverage, and DRAM bank service windows for
burst transactions. Each family is expressed here as a *kernel* with
two interchangeable implementations:

* :mod:`repro.accel.python_backend` — the pure-Python reference. Always
  available; the semantics every other backend must reproduce
  bit-for-bit.
* :mod:`repro.accel.numpy_backend` — numpy batch operations over whole
  burst/frame batches. Falls back to the scalar formulation below a
  small batch threshold (where array overhead dominates), and performs
  the *same float operations in the same association order* above it,
  so every timestamp, digest and counter is bit-identical to the
  Python backend (gated by ``tests/test_accel_equivalence.py``).

Selection happens once at import via the ``REPRO_BACKEND`` environment
variable (``python`` or ``numpy``). Unset, the fastest available
backend wins (numpy when importable). Requesting ``numpy`` on a host
without it falls back to ``python`` and records the reason — visible
via ``python -m repro backends`` and :func:`backend_info`.

The active backend participates in the sweep-cache identity: RunSpec
fingerprints embed :data:`ops` ``.NAME`` so content-addressed results
produced by different backends can never be conflated (see
``repro.sweep.spec``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from types import ModuleType
from typing import Dict, Optional

from ..errors import ReproError
from . import python_backend

__all__ = [
    "AccelError",
    "ops",
    "available_backends",
    "get_backend",
    "select_backend",
    "backend_info",
    "use_backend",
    "ENV_VAR",
]

#: Environment variable consulted once at import.
ENV_VAR = "REPRO_BACKEND"


class AccelError(ReproError, RuntimeError):
    """Unknown or unusable backend selection."""

    code = "accel/bad-backend"


_BACKENDS: Dict[str, ModuleType] = {python_backend.NAME: python_backend}
_NUMPY_IMPORT_ERROR: Optional[str] = None

try:
    from . import numpy_backend

    _BACKENDS[numpy_backend.NAME] = numpy_backend
except ImportError as error:  # pragma: no cover - depends on host env
    _NUMPY_IMPORT_ERROR = str(error)

#: Preference order when ``REPRO_BACKEND`` is unset.
_DEFAULT_ORDER = ("numpy", "python")

#: The active backend module. Hot call sites read ``accel.ops.<kernel>``
#: through the package attribute so :func:`select_backend` swaps take
#: effect everywhere at once.
ops: ModuleType = python_backend

_requested: Optional[str] = None
_fallback_reason: Optional[str] = None


def available_backends() -> Dict[str, ModuleType]:
    """Importable backends by name (``python`` is always present)."""
    return dict(_BACKENDS)


def get_backend(name: str) -> ModuleType:
    """Fetch one backend module without activating it (benchmarks)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise AccelError(
            f"unknown backend {name!r} (available: "
            f"{', '.join(sorted(_BACKENDS))})"
        ) from None


def select_backend(name: Optional[str] = None) -> ModuleType:
    """Activate a backend; ``None`` resolves env var then preference.

    An explicit unknown name is a configuration error and raises
    :class:`AccelError`. A *known but unavailable* backend (``numpy``
    without numpy installed) falls back to ``python`` and records the
    reason, keeping headless/minimal hosts working unattended.
    """
    global ops, _requested, _fallback_reason
    requested = name if name is not None else os.environ.get(ENV_VAR) or None
    _requested = requested
    _fallback_reason = None

    if requested is not None:
        if requested in _BACKENDS:
            ops = _BACKENDS[requested]
            return ops
        if requested == "numpy" and _NUMPY_IMPORT_ERROR is not None:
            _fallback_reason = (
                f"numpy backend unavailable ({_NUMPY_IMPORT_ERROR}); "
                f"fell back to python"
            )
            ops = _BACKENDS["python"]
            return ops
        raise AccelError(
            f"unknown backend {requested!r} (available: "
            f"{', '.join(sorted(_BACKENDS))})"
        )

    for candidate in _DEFAULT_ORDER:
        if candidate in _BACKENDS:
            ops = _BACKENDS[candidate]
            return ops
    ops = python_backend  # unreachable: python is always registered
    return ops


def backend_info() -> Dict[str, Optional[str]]:
    """Selection report for the CLI and observability surfaces."""
    numpy_version = None
    if "numpy" in _BACKENDS:
        numpy_version = _BACKENDS["numpy"].numpy_version()
    return {
        "selected": ops.NAME,
        "requested": _requested,
        "env_var": ENV_VAR,
        "env_value": os.environ.get(ENV_VAR) or None,
        "available": sorted(_BACKENDS),
        "numpy_version": numpy_version,
        "numpy_import_error": _NUMPY_IMPORT_ERROR,
        "fallback_reason": _fallback_reason,
    }


@contextmanager
def use_backend(name: str):
    """Temporarily activate ``name`` (differential tests/benchmarks)."""
    global ops, _requested, _fallback_reason
    saved = (ops, _requested, _fallback_reason)
    select_backend(name)
    try:
        yield ops
    finally:
        ops, _requested, _fallback_reason = saved


# Import-time selection: the datapath binds through ``accel.ops`` so
# this runs before any simulator object is constructed.
select_backend()
