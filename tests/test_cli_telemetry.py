"""CLI surface of the telemetry pipeline: ``python -m repro metrics``
and the chaos mode of ``python -m repro trace``.

Runs the real ``main()`` in-process (same idiom as the backends CLI
tests) and validates every artifact with the strict parsers.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.obs import (
    parse_prometheus,
    validate_chrome_trace,
    validate_event_jsonl,
)


def _run(argv):
    from repro.__main__ import main

    stream = io.StringIO()
    with redirect_stdout(stream):
        code = main(argv)
    return code, stream.getvalue()


class TestMetricsSubcommand:
    def test_listed_in_help(self):
        from repro.__main__ import _build_parser

        stream = io.StringIO()
        with redirect_stdout(stream):
            _build_parser().print_help()
        assert "metrics" in stream.getvalue()

    def test_stream_run_exports_all_three_artifacts(self, tmp_path):
        code, out = _run([
            "metrics", "stream", "--bytes", "32768",
            "--out", str(tmp_path),
        ])
        assert code == 0
        exposition = (tmp_path / "metrics-stream.prom").read_text()
        parsed = parse_prometheus(exposition)
        assert len(parsed["samples"]) > 0
        journal = (tmp_path / "events-stream.jsonl").read_text()
        assert validate_event_jsonl(journal) >= 2  # steal + attach
        folded = (tmp_path / "profile-stream.folded").read_text()
        assert all(
            line.startswith("sim;") for line in folded.splitlines()
        )
        # Exposition and profiler table reach stdout too.
        assert "# TYPE" in out
        assert "sim-time profile" in out
        assert "strict parse OK" in out

    def test_holding_slo_exits_zero(self, tmp_path):
        code, out = _run([
            "metrics", "stream", "--bytes", "32768",
            "--out", str(tmp_path),
            "--slo", "traffic: bus.loads{bus=node0.bus,node=node0} >= 1",
        ])
        assert code == 0
        assert "SLO report" in out and "BREACH" not in out

    def test_breached_slo_exits_nonzero_and_journals(self, tmp_path):
        code, out = _run([
            "metrics", "stream", "--bytes", "32768",
            "--out", str(tmp_path),
            "--slo", "impossible: bus.loads{bus=node0.bus,node=node0} < 0",
        ])
        assert code == 1
        assert "BREACH" in out
        journal = (tmp_path / "events-stream.jsonl").read_text()
        breaches = [
            json.loads(line) for line in journal.splitlines()
            if json.loads(line)["kind"] == "slo.breach"
        ]
        assert len(breaches) == 1
        assert breaches[0]["slo"] == "impossible"
        assert breaches[0]["workload"] == "stream"

    def test_absent_metric_slo_breaches(self, tmp_path):
        code, _out = _run([
            "metrics", "pingpong", "--bytes", "32768",
            "--out", str(tmp_path),
            "--slo", "ghost: no.such_metric >= 0",
        ])
        assert code == 1

    def test_profiler_stride_is_respected(self, tmp_path):
        _code, out = _run([
            "metrics", "stream", "--bytes", "32768",
            "--out", str(tmp_path), "--stride", "64",
        ])
        assert "@ stride 64" in out


class TestTraceChaosMode:
    @pytest.fixture(scope="class")
    def chaos_run(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("chaos")
        code, out = _run([
            "trace", "chaos", "--scenario", "link-kill-failover",
            "--seed", "7", "--out", str(out_dir),
        ])
        return code, out, out_dir

    def test_exits_zero_on_verified_scenario(self, chaos_run):
        code, out, _dir = chaos_run
        assert code == 0
        assert "OK" in out

    def test_chrome_trace_artifact_validates(self, chaos_run):
        _code, _out, out_dir = chaos_run
        document = json.loads(
            (out_dir / "trace-chaos-link-kill-failover.json").read_text()
        )
        assert validate_chrome_trace(document) > 0

    def test_event_journal_artifact_validates(self, chaos_run):
        _code, _out, out_dir = chaos_run
        journal = (
            out_dir / "events-chaos-link-kill-failover.jsonl"
        ).read_text()
        count = validate_event_jsonl(journal)
        kinds = {
            json.loads(line)["kind"] for line in journal.splitlines()
        }
        assert count >= 10
        assert {"fault.link_down", "health.failover", "slo.breach"} <= kinds

    def test_metrics_artifact_records_the_failover(self, chaos_run):
        _code, out, out_dir = chaos_run
        snapshot = json.loads(
            (out_dir / "metrics-chaos-link-kill-failover.json").read_text()
        )
        assert snapshot["health.failovers{component=health}"] == 1
        assert snapshot["health.failures_observed{component=health}"] >= 1
        # The deliberate zero-faults canary breached; the rest held.
        assert "SLOs: 3/4 ok" in out
