"""NUMA topology: nodes, distances and the latency they imply.

ThymesisFlow surfaces disaggregated memory to Linux as a **CPU-less NUMA
node** whose distance encodes the compute↔memory-stealing RTT (§IV-B).
This module models the ACPI SLIT-style distance matrix and converts
distances to access latencies, so both the OS policies (allocation,
migration) and the performance model agree on cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["NumaNode", "NumaTopology", "LOCAL_DISTANCE"]

#: Linux convention: distance from a node to itself.
LOCAL_DISTANCE = 10


@dataclass
class NumaNode:
    """One NUMA node: optional CPUs plus a memory capacity.

    Disaggregated memory nodes have ``cpu_count == 0`` ("CPU-less").
    ``base_latency_s`` is the unloaded access latency from a CPU on this
    node's *socket group* to this node's memory; for CPU-less nodes it is
    the latency observed from the attaching socket.
    """

    node_id: int
    memory_bytes: int
    cpu_count: int = 0
    base_latency_s: float = 85e-9
    label: str = ""

    free_bytes: int = field(init=False)

    def __post_init__(self):
        if self.memory_bytes < 0:
            raise ValueError(f"negative memory: {self.memory_bytes}")
        if self.cpu_count < 0:
            raise ValueError(f"negative cpu count: {self.cpu_count}")
        self.free_bytes = self.memory_bytes

    @property
    def is_cpuless(self) -> bool:
        return self.cpu_count == 0

    def reserve(self, size: int) -> None:
        if size > self.free_bytes:
            raise ValueError(
                f"node {self.node_id}: cannot reserve {size} "
                f"(free {self.free_bytes})"
            )
        self.free_bytes -= size

    def release(self, size: int) -> None:
        if self.free_bytes + size > self.memory_bytes:
            raise ValueError(f"node {self.node_id}: release over capacity")
        self.free_bytes += size

    def resize(self, new_memory_bytes: int) -> None:
        """Grow/shrink capacity (hotplug adds memory to a node)."""
        used = self.memory_bytes - self.free_bytes
        if new_memory_bytes < used:
            raise ValueError(
                f"node {self.node_id}: cannot shrink below used ({used})"
            )
        self.memory_bytes = new_memory_bytes
        self.free_bytes = new_memory_bytes - used


class NumaTopology:
    """A set of NUMA nodes plus a symmetric distance matrix.

    Distances follow the Linux convention (self = 10); latency between a
    CPU node and a memory node scales linearly with distance relative to
    the memory node's base latency at LOCAL_DISTANCE. Encoding the
    measured ThymesisFlow RTT as a distance is exactly what the
    prototype's hotplug path does.
    """

    def __init__(self):
        self._nodes: Dict[int, NumaNode] = {}
        self._distance: Dict[Tuple[int, int], int] = {}

    # -- construction -----------------------------------------------------------
    def add_node(self, node: NumaNode) -> NumaNode:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._distance[(node.node_id, node.node_id)] = LOCAL_DISTANCE
        return node

    def remove_node(self, node_id: int) -> NumaNode:
        node = self._nodes.pop(node_id)
        self._distance = {
            key: value
            for key, value in self._distance.items()
            if node_id not in key
        }
        return node

    def set_distance(self, a: int, b: int, distance: int) -> None:
        if a not in self._nodes or b not in self._nodes:
            raise KeyError(f"unknown node in pair ({a}, {b})")
        if distance < LOCAL_DISTANCE:
            raise ValueError(
                f"distance {distance} below LOCAL_DISTANCE ({LOCAL_DISTANCE})"
            )
        self._distance[(a, b)] = distance
        self._distance[(b, a)] = distance

    # -- queries ---------------------------------------------------------------
    def node(self, node_id: int) -> NumaNode:
        return self._nodes[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    @property
    def nodes(self) -> List[NumaNode]:
        return [self._nodes[i] for i in self.node_ids]

    def cpu_nodes(self) -> List[NumaNode]:
        return [n for n in self.nodes if not n.is_cpuless]

    def memory_nodes(self) -> List[NumaNode]:
        return [n for n in self.nodes if n.memory_bytes > 0]

    def distance(self, a: int, b: int) -> int:
        try:
            return self._distance[(a, b)]
        except KeyError:
            raise KeyError(f"no distance set between nodes {a} and {b}") from None

    def latency_s(self, cpu_node: int, memory_node: int) -> float:
        """Unloaded access latency from a CPU on one node to memory on another."""
        target = self.node(memory_node)
        return target.base_latency_s * (
            self.distance(cpu_node, memory_node) / LOCAL_DISTANCE
        )

    def distance_for_latency(
        self, cpu_node: int, memory_node: int, latency_s: float
    ) -> int:
        """Inverse mapping: pick the SLIT distance that encodes a latency.

        Used at hotplug time to derive the new CPU-less node's distance
        from the measured compute↔donor RTT.
        """
        target = self.node(memory_node)
        if target.base_latency_s <= 0:
            raise ValueError("memory node has no base latency")
        distance = round(LOCAL_DISTANCE * latency_s / target.base_latency_s)
        return max(LOCAL_DISTANCE, distance)

    def nodes_by_distance(self, from_node: int) -> List[NumaNode]:
        """Memory nodes sorted nearest-first from ``from_node``."""
        reachable = [
            node
            for node in self.memory_nodes()
            if (from_node, node.node_id) in self._distance
        ]
        return sorted(
            reachable, key=lambda n: self.distance(from_node, n.node_id)
        )

    def total_memory(self) -> int:
        return sum(n.memory_bytes for n in self.nodes)

    def total_free(self) -> int:
        return sum(n.free_bytes for n in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NumaTopology(nodes={self.node_ids})"
