"""Address arithmetic: ranges, alignment, and window allocation.

Terminology follows the paper (§IV-A1):

* **effective address** — what an application/device emits (post-MMU on
  the CPU side this is the *real* address; we keep the paper's wording).
* **real address** — the host physical address space; the POWER9
  firmware assigns a *window* of it to the ThymesisFlow compute endpoint.
* **device-internal address** — the compute endpoint sees transactions
  re-based to zero ("Device Internal Address Space is always starting
  from address 0x0").

The constants below are the units the whole stack agrees on: 128-byte
cachelines (the POWER9 ld/st transaction size) and sparse-memory sections
as the minimum unit of disaggregated memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import ReproError

__all__ = [
    "CACHELINE_BYTES",
    "DEFAULT_SECTION_BYTES",
    "KIB",
    "MIB",
    "GIB",
    "AddressRange",
    "AddressSpaceAllocator",
    "AddressError",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: POWER9 cache line size; every OpenCAPI ld/st transaction carries 128 B.
CACHELINE_BYTES = 128

#: Linux sparse-memory section size used as the minimum hotpluggable unit.
#: ppc64 uses 256 MiB memory blocks; experiments may scale this down.
DEFAULT_SECTION_BYTES = 256 * MIB


class AddressError(ReproError, ValueError):
    """Raised for invalid address arithmetic or exhausted windows."""

    code = "mem/address"


def _check_alignment(value: int, alignment: int, what: str) -> None:
    if alignment and value % alignment != 0:
        raise AddressError(f"{what} {value:#x} not {alignment}-byte aligned")


@dataclass(frozen=True)
class AddressRange:
    """A half-open byte range ``[start, start + size)``."""

    start: int
    size: int

    def __post_init__(self):
        if self.start < 0:
            raise AddressError(f"negative start: {self.start:#x}")
        if self.size <= 0:
            raise AddressError(f"non-positive size: {self.size}")

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.start + self.size

    @property
    def last(self) -> int:
        return self.end - 1

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def contains_range(self, other: "AddressRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end

    def offset_of(self, address: int) -> int:
        """Offset of ``address`` within the range."""
        if not self.contains(address):
            raise AddressError(
                f"address {address:#x} outside range "
                f"[{self.start:#x}, {self.end:#x})"
            )
        return address - self.start

    def translate(self, address: int, target_base: int) -> int:
        """Re-base ``address`` from this range onto ``target_base``."""
        return target_base + self.offset_of(address)

    def subrange(self, offset: int, size: int) -> "AddressRange":
        sub = AddressRange(self.start + offset, size)
        if not self.contains_range(sub):
            raise AddressError(
                f"subrange(+{offset:#x}, {size:#x}) escapes "
                f"[{self.start:#x}, {self.end:#x})"
            )
        return sub

    def split(self, chunk_size: int) -> List["AddressRange"]:
        """Split into chunk_size pieces; size must divide evenly."""
        if self.size % chunk_size != 0:
            raise AddressError(
                f"size {self.size:#x} not a multiple of {chunk_size:#x}"
            )
        return [
            AddressRange(self.start + i * chunk_size, chunk_size)
            for i in range(self.size // chunk_size)
        ]

    def cachelines(self) -> Iterator[int]:
        """Iterate the cacheline-aligned addresses covering the range."""
        first = (self.start // CACHELINE_BYTES) * CACHELINE_BYTES
        address = first
        while address < self.end:
            yield address
            address += CACHELINE_BYTES

    def __repr__(self) -> str:
        return f"AddressRange({self.start:#x}, size={self.size:#x})"


class AddressSpaceAllocator:
    """First-fit allocator of aligned sub-ranges within a window.

    Models both firmware assignment of real-address windows to OpenCAPI
    devices and the memory-stealing side's reservation of donor ranges.
    Frees coalesce with adjacent free blocks so long-running control
    planes do not fragment unboundedly.
    """

    def __init__(self, window: AddressRange, name: str = "aspace"):
        self.window = window
        self.name = name
        self._free: List[AddressRange] = [window]
        self._allocated: List[AddressRange] = []

    @property
    def free_bytes(self) -> int:
        return sum(r.size for r in self._free)

    @property
    def allocated_bytes(self) -> int:
        return sum(r.size for r in self._allocated)

    def allocate(self, size: int, alignment: int = CACHELINE_BYTES) -> AddressRange:
        """First-fit allocation of ``size`` bytes at ``alignment``."""
        if size <= 0:
            raise AddressError(f"allocation size must be > 0: {size}")
        if alignment <= 0 or (alignment & (alignment - 1)) != 0:
            raise AddressError(f"alignment must be a power of two: {alignment}")
        for index, block in enumerate(self._free):
            aligned_start = -(-block.start // alignment) * alignment
            waste = aligned_start - block.start
            if block.size - waste < size:
                continue
            chosen = AddressRange(aligned_start, size)
            self._carve(index, block, chosen)
            self._allocated.append(chosen)
            return chosen
        raise AddressError(
            f"{self.name}: cannot allocate {size:#x} bytes "
            f"(free={self.free_bytes:#x}, fragmented into {len(self._free)})"
        )

    def allocate_at(self, start: int, size: int) -> AddressRange:
        """Allocate an explicit range (used when firmware dictates it)."""
        wanted = AddressRange(start, size)
        for index, block in enumerate(self._free):
            if block.contains_range(wanted):
                self._carve(index, block, wanted)
                self._allocated.append(wanted)
                return wanted
        raise AddressError(
            f"{self.name}: range [{start:#x}, {start + size:#x}) not free"
        )

    def free(self, allocation: AddressRange) -> None:
        try:
            self._allocated.remove(allocation)
        except ValueError:
            raise AddressError(
                f"{self.name}: {allocation!r} was not allocated here"
            ) from None
        self._insert_free(allocation)

    # -- internals -------------------------------------------------------------
    def _carve(self, index: int, block: AddressRange, chosen: AddressRange) -> None:
        del self._free[index]
        if chosen.start > block.start:
            self._free.insert(
                index, AddressRange(block.start, chosen.start - block.start)
            )
            index += 1
        if chosen.end < block.end:
            self._free.insert(index, AddressRange(chosen.end, block.end - chosen.end))

    def _insert_free(self, released: AddressRange) -> None:
        # Insert sorted by start, then coalesce neighbours.
        position = 0
        while position < len(self._free) and self._free[position].start < released.start:
            position += 1
        self._free.insert(position, released)
        merged: List[AddressRange] = []
        for block in self._free:
            if merged and merged[-1].end == block.start:
                merged[-1] = AddressRange(
                    merged[-1].start, merged[-1].size + block.size
                )
            else:
                merged.append(block)
        self._free = merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AddressSpaceAllocator({self.name!r}, "
            f"free={self.free_bytes:#x}/{self.window.size:#x})"
        )
