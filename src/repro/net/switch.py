"""Circuit switch model for rack-scale multipoint topologies.

The paper argues (§VII) that at rack scale "at most one switching layer"
keeps RTT acceptable, and weighs circuit-switched optical fabrics
against packet networks. This switch models the circuit-switched
option: point-to-point light paths between ports, configured by the
control plane, with a fixed per-crossing latency and a reconfiguration
penalty during which affected circuits are dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from ..errors import ReproError
from ..sim.engine import Simulator
from ..sim.resources import Store
from .link import SerialLink

__all__ = ["CircuitSwitch", "SwitchError", "SwitchPort"]


class SwitchError(ReproError, RuntimeError):
    """Invalid port wiring or circuit configuration."""

    code = "switch/circuit"


@dataclass
class SwitchPort:
    """One switch port: an ingress store the attached link delivers into,
    and an egress link the switch forwards onto."""

    index: int
    ingress: Store
    egress: Optional[SerialLink] = None


class CircuitSwitch:
    """A crossbar of circuits between ports.

    Circuits are unidirectional (configure both directions for a duplex
    path). A frame arriving on a port with no circuit is counted and
    discarded — exactly what dark fibre does.
    """

    def __init__(
        self,
        sim: Simulator,
        ports: int,
        crossing_latency_s: float = 30e-9,
        reconfiguration_s: float = 20e-6,
        name: str = "switch",
    ):
        if ports < 2:
            raise SwitchError(f"need >= 2 ports, got {ports}")
        self.sim = sim
        self.name = name
        self.crossing_latency_s = crossing_latency_s
        self.reconfiguration_s = reconfiguration_s
        self.ports = [
            SwitchPort(i, Store(sim, name=f"{name}.p{i}.in"))
            for i in range(ports)
        ]
        self._circuits: Dict[int, int] = {}
        self._dark_until: Dict[int, float] = {}
        self.frames_forwarded = 0
        self.frames_discarded = 0
        self.reconfigurations = 0
        for port in self.ports:
            sim.process(self._forwarder(port), name=f"{name}.fwd{port.index}")

    # -- wiring --------------------------------------------------------------------
    def attach_egress(self, port_index: int, link: SerialLink) -> None:
        self._port(port_index).egress = link

    def ingress_store(self, port_index: int) -> Store:
        """Where an incoming link should deliver its frames."""
        return self._port(port_index).ingress

    # -- circuit management (control-plane facing) --------------------------------
    def connect(self, ingress_port: int, egress_port: int) -> None:
        """Establish a circuit; takes ``reconfiguration_s`` to settle."""
        self._port(ingress_port)
        self._port(egress_port)
        if egress_port in self._circuits.values():
            for src, dst in self._circuits.items():
                if dst == egress_port and src != ingress_port:
                    raise SwitchError(
                        f"egress port {egress_port} already in circuit "
                        f"from {src}"
                    )
        self._circuits[ingress_port] = egress_port
        self._dark_until[ingress_port] = self.sim.now + self.reconfiguration_s
        self.reconfigurations += 1

    def disconnect(self, ingress_port: int) -> None:
        self._circuits.pop(ingress_port, None)
        self._dark_until.pop(ingress_port, None)

    def circuit_for(self, ingress_port: int) -> Optional[int]:
        return self._circuits.get(ingress_port)

    # -- data plane --------------------------------------------------------------
    def _forwarder(self, port: SwitchPort) -> Generator:
        while True:
            payload, corrupted = yield port.ingress.get()
            egress_index = self._circuits.get(port.index)
            if egress_index is None:
                self.frames_discarded += 1
                continue
            if self.sim.now < self._dark_until.get(port.index, 0.0):
                self.frames_discarded += 1
                continue
            egress = self._port(egress_index).egress
            if egress is None:
                self.frames_discarded += 1
                continue
            yield self.crossing_latency_s
            self.frames_forwarded += 1
            size = getattr(payload, "wire_bytes", 64)
            yield egress.send(payload, size, pre_corrupted=corrupted)

    def _port(self, index: int) -> SwitchPort:
        try:
            return self.ports[index]
        except IndexError:
            raise SwitchError(f"no port {index} on {self.name}") from None
