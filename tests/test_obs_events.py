"""Structured event log: the bounded journal, the JSON-lines format
validator, and the control-plane/resilience emission wiring.

Determinism matters here: events carry sim-time and a sequence number,
never wall-clock, so seeded runs journal identically — asserted at the
scenario level by ``tests/test_accel_equivalence.py``.
"""

import pytest

from repro.control import RestApi
from repro.mem import MIB
from repro.obs import (
    EventLog,
    active_event_log,
    disable_events,
    enable_events,
    event_logging,
    validate_event_jsonl,
)
from repro.obs import events as events_mod
from repro.testbed import Testbed


class TestEventLogPrimitives:
    def test_emit_assigns_monotonic_sequence(self):
        log = EventLog()
        first = log.emit(0.0, "a.start")
        second = log.emit(1.5e-6, "a.stop", code=3)
        assert (first.seq, second.seq) == (0, 1)
        assert second.fields == {"code": 3}
        assert log.total == 2 and log.evicted == 0

    def test_capacity_bounds_resident_history(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.emit(index * 1e-6, "tick", n=index)
        assert len(log) == 4
        assert log.total == 10 and log.evicted == 6
        # Oldest events were dropped; the survivors keep their seq.
        assert [event.seq for event in log] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_find_filters_by_kind_and_fields(self):
        log = EventLog()
        log.emit(0.0, "fault.link_down", link="x0")
        log.emit(1e-6, "fault.link_down", link="x1")
        log.emit(2e-6, "fault.link_up", link="x0")
        assert len(log.find("fault.link_down")) == 2
        assert len(log.find(link="x0")) == 2
        matched = log.find("fault.link_down", link="x1")
        assert len(matched) == 1 and matched[0].t == 1e-6

    def test_as_dict_leads_with_identity_keys(self):
        event = EventLog().emit(2.5e-6, "control.attach", attachment=7)
        record = event.as_dict()
        assert list(record)[:3] == ["seq", "t", "kind"]
        assert record["attachment"] == 7

    def test_jsonl_round_trips_through_validator(self):
        log = EventLog()
        log.emit(0.0, "a", x=1)
        log.emit(1e-6, "b", y="z")
        text = log.to_jsonl()
        assert text.endswith("\n")
        assert validate_event_jsonl(text) == 2

    def test_empty_log_serializes_to_empty_valid_journal(self):
        log = EventLog()
        assert log.to_jsonl() == ""
        assert validate_event_jsonl(log.to_jsonl()) == 0

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.emit(0.0, "a")
        path = tmp_path / "events.jsonl"
        log.write_jsonl(str(path))
        assert validate_event_jsonl(path.read_text()) == 1


class TestJournalValidator:
    def test_rejects_non_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_event_jsonl("not json\n")

    def test_rejects_non_object_line(self):
        with pytest.raises(ValueError, match="not an object"):
            validate_event_jsonl("[1, 2]\n")

    @pytest.mark.parametrize("missing", ["seq", "t", "kind"])
    def test_rejects_missing_identity_key(self, missing):
        record = {"seq": 0, "t": 0.0, "kind": "a"}
        del record[missing]
        import json

        with pytest.raises(ValueError, match=missing):
            validate_event_jsonl(json.dumps(record) + "\n")

    def test_rejects_sequence_regression(self):
        text = (
            '{"seq": 1, "t": 0.0, "kind": "a"}\n'
            '{"seq": 1, "t": 0.0, "kind": "b"}\n'
        )
        with pytest.raises(ValueError, match="does not increase"):
            validate_event_jsonl(text)

    def test_rejects_boolean_seq(self):
        with pytest.raises(ValueError, match="not an integer"):
            validate_event_jsonl('{"seq": true, "t": 0.0, "kind": "a"}\n')

    def test_rejects_negative_sim_time(self):
        with pytest.raises(ValueError, match="bad sim-time"):
            validate_event_jsonl('{"seq": 0, "t": -1.0, "kind": "a"}\n')

    def test_rejects_time_travel(self):
        text = (
            '{"seq": 0, "t": 2.0, "kind": "a"}\n'
            '{"seq": 1, "t": 1.0, "kind": "b"}\n'
        )
        with pytest.raises(ValueError, match="backwards"):
            validate_event_jsonl(text)

    def test_rejects_empty_kind(self):
        with pytest.raises(ValueError, match="kind"):
            validate_event_jsonl('{"seq": 0, "t": 0.0, "kind": ""}\n')

    def test_blank_lines_are_skipped(self):
        text = '\n{"seq": 0, "t": 0.0, "kind": "a"}\n\n'
        assert validate_event_jsonl(text) == 1


class TestModuleSwitch:
    def test_disabled_by_default_and_emit_is_noop(self):
        assert active_event_log() is None
        events_mod.emit(0.0, "ignored")  # must not raise

    def test_enable_returns_fresh_log_and_disable_hands_it_back(self):
        log = enable_events(capacity=8)
        try:
            assert active_event_log() is log
            events_mod.emit(0.0, "probe")
            assert log.total == 1
        finally:
            returned = disable_events()
        assert returned is log
        assert active_event_log() is None

    def test_context_manager_scopes_logging(self):
        with event_logging() as log:
            events_mod.emit(0.0, "inside")
        assert active_event_log() is None
        assert len(log.find("inside")) == 1


class TestControlPlaneWiring:
    def test_attach_detach_journal(self):
        """Control-plane verbs land in the journal with correlation ids
        and sim-clock timestamps."""
        with event_logging() as log:
            testbed = Testbed()
            attachment = testbed.attach(
                "node0", 4 * MIB, memory_host="node1"
            )
            window = testbed.remote_window_range(attachment)
            testbed.node0.run_store(window.start, bytes(128))
            testbed.detach(attachment)

        aid = attachment.attachment_id
        steals = log.find("control.steal", attachment=aid)
        attaches = log.find("control.attach", attachment=aid)
        detaches = log.find("control.detach", attachment=aid)
        assert len(steals) == len(attaches) == len(detaches) == 1
        assert attaches[0].fields["compute_host"] == "node0"
        assert attaches[0].fields["memory_host"] == "node1"
        assert steals[0].fields["bytes"] == 4 * MIB
        # Detach happened after datapath traffic, so the shared sim
        # clock has advanced past the attach timestamp.
        assert detaches[0].t > attaches[0].t >= 0.0
        assert validate_event_jsonl(log.to_jsonl()) == log.total

    def test_events_route_serves_live_journal(self):
        with event_logging():
            testbed = Testbed()
            testbed.attach("node0", 2 * MIB, memory_host="node1")
            api = RestApi(testbed.plane)
            status, body = api.handle(
                "GET", "/v1/events", token=testbed.admin_token
            )
        assert status == 200
        kinds = {event["kind"] for event in body["events"]}
        assert {"control.steal", "control.attach"} <= kinds
        assert body["total"] == len(body["events"])
        assert body["evicted"] == 0

    def test_events_route_without_logging_is_503(self):
        testbed = Testbed()
        api = RestApi(testbed.plane)
        status, body = api.handle(
            "GET", "/v1/events", token=testbed.admin_token
        )
        assert status == 503
        assert body["code"] == "obs/no-event-log"

    def test_disabled_logging_costs_nothing_on_the_control_path(self):
        testbed = Testbed()
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        testbed.detach(attachment)
        assert active_event_log() is None


class TestCaptureInto:
    def test_redirects_and_restores_switch_state(self):
        from repro.obs import capture_into

        mine = EventLog()
        assert events_mod.ENABLED is False
        with capture_into(mine) as log:
            assert log is mine
            assert events_mod.ENABLED is True
            events_mod.emit(1.0, "inner.tick", n=1)
        assert events_mod.ENABLED is False
        assert active_event_log() is None
        assert [e.kind for e in mine] == ["inner.tick"]

    def test_nested_journals_do_not_interleave(self):
        from repro.obs import capture_into

        outer, inner = EventLog(), EventLog()
        with capture_into(outer):
            events_mod.emit(0.0, "outer.a")
            with capture_into(inner):
                events_mod.emit(1.0, "inner.b")
            events_mod.emit(2.0, "outer.c")
        assert [e.kind for e in outer] == ["outer.a", "outer.c"]
        assert [e.kind for e in inner] == ["inner.b"]


class TestMergeEventStreams:
    """Deterministic multi-domain journal merge: stable
    ``(t, domain, domain_seq)`` order, regression for the sharded
    rack-domain coordinator."""

    @staticmethod
    def stream(*records):
        return [
            {"seq": seq, "t": t, "kind": kind}
            for seq, (t, kind) in enumerate(records)
        ]

    def test_ties_break_by_domain_then_domain_seq(self):
        from repro.obs import merge_event_streams

        merged = merge_event_streams({
            "rack1": self.stream((0.0, "b0"), (0.0, "b1")),
            "rack0": self.stream((0.0, "a0"), (5.0, "a1")),
        })
        assert [r["kind"] for r in merged] == ["a0", "b0", "b1", "a1"]
        assert [r["seq"] for r in merged] == [0, 1, 2, 3]
        assert [r["domain_seq"] for r in merged] == [0, 0, 1, 1]

    def test_merge_is_independent_of_dict_insertion_order(self):
        from repro.obs import merge_event_streams

        streams_a = {
            "rack0": self.stream((1.0, "x")),
            "rack1": self.stream((1.0, "y")),
        }
        streams_b = dict(reversed(list(streams_a.items())))
        assert merge_event_streams(streams_a) == \
            merge_event_streams(streams_b)

    def test_merged_journal_passes_validator(self):
        import json

        from repro.obs import merge_event_streams

        merged = merge_event_streams({
            "rack0": self.stream((0.0, "a"), (2.0, "b")),
            "rack1": self.stream((1.0, "c")),
            "rack2": [],
        })
        text = "\n".join(json.dumps(r, sort_keys=True) for r in merged)
        assert validate_event_jsonl(text + "\n") == 3

    def test_empty_input(self):
        from repro.obs import merge_event_streams

        assert merge_event_streams({}) == []
        assert merge_event_streams({"rack0": []}) == []
