"""The per-host user-space ThymesisFlow agent — paper §IV-B.

"A user-space agent runs as a daemon on every host, to issue the
appropriate configuration commands received from the orchestration
layer. The role of the user-space agent is twofold: i) configure the
compute endpoint … or, ii) allocate local host memory and make it
available to the memory-stealing endpoint."

The agent is the only component that touches both the device MMIO space
and the kernel hotplug interface; the control plane talks to agents
exclusively (it never programs hardware directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.device import ThymesisFlowDevice
from ..mem.address import AddressRange
from ..mem.numa import LOCAL_DISTANCE
from ..opencapi.pasid import PasidRegistry
from .kernel import LinuxKernel

__all__ = ["ThymesisFlowAgent", "StealGrant", "AttachPlan", "AgentError"]


class AgentError(RuntimeError):
    """Agent-side configuration failure."""


@dataclass(frozen=True)
class StealGrant:
    """Result of a donor-side steal: where the pinned memory lives."""

    grant_id: int
    pasid: int
    effective_base: int
    size: int


@dataclass
class AttachPlan:
    """Compute-side attachment instructions pushed by the control plane.

    One plan covers a contiguous run of device-internal sections, all
    belonging to one active thymesisflow (one donor + one network id).
    """

    section_indices: List[int]
    donor_effective_base: int
    wire_network_id: int
    channels: List[int]
    numa_node_id: int
    numa_distance: int
    remote_latency_s: float


class ThymesisFlowAgent:
    """One host's configuration daemon."""

    def __init__(
        self,
        hostname: str,
        kernel: LinuxKernel,
        device: ThymesisFlowDevice,
        pasids: PasidRegistry,
        donor_node_id: int = 0,
        memory_scrubber: Optional[Callable[[int, int], None]] = None,
    ):
        self.hostname = hostname
        self.kernel = kernel
        self.device = device
        self.pasids = pasids
        self.donor_node_id = donor_node_id
        #: Zeroes (start, size) of donated physical memory before it is
        #: exposed — a previous tenant's data must never leak to the
        #: borrower.
        self.memory_scrubber = memory_scrubber
        self._grants: Dict[int, tuple] = {}
        self._next_grant = 1
        self._attached: Dict[int, AttachPlan] = {}
        self._stealer_pasid: Optional[int] = None
        #: Set by lender-crash fault campaigns: a crashed daemon stops
        #: granting memory (existing grants die with the host's links).
        self.crashed = False
        self.log: List[str] = []

    # ------------------------------------------------------------ donor side
    def steal_memory(self, size: int) -> StealGrant:
        """Pin local memory and expose it to the memory-stealing endpoint.

        Rounds the request up to whole sections (the minimum unit of
        disaggregated memory), registers the stealing process's PASID
        with the endpoint hardware, and returns the effective address the
        orchestration layer needs "to calculate the proper offsets to be
        applied by the compute endpoint RMMU".
        """
        if self.crashed:
            raise AgentError(f"{self.hostname}: agent crashed")
        section_bytes = self.kernel.section_bytes
        size = -(-size // section_bytes) * section_bytes
        pinned = self.kernel.pin_contiguous(size, self.donor_node_id)
        if self.memory_scrubber is not None:
            self.memory_scrubber(pinned.start, pinned.size)
        if self.device.memory is None:
            raise AgentError(
                f"{self.hostname}: memory-stealing role not enabled"
            )
        # One memory-stealing daemon per host: every grant is a window
        # pinned under the same process address space (single PASID).
        if self._stealer_pasid is None:
            entry = self.pasids.register(f"{self.hostname}/stealer")
            self._stealer_pasid = entry.pasid
            self.device.memory.set_pasid(entry.pasid)
        self.pasids.add_window(self._stealer_pasid, pinned)
        grant = StealGrant(
            grant_id=self._next_grant,
            pasid=self._stealer_pasid,
            effective_base=pinned.start,
            size=pinned.size,
        )
        self._next_grant += 1
        self._grants[grant.grant_id] = (pinned, self._stealer_pasid)
        self.log.append(
            f"steal: pinned {size >> 20} MiB at "
            f"{pinned.start:#x} (pasid {self._stealer_pasid})"
        )
        return grant

    def release_grant(self, grant: StealGrant) -> None:
        """Undo a steal: unpin the memory and retire the PASID."""
        try:
            pinned, pasid = self._grants.pop(grant.grant_id)
        except KeyError:
            raise AgentError(f"unknown grant {grant.grant_id}") from None
        self.pasids.remove_window(pasid, pinned)
        self.kernel.unpin(pinned)
        self.log.append(f"release: grant {grant.grant_id}")

    # ------------------------------------------------------------ compute side
    def attach_remote_memory(self, plan: AttachPlan) -> int:
        """Physically and logically attach disaggregated memory.

        1. Program the RMMU section entries and the route (MMIO).
        2. ``probe`` the matching real-address range.
        3. Create the CPU-less NUMA node if needed and ``online`` the
           sections into it.

        Returns the bytes attached.
        """
        window = self.device.compute.window
        if window is None:
            raise AgentError(f"{self.hostname}: compute role not attached")
        section_bytes = self.kernel.section_bytes
        if section_bytes != self.device.rmmu.section_bytes:
            raise AgentError(
                "kernel and RMMU disagree on section size: "
                f"{section_bytes} != {self.device.rmmu.section_bytes}"
            )
        # 1. hardware datapath configuration
        base_net = plan.wire_network_id & 0x7FFF
        self.device.program_route(base_net, plan.channels)
        for position, section_index in enumerate(plan.section_indices):
            donor_base = plan.donor_effective_base + position * section_bytes
            self.device.program_section(
                section_index, donor_base, plan.wire_network_id
            )
        # 2. OS probe: the window offset of each section is its device-
        #    internal address; the kernel sees window.start + that.
        first = plan.section_indices[0]
        count = len(plan.section_indices)
        start = window.start + first * section_bytes
        probed = self.kernel.hotplug_probe(start, count * section_bytes)
        # 3. NUMA node + online
        if plan.numa_node_id not in self.kernel.topology:
            distances = {
                node.node_id: plan.numa_distance
                for node in self.kernel.topology.cpu_nodes()
            }
            self.kernel.create_cpuless_node(
                plan.numa_node_id,
                base_latency_s=plan.remote_latency_s,
                distances=distances,
            )
        attached = self.kernel.hotplug_online(
            [section.index for section in probed], plan.numa_node_id
        )
        self._attached[plan.wire_network_id] = plan
        self.log.append(
            f"attach: {count} sections -> node{plan.numa_node_id} "
            f"(net {plan.wire_network_id:#x})"
        )
        return attached

    def detach_remote_memory(self, plan: AttachPlan) -> int:
        """Reverse of attach: offline, remove, clear RMMU and route."""
        window = self.device.compute.window
        if window is None:
            raise AgentError(f"{self.hostname}: compute role not attached")
        section_bytes = self.kernel.section_bytes
        first = plan.section_indices[0]
        start = window.start + first * section_bytes
        kernel_indices = [
            (start // section_bytes) + i
            for i in range(len(plan.section_indices))
        ]
        removed = self.kernel.hotplug_offline(kernel_indices)
        self.kernel.hotplug_remove(kernel_indices)
        for section_index in plan.section_indices:
            self.device.clear_section(section_index)
        self.device.clear_route(plan.wire_network_id & 0x7FFF)
        self._attached.pop(plan.wire_network_id, None)
        self.log.append(
            f"detach: {len(plan.section_indices)} sections "
            f"(net {plan.wire_network_id:#x})"
        )
        return removed

    @property
    def attachments(self) -> List[AttachPlan]:
        return list(self._attached.values())
