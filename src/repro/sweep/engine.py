"""Parallel sweep execution: cache front, process-pool fan-out.

:class:`SweepEngine` takes a list of :class:`~repro.sweep.RunSpec` and
returns one :class:`SweepOutcome` per spec, in order. Execution is
three-tier:

1. **Cache** — every spec is first looked up in the content-addressed
   :class:`~repro.sweep.ResultCache`; hits return without computing.
2. **Serial** — with ``jobs <= 1`` (or a single pending spec) misses
   run in-process, which is also the reference semantics parallel runs
   must reproduce bit-for-bit.
3. **Parallel** — otherwise misses fan out over a
   ``ProcessPoolExecutor``. Each worker process is its own simulator
   universe (fresh module state, tracing force-disabled), and every
   spec carries its full configuration and seed, so results are
   independent of which worker runs them and of completion order.

Workers return ``(value, elapsed, metrics-snapshot)``; the engine
merges the flattened worker metrics into its parent
:class:`~repro.obs.MetricsRegistry` via ``merge_flat`` so one summary
covers the whole fleet.
"""

from __future__ import annotations

import importlib
import inspect
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..obs import MetricsRegistry
from .bootstrap import (
    normalize_jobs,
    pool_initargs,
    pool_worker_init,
    worker_run_snapshot,
)
from .cache import ResultCache
from .spec import RunSpec

__all__ = ["SweepEngine", "SweepOutcome", "resolve_target", "normalize_jobs"]


def resolve_target(name: str) -> Callable[..., Any]:
    """Map a spec target string to the callable that runs it."""
    if name.startswith("slice:"):
        from ..figures import SLICES

        return SLICES[name[len("slice:"):]]
    if name.startswith("figure:"):
        from ..figures import FIGURES

        return FIGURES[name[len("figure:"):]]
    if name.startswith("py:"):
        _, module_name, function_name = name.split(":", 2)
        module = sys.modules.get(module_name)
        if module is None:
            module = importlib.import_module(module_name)
        return getattr(module, function_name)
    raise KeyError(
        f"unknown target {name!r} (expected 'slice:', 'figure:' or "
        f"'py:module:function')"
    )


def _accepts_seed(target: Callable[..., Any]) -> bool:
    try:
        parameters = inspect.signature(target).parameters
    except (TypeError, ValueError):  # builtins etc.
        return False
    if "seed" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one spec payload (in-process or inside a pool worker)."""
    target = resolve_target(payload["target"])
    kwargs = dict(payload["kwargs"])
    if payload["seed"] is not None and _accepts_seed(target):
        kwargs.setdefault("seed", payload["seed"])
    started = time.perf_counter()
    value = target(**kwargs)
    elapsed = time.perf_counter() - started
    return {
        "key": payload["key"],
        "value": value,
        "elapsed_s": elapsed,
        "metrics": worker_run_snapshot(
            "sweep", elapsed, target=payload["target"]
        ),
    }


@dataclass
class SweepOutcome:
    """One spec's result: the value plus execution provenance."""

    spec: RunSpec
    value: Any
    cached: bool
    elapsed_s: float
    metrics: Dict[str, float] = field(default_factory=dict)


class SweepEngine:
    """Cache-fronted, optionally-parallel executor for RunSpecs."""

    def __init__(
        self,
        jobs: Union[int, str, None] = 1,
        cache: bool = True,
        cache_dir: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.jobs = normalize_jobs(jobs)
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache else None
        )
        self.registry = registry or MetricsRegistry("sweep")
        self.specs_seen = 0
        self.cache_hits = 0
        self.executed = 0
        self.wall_s = 0.0

    # -- execution -------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[SweepOutcome]:
        """Execute every spec (cache, then fan-out); order-preserving."""
        started = time.perf_counter()
        outcomes: List[Optional[SweepOutcome]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            envelope = self.cache.get(spec) if self.cache else None
            if envelope is not None:
                outcomes[index] = SweepOutcome(
                    spec=spec,
                    value=envelope["result"],
                    cached=True,
                    elapsed_s=float(envelope.get("elapsed_s", 0.0)),
                )
            else:
                pending.append(index)

        if pending:
            payloads = [specs[index].payload() for index in pending]
            if self.jobs > 1 and len(pending) > 1:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=pool_worker_init,
                    initargs=pool_initargs(),
                ) as pool:
                    raw = list(pool.map(execute_payload, payloads))
            else:
                raw = [execute_payload(payload) for payload in payloads]
            for index, out in zip(pending, raw):
                spec = specs[index]
                outcomes[index] = SweepOutcome(
                    spec=spec,
                    value=out["value"],
                    cached=False,
                    elapsed_s=out["elapsed_s"],
                    metrics=out["metrics"],
                )
                self.registry.merge_flat(out["metrics"])
                if self.cache is not None:
                    self.cache.put(spec, out["value"], out["elapsed_s"])

        wall = time.perf_counter() - started
        self.specs_seen += len(specs)
        self.cache_hits += len(specs) - len(pending)
        self.executed += len(pending)
        self.wall_s += wall
        self.registry.gauge("sweep.specs").adjust(len(specs))
        self.registry.gauge("sweep.cache_hits").adjust(
            len(specs) - len(pending)
        )
        self.registry.gauge("sweep.executed").adjust(len(pending))
        self.registry.gauge("sweep.wall_s").adjust(wall)
        self.registry.gauge("sweep.jobs").set(self.jobs)
        return [outcome for outcome in outcomes if outcome is not None]

    # -- reporting -------------------------------------------------------------
    def stats_line(self) -> str:
        cached = "off"
        if self.cache is not None:
            cached = f"{self.cache_hits} hits"
        return (
            f"sweep: {self.specs_seen} specs, {self.executed} executed, "
            f"cache {cached}, jobs={self.jobs}, {self.wall_s:.2f}s wall"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SweepEngine(jobs={self.jobs}, "
            f"cache={'on' if self.cache else 'off'}, "
            f"specs={self.specs_seen})"
        )
