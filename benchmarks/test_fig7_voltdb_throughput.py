"""Fig. 7 — YCSB workloads A and E throughput under all five setups.

Paper values for workload A at 32 partitions (relative to local):
scale-out −5.95 %, interleaved −5.62 %, single −7.97 %, bonding −10.03 %.
Workload E: "throughput is similar for all configurations" (the READ
volume saturates VoltDB).
"""

import pytest
from conftest import print_table, save_results, sweep_payload

from repro.apps import VoltDbModel
from repro.testbed import MemoryConfigKind, make_environment

WORKLOADS = ("A", "E")
PARTITIONS = (4, 32)
ORDER = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.SCALE_OUT,
    MemoryConfigKind.INTERLEAVED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
    MemoryConfigKind.BONDING_DISAGGREGATED,
)


def compute_payload(partitions=PARTITIONS):
    """Sweep target: YCSB throughput for every series point."""
    environments = {kind: make_environment(kind) for kind in ORDER}
    return {
        f"{kind.value}/{workload}/{count}": VoltDbModel(
            environments[kind], count
        ).evaluate(workload).throughput_ops
        for kind in ORDER
        for workload in WORKLOADS
        for count in partitions
    }


def test_fig7_voltdb_throughput(once):
    metrics = once(sweep_payload, __file__, partitions=PARTITIONS)

    rows = []
    for workload in WORKLOADS:
        for partitions in PARTITIONS:
            base = metrics[f"local/{workload}/{partitions}"]
            for kind in ORDER:
                ops = metrics[f"{kind.value}/{workload}/{partitions}"]
                rows.append(
                    (
                        workload,
                        partitions,
                        kind.value,
                        f"{ops / 1e3:.1f}K",
                        f"{100 * (ops / base - 1):+.2f}%",
                    )
                )
    print_table(
        "Fig. 7 — YCSB A/E throughput (ops/s, % vs local)",
        ["wl", "parts", "config", "ops/s", "vs local"],
        rows,
    )
    save_results("fig7", metrics)

    a32 = {kind.value: metrics[f"{kind.value}/A/32"] for kind in ORDER}
    base = a32["local"]
    # Local wins (§VI-D: "the local configuration exhibits the best
    # performance regardless of the workload and number of partitions").
    assert base == max(a32.values())
    # Paper degradations ±4pp.
    assert 1 - a32["scale-out"] / base == pytest.approx(0.0595, abs=0.04)
    assert 1 - a32["interleaved"] / base == pytest.approx(0.0562, abs=0.04)
    assert 1 - a32["single-disaggregated"] / base == pytest.approx(
        0.0797, abs=0.04
    )
    assert 1 - a32["bonding-disaggregated"] / base == pytest.approx(
        0.1003, abs=0.04
    )

    # At 4 partitions the ThymesisFlow configurations trail badly.
    a4_local = metrics["local/A/4"]
    for kind in (
        MemoryConfigKind.SINGLE_DISAGGREGATED,
        MemoryConfigKind.BONDING_DISAGGREGATED,
    ):
        a4 = metrics[f"{kind.value}/A/4"]
        assert a4 < 0.75 * a4_local, kind

    # Workload E: configurations stay close (read volume saturates
    # VoltDB); the spread is tighter once executors stop binding at 32.
    for partitions, bound in ((4, 1.20), (32, 1.10)):
        values = [
            metrics[f"{kind.value}/E/{partitions}"] for kind in ORDER
        ]
        assert max(values) / min(values) < bound, partitions
