"""Datacentre-scale study: trace, models, scheduler, multi-rack replay."""

from .models import (
    AllocationFailure,
    DisaggregatedDatacentre,
    FixedDatacentre,
    Placement,
)
from .replay import BUILDER_TARGET, run_cluster, write_artifacts
from .simulation import (
    UtilizationReport,
    replay_trace,
    run_fig1_experiment,
    scaled_trace_config,
)
from .topology import (
    GOOGLE_TRACE_MACHINES,
    TASK_CLASSES,
    ClusterConfig,
    RackDomain,
    RackPool,
    build_rack_domain,
    cluster_trace_events,
    machines_in_rack,
)
from .trace import (
    EventKind,
    TaskRequest,
    TraceConfig,
    TraceEvent,
    downsample_trace,
    ratio_span_orders_of_magnitude,
    synthesize_trace,
    trace_window,
)

__all__ = [
    "TaskRequest",
    "TraceEvent",
    "EventKind",
    "TraceConfig",
    "synthesize_trace",
    "downsample_trace",
    "trace_window",
    "ratio_span_orders_of_magnitude",
    "GOOGLE_TRACE_MACHINES",
    "ClusterConfig",
    "RackPool",
    "RackDomain",
    "TASK_CLASSES",
    "build_rack_domain",
    "cluster_trace_events",
    "machines_in_rack",
    "BUILDER_TARGET",
    "run_cluster",
    "write_artifacts",
    "FixedDatacentre",
    "DisaggregatedDatacentre",
    "Placement",
    "AllocationFailure",
    "UtilizationReport",
    "replay_trace",
    "run_fig1_experiment",
    "scaled_trace_config",
]
