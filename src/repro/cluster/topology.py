"""Multi-rack cluster topology: one rack domain per packet-switched rack.

The Fig. 1 motivation study replays the cluster trace against abstract
capacity models; this module replays it against the *actual* control
plane. A cluster is ``racks`` independent rack domains, each owning:

* a real :class:`~repro.testbed.packet_rack.PacketRackTestbed` — its
  own simulator (= the domain clock), packet fabric, agents and
  :class:`~repro.control.orchestrator.ControlPlane`, with the first
  half of the nodes acting as borrowers and the second half as memory
  lenders;
* a :class:`RackPool` of logical machines (the rack's slice of the
  cluster's ``machines``), each with full CPU but only
  ``local_memory_fraction`` of its memory local — the disaggregation
  premise: big-memory tasks overflow into the pool;
* its slice of the shared synthetic Google-trace (task ``i`` is homed
  on rack ``i % racks``), replayed as *live* open-loop attach/detach/
  steal traffic.

A task whose memory exceeds the local fraction leases the overflow
from a rack lender through the full §IV-C attach workflow (path
planning, donor steal, signed config — all journaled). When the rack
pool is exhausted (donor memory, channel flows, or session pins), the
domain asks its ring neighbor for capacity with a ``borrow`` message —
the inter-rack traffic the conservative coordinator synchronizes.
Cross-rack borrowing is modeled at the capacity/latency level (a
reservation against the neighbor's export budget, one
``inter_rack_latency`` away); intra-rack leases are full-fidelity.

Determinism contract: every callback ordering derives from the domain
simulator and the sorted inbox, every random draw from the seeded
trace, and nothing here reads wall-clock — so a rack domain's artifact
is byte-identical for a given config regardless of which process (or
how many) ran it.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..mem import MIB
from ..obs import MetricsRegistry
from ..obs.events import EventLog, capture_into
from ..obs import events as _events
from ..opencapi.transactions import reset_txn_ids
from ..sim.domains import DomainMessage
from ..testbed import PacketRackTestbed
from ..testbed.node import NodeSpec
from .simulation import scaled_trace_config
from .trace import EventKind, TaskRequest, TraceEvent, downsample_trace, \
    synthesize_trace

__all__ = [
    "GOOGLE_TRACE_MACHINES",
    "ClusterConfig",
    "RackPool",
    "RackDomain",
    "build_rack_domain",
    "cluster_trace_events",
    "machines_in_rack",
    "TASK_CLASSES",
]

#: Placement outcome classes, the per-tenant statistic of the study.
TASK_CLASSES = ("local", "rack_pool", "remote_pool", "stranded", "rejected")

#: Machine count of the real Google ClusterData trace (§II); the CLI's
#: ``--scale`` knob down-samples from this.
GOOGLE_TRACE_MACHINES = 12_555


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of one cluster run (picklable; crosses into pool workers)."""

    racks: int = 4
    #: Physical nodes per rack testbed; first half borrow, second half
    #: lend (needs >= 2).
    nodes_per_rack: int = 4
    #: Logical machines across the whole cluster (the trace is
    #: calibrated so steady CPU demand slightly exceeds this).
    machines: int = 160
    #: Task count; ``None`` lets :func:`scaled_trace_config` size it.
    tasks: Optional[int] = None
    seed: int = 17
    #: Deterministic task-level down-sampling of the synthesized trace
    #: (the ``--scale`` companion knob for thinning a full-size trace).
    sample: float = 1.0
    #: Fraction of a machine's memory that is local; requests above it
    #: overflow into the disaggregated pool. The default puts ~16% of
    #: tasks in the overflow tail — enough lease pressure that rack
    #: pools exhaust and inter-rack borrowing happens.
    local_memory_fraction: float = 0.1
    #: Bytes corresponding to 1.0 machine-normalized memory — converts
    #: a task's overflow fraction into an attach size.
    overflow_unit_bytes: int = 32 * MIB
    #: DRAM per rack node; donor capacity is half of it (testbed rule).
    node_dram_bytes: int = 16 * MIB
    #: One-way inter-rack message latency, in trace time units. Must be
    #: >= the coordinator's lookahead (the replay engine uses it AS the
    #: lookahead, the Chandy–Misra minimum).
    inter_rack_latency: float = 50.0
    #: Fraction of a rack's donor capacity it will export to neighbors.
    export_fraction: float = 0.5
    #: Tenants (stats are reported per ``task_id % tenants``).
    tenants: int = 8
    #: Chaos scenario: each rack's first lender crashes mid-run.
    chaos: bool = False
    #: Crash time as a fraction of the horizon. The horizon is set by
    #: the longest task's finish, so the busy period (arrivals) sits in
    #: the early part of it — crash early to hit live leases.
    chaos_at_fraction: float = 0.05
    journal_capacity: int = 65536

    def __post_init__(self):
        if self.racks < 1:
            raise ValueError(f"racks must be >= 1: {self.racks}")
        if self.nodes_per_rack < 2:
            raise ValueError(
                f"nodes_per_rack must be >= 2: {self.nodes_per_rack}"
            )
        if self.machines < 1:
            raise ValueError(f"machines must be >= 1: {self.machines}")
        if not 0.0 < self.local_memory_fraction <= 1.0:
            raise ValueError(
                f"local_memory_fraction must be in (0, 1]: "
                f"{self.local_memory_fraction}"
            )
        if self.inter_rack_latency <= 0:
            raise ValueError(
                f"inter_rack_latency must be > 0: {self.inter_rack_latency}"
            )
        if not 0.0 <= self.export_fraction <= 1.0:
            raise ValueError(
                f"export_fraction must be in [0, 1]: {self.export_fraction}"
            )
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1: {self.tenants}")

    def describe(self) -> Dict[str, Any]:
        return asdict(self)


def machines_in_rack(config: ClusterConfig, rack_index: int) -> int:
    """This rack's share of the cluster's logical machines."""
    base, extra = divmod(config.machines, config.racks)
    return base + (1 if rack_index < extra else 0)


def cluster_trace_events(
    config: ClusterConfig,
) -> Tuple[List[TraceEvent], float]:
    """The cluster's shared trace and its horizon (last event time).

    Every domain synthesizes the identical full trace from the seed
    and keeps its own slice — deterministic fan-out with zero IPC.
    """
    trace_config = scaled_trace_config(
        config.machines, tasks=config.tasks, seed=config.seed
    )
    events = synthesize_trace(trace_config)
    if config.sample < 1.0:
        events = downsample_trace(events, config.sample, seed=config.seed)
    horizon = events[-1].time if events else 0.0
    return events, horizon


class RackPool:
    """Best-fit pool of logical machines (vectorized feasibility scan)."""

    def __init__(self, machines: int, local_memory_fraction: float):
        self.machines = machines
        self.cpu_free = np.ones(max(machines, 1), dtype=np.float64)
        self.mem_free = np.full(
            max(machines, 1), local_memory_fraction, dtype=np.float64
        )
        if machines == 0:
            self.cpu_free = self.cpu_free[:0]
            self.mem_free = self.mem_free[:0]

    def place(self, cpu: float, mem_local: float) -> Optional[int]:
        """Best-fit machine index, or ``None`` when nothing fits."""
        if not self.machines:
            return None
        feasible = (self.cpu_free >= cpu) & (self.mem_free >= mem_local)
        if not feasible.any():
            return None
        slack = np.where(feasible, self.cpu_free - cpu, np.inf)
        index = int(np.argmin(slack))
        self.cpu_free[index] -= cpu
        self.mem_free[index] -= mem_local
        return index

    def release(self, index: int, cpu: float, mem_local: float) -> None:
        self.cpu_free[index] += cpu
        self.mem_free[index] += mem_local

    def cpu_used(self) -> float:
        return float(self.machines - self.cpu_free.sum())


class RackDomain:
    """One rack's live replay: a domain program for the coordinator.

    Implements the :mod:`repro.sim.domains` program contract
    (``advance``/``finalize``). Message kinds on the inter-rack ring:

    * ``borrow`` — ask the ring neighbor to reserve pool bytes;
    * ``grant`` / ``deny`` — the neighbor's verdict;
    * ``release`` — return a granted reservation.
    """

    def __init__(self, rack_index: int, config: ClusterConfig):
        # Global datapath counters must not depend on how many domains
        # this process built before us (serial builds all N in one
        # process; a pool worker builds its shard) — reset for
        # byte-identical artifacts either way.
        reset_txn_ids()
        self.rack = rack_index
        self.config = config
        events, self.horizon = cluster_trace_events(config)
        self._log = EventLog(capacity=config.journal_capacity)
        spec = NodeSpec(dram_bytes=config.node_dram_bytes)
        self.testbed = PacketRackTestbed(
            nodes=config.nodes_per_rack, spec=spec
        )
        self.sim = self.testbed.sim
        half = config.nodes_per_rack // 2
        self.borrowers = [f"node{i}" for i in range(half)]
        self.lenders = [
            f"node{i}" for i in range(half, config.nodes_per_rack)
        ]
        self.dead_lenders: set = set()
        self.pool = RackPool(
            machines_in_rack(config, rack_index),
            config.local_memory_fraction,
        )
        donor_total = len(self.lenders) * (config.node_dram_bytes // 2)
        self.export_budget = int(config.export_fraction * donor_total)
        self.exported = 0
        self.exported_peak = 0
        self._msg_seq = 0
        self._outbox: List[DomainMessage] = []
        self._tasks: Dict[int, Dict[str, Any]] = {}
        self._overflow_count = 0
        self.counters = {
            "leases": 0,
            "lease_denials": 0,
            "disrupted_leases": 0,
            "borrow_sent": 0,
            "grants_received": 0,
            "denies_received": 0,
            "late_grants": 0,
            "grants_issued": 0,
            "denials_issued": 0,
            "releases_received": 0,
        }
        self.remote_wait_count = 0
        self.remote_wait_total = 0.0
        self.remote_wait_max = 0.0

        for event in events:
            if event.task.task_id % config.racks != rack_index:
                continue
            if event.kind is EventKind.SUBMIT:
                self.sim.schedule_at(event.time, self._on_submit, event.task)
            else:
                self.sim.schedule_at(event.time, self._on_finish, event.task)
        if config.chaos and self.lenders and self.horizon > 0:
            self.sim.schedule_at(
                config.chaos_at_fraction * self.horizon,
                self._on_lender_crash,
            )

    # -- domain-program contract ------------------------------------------------
    def advance(self, window_end: float,
                inbox: List[DomainMessage]) -> List[DomainMessage]:
        self._outbox = []
        with capture_into(self._log):
            for message in inbox:
                self.sim.schedule_at(
                    message.deliver_t, self._on_message, message
                )
            self.sim.run(until=window_end)
        return self._outbox

    def finalize(self) -> Dict[str, Any]:
        stats = self._stats()
        registry = MetricsRegistry(f"rack{self.rack}")
        self.testbed.register_observability(registry)
        for task_class, count in stats["classes"].items():
            registry.gauge("cluster.tasks", **{"class": task_class}).set(
                count
            )
        for name, value in self.counters.items():
            registry.gauge(f"cluster.{name}").set(value)
        registry.gauge("cluster.exported_peak_bytes").set(self.exported_peak)
        registry.gauge("cluster.messages_sent").set(self._msg_seq)
        return {
            "rack": self.rack,
            "sim_now": self.sim.now,
            "stats": stats,
            "metrics": registry.snapshot(),
            "events": self._log.to_dicts(),
            "events_total": self._log.total,
            "events_evicted": self._log.evicted,
        }

    # -- trace handlers ----------------------------------------------------------
    def _on_submit(self, task: TaskRequest) -> None:
        config = self.config
        local_need = min(task.memory, config.local_memory_fraction)
        machine = self.pool.place(task.cpu, local_need)
        state = {
            "task": task,
            "machine": machine,
            "class": None,
            "attachment": None,
            "remote_bytes": 0,
            "requested_at": None,
            "finished": False,
            "disrupted": False,
        }
        self._tasks[task.task_id] = state
        if machine is None:
            state["class"] = "rejected"
            _events.emit(
                self.sim.now, "cluster.reject",
                rack=self.rack, task=task.task_id,
            )
            return
        overflow = task.memory - config.local_memory_fraction
        if overflow <= 0:
            state["class"] = "local"
            return
        nbytes = max(1, int(math.ceil(overflow * config.overflow_unit_bytes)))
        borrower = self.borrowers[
            self._overflow_count % len(self.borrowers)
        ]
        self._overflow_count += 1
        lender = self._lender_for(borrower)
        if lender is not None:
            try:
                attachment = self.testbed.attach(
                    borrower, nbytes, memory_host=lender
                )
            except ReproError as error:
                self.counters["lease_denials"] += 1
                _events.emit(
                    self.sim.now, "cluster.lease_denied",
                    rack=self.rack, task=task.task_id,
                    code=getattr(error, "code", "error"),
                )
            else:
                state["class"] = "rack_pool"
                state["attachment"] = attachment
                self.counters["leases"] += 1
                return
        if config.racks < 2:
            state["class"] = "stranded"
            return
        state["class"] = "pending_remote"
        state["remote_bytes"] = nbytes
        state["requested_at"] = self.sim.now
        self.counters["borrow_sent"] += 1
        self._send(
            "borrow", (self.rack + 1) % config.racks,
            {"task": task.task_id, "bytes": nbytes},
        )

    def _on_finish(self, task: TaskRequest) -> None:
        state = self._tasks.get(task.task_id)
        if state is None:  # pragma: no cover - defensive
            return
        state["finished"] = True
        if state["machine"] is not None:
            self.pool.release(
                state["machine"],
                task.cpu,
                min(task.memory, self.config.local_memory_fraction),
            )
            state["machine"] = None
        attachment = state["attachment"]
        if attachment is not None:
            self.testbed.detach(attachment)
            state["attachment"] = None
        if state["class"] == "remote_pool" and state["remote_bytes"]:
            self._send(
                "release", (self.rack + 1) % self.config.racks,
                {"task": task.task_id, "bytes": state["remote_bytes"]},
            )
            state["remote_bytes"] = 0

    # -- inter-rack protocol -----------------------------------------------------
    def _on_message(self, message: DomainMessage) -> None:
        payload = message.payload
        if message.kind == "borrow":
            nbytes = payload["bytes"]
            granted = self.exported + nbytes <= self.export_budget
            if granted:
                self.exported += nbytes
                self.exported_peak = max(self.exported_peak, self.exported)
                self.counters["grants_issued"] += 1
            else:
                self.counters["denials_issued"] += 1
            _events.emit(
                self.sim.now, "cluster.borrow",
                rack=self.rack, src=message.src,
                task=payload["task"], bytes=nbytes, granted=granted,
            )
            self._send(
                "grant" if granted else "deny", message.src, dict(payload)
            )
        elif message.kind in ("grant", "deny"):
            state = self._tasks.get(payload["task"])
            if state is None:  # pragma: no cover - defensive
                return
            if message.kind == "deny":
                self.counters["denies_received"] += 1
                state["class"] = "stranded"
                state["remote_bytes"] = 0
                return
            self.counters["grants_received"] += 1
            if state["finished"]:
                # The task drained before the grant arrived: the
                # reservation was never used — return it immediately.
                self.counters["late_grants"] += 1
                state["class"] = "stranded"
                self._send("release", message.src, dict(payload))
                state["remote_bytes"] = 0
                return
            state["class"] = "remote_pool"
            wait = self.sim.now - state["requested_at"]
            self.remote_wait_count += 1
            self.remote_wait_total += wait
            self.remote_wait_max = max(self.remote_wait_max, wait)
        elif message.kind == "release":
            self.exported -= payload["bytes"]
            self.counters["releases_received"] += 1

    def _send(self, kind: str, dst: int, payload: Dict[str, Any]) -> None:
        now = self.sim.now
        self._outbox.append(
            DomainMessage(
                src=self.rack,
                dst=dst,
                send_t=now,
                deliver_t=now + self.config.inter_rack_latency,
                seq=self._msg_seq,
                kind=kind,
                payload=payload,
            )
        )
        self._msg_seq += 1

    # -- chaos -------------------------------------------------------------------
    def _on_lender_crash(self) -> None:
        victim = self.lenders[0]
        self.dead_lenders.add(victim)
        self.testbed.node(victim).agent.crashed = True
        _events.emit(
            self.sim.now, "cluster.lender_crash",
            rack=self.rack, lender=victim,
        )
        for task_id in sorted(self._tasks):
            state = self._tasks[task_id]
            attachment = state["attachment"]
            if attachment is not None and attachment.memory_host == victim:
                self.testbed.detach(attachment, force=True)
                state["attachment"] = None
                state["disrupted"] = True
                self.counters["disrupted_leases"] += 1

    def _lender_for(self, borrower: str) -> Optional[str]:
        live = [l for l in self.lenders if l not in self.dead_lenders]
        if not live:
            return None
        return live[self.borrowers.index(borrower) % len(live)]

    # -- reporting ---------------------------------------------------------------
    def _stats(self) -> Dict[str, Any]:
        classes = {name: 0 for name in TASK_CLASSES}
        tenants = {
            str(t): {name: 0 for name in TASK_CLASSES}
            for t in range(self.config.tenants)
        }
        for task_id in sorted(self._tasks):
            task_class = self._tasks[task_id]["class"]
            if task_class not in classes:  # pending_remote at shutdown
                task_class = "stranded"
            classes[task_class] += 1
            tenants[str(task_id % self.config.tenants)][task_class] += 1
        return {
            "rack": self.rack,
            "machines": self.pool.machines,
            "tasks": len(self._tasks),
            "classes": classes,
            "tenants": tenants,
            "counters": dict(sorted(self.counters.items())),
            "export_budget_bytes": self.export_budget,
            "exported_peak_bytes": self.exported_peak,
            "exported_final_bytes": self.exported,
            "remote_wait": {
                "count": self.remote_wait_count,
                "total": self.remote_wait_total,
                "max": self.remote_wait_max,
            },
            "cpu_used_final": self.pool.cpu_used(),
        }


def build_rack_domain(rack_index: int, config: ClusterConfig) -> RackDomain:
    """Domain-builder target for the coordinator (picklable by name)."""
    return RackDomain(rack_index, config)
