"""Tests for the Fig. 1 motivation study (trace, models, replay)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    AllocationFailure,
    DisaggregatedDatacentre,
    FixedDatacentre,
    TraceConfig,
    ratio_span_orders_of_magnitude,
    replay_trace,
    run_fig1_experiment,
    synthesize_trace,
)
from repro.cluster.trace import EventKind, TaskRequest


def task(task_id=0, cpu=0.1, memory=0.1):
    return TaskRequest(task_id, cpu, memory, submit_time=0.0, duration=1.0)


class TestTrace:
    def test_events_sorted_and_paired(self):
        events = synthesize_trace(TraceConfig(tasks=200))
        times = [e.time for e in events]
        assert times == sorted(times)
        submits = sum(1 for e in events if e.kind is EventKind.SUBMIT)
        assert submits == 200
        assert len(events) == 400

    def test_finish_after_submit(self):
        events = synthesize_trace(TraceConfig(tasks=100))
        submit_time = {}
        for event in events:
            if event.kind is EventKind.SUBMIT:
                submit_time[event.task.task_id] = event.time
            else:
                assert event.time > submit_time[event.task.task_id]

    def test_deterministic(self):
        a = synthesize_trace(TraceConfig(tasks=100, seed=5))
        b = synthesize_trace(TraceConfig(tasks=100, seed=5))
        assert a == b

    def test_requests_within_machine_bounds(self):
        events = synthesize_trace(TraceConfig(tasks=500))
        for event in events:
            assert 0 < event.task.cpu <= 1.0
            assert 0 < event.task.memory <= 1.0

    def test_ratio_spans_three_orders_of_magnitude(self):
        """§I: memory/CPU demand ratios span 3 orders of magnitude."""
        events = synthesize_trace(TraceConfig(tasks=5000))
        span = ratio_span_orders_of_magnitude(iter(events))
        assert span >= 2.5


class TestFixedDatacentre:
    def test_allocate_reduces_free(self):
        dc = FixedDatacentre(4)
        dc.allocate(task(cpu=0.5, memory=0.25))
        assert dc.cpu_free.sum() == pytest.approx(3.5)
        assert dc.mem_free.sum() == pytest.approx(3.75)

    def test_release_restores(self):
        dc = FixedDatacentre(4)
        placement = dc.allocate(task(cpu=0.5, memory=0.25))
        dc.release(placement)
        assert dc.cpu_free.sum() == pytest.approx(4.0)
        assert dc.servers_off() == 4

    def test_best_fit_packs_tightly(self):
        dc = FixedDatacentre(4)
        dc.allocate(task(0, cpu=0.6, memory=0.6))
        # Second task fits next to the first; best fit should reuse it.
        dc.allocate(task(1, cpu=0.3, memory=0.3))
        assert dc.servers_off() == 3

    def test_infeasible_raises(self):
        dc = FixedDatacentre(1)
        dc.allocate(task(0, cpu=0.9, memory=0.9))
        with pytest.raises(AllocationFailure):
            dc.allocate(task(1, cpu=0.5, memory=0.1))

    def test_stranding_metrics(self):
        dc = FixedDatacentre(2)
        dc.allocate(task(0, cpu=0.2, memory=0.9))
        # Server 0 on: 0.8 CPU stranded, 0.1 memory stranded.
        assert dc.stranded_cpu() == pytest.approx(0.8)
        assert dc.stranded_memory() == pytest.approx(0.1)
        assert dc.servers_off() == 1


class TestDisaggregatedDatacentre:
    def test_memory_can_split_across_modules(self):
        dc = DisaggregatedDatacentre(2, 2, links_per_module=16)
        dc.allocate(task(0, cpu=0.1, memory=0.9))
        dc.allocate(task(1, cpu=0.1, memory=0.9))
        # 0.1 free on each module: a 0.15 request must span both.
        placement = dc.allocate(task(2, cpu=0.1, memory=0.15))
        assert len(placement.memory_shares) == 2

    def test_split_respects_link_budget(self):
        dc = DisaggregatedDatacentre(1, 4, links_per_module=2)
        dc.cpu_free[0] = 1.0
        # Fill modules to force a >2-way split which must fail.
        for index in range(4):
            dc.mem_free[index] = 0.2
        with pytest.raises(AllocationFailure):
            dc.allocate(task(0, cpu=0.1, memory=0.7))

    def test_release_restores_links(self):
        dc = DisaggregatedDatacentre(2, 2, links_per_module=4)
        placement = dc.allocate(task(0, cpu=0.5, memory=0.5))
        used_links = len(placement.memory_shares)
        assert dc.compute_links_free[placement.compute_unit] == 4 - used_links
        dc.release(placement)
        assert (dc.compute_links_free == 4).all()
        assert (dc.memory_links_free == 4).all()

    def test_off_counts(self):
        dc = DisaggregatedDatacentre(4, 4)
        dc.allocate(task(0, cpu=0.5, memory=0.5))
        assert dc.compute_off() == 3
        assert dc.memory_off() == 3

    def test_conservation_after_churn(self):
        dc = DisaggregatedDatacentre(8, 8)
        placements = [
            dc.allocate(task(i, cpu=0.1 + 0.05 * (i % 5), memory=0.2))
            for i in range(20)
        ]
        for placement in placements:
            dc.release(placement)
        assert dc.cpu_free.sum() == pytest.approx(8.0)
        assert dc.mem_free.sum() == pytest.approx(8.0)
        assert dc.compute_off() == 8 and dc.memory_off() == 8

    @settings(max_examples=25, deadline=None)
    @given(
        tasks=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=0.5),
                st.floats(min_value=0.01, max_value=0.9),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_property_no_negative_capacity(self, tasks):
        dc = DisaggregatedDatacentre(6, 6)
        placements = []
        for index, (cpu, memory) in enumerate(tasks):
            try:
                placements.append(dc.allocate(task(index, cpu, memory)))
            except AllocationFailure:
                pass
        assert (dc.cpu_free >= -1e-9).all()
        assert (dc.mem_free >= -1e-9).all()
        assert (dc.compute_links_free >= 0).all()
        for placement in placements:
            total = sum(amount for _u, amount in placement.memory_shares)
            assert total == pytest.approx(placement.task.memory)


class TestFig1Experiment:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.cluster import scaled_trace_config

        return run_fig1_experiment(scaled_trace_config(units=160), units=160)

    def test_disaggregation_reduces_fragmentation(self, reports):
        fixed, disagg = reports["fixed"], reports["disaggregated"]
        assert disagg.cpu_fragmentation_pct < fixed.cpu_fragmentation_pct
        assert disagg.memory_fragmentation_pct < fixed.memory_fragmentation_pct

    def test_fragmentation_reduction_factor_matches_paper(self, reports):
        """Fig. 1 ratios: CPU 16→3.86 (≈4.1×), MEM 29.5→9.2 (≈3.2×)."""
        fixed, disagg = reports["fixed"], reports["disaggregated"]
        cpu_factor = fixed.cpu_fragmentation_pct / disagg.cpu_fragmentation_pct
        mem_factor = (
            fixed.memory_fragmentation_pct / disagg.memory_fragmentation_pct
        )
        assert 2.0 <= cpu_factor <= 8.0
        assert 2.0 <= mem_factor <= 6.0

    def test_memory_fragments_more_than_cpu(self, reports):
        for report in reports.values():
            assert (
                report.memory_fragmentation_pct > report.cpu_fragmentation_pct
            )

    def test_disaggregation_powers_off_more_memory(self, reports):
        fixed, disagg = reports["fixed"], reports["disaggregated"]
        assert disagg.memory_off_pct > fixed.memory_off_pct + 5.0

    def test_replay_is_deterministic(self):
        from repro.cluster import scaled_trace_config

        config = scaled_trace_config(units=80, tasks=2000)
        a = run_fig1_experiment(config, units=80)
        b = run_fig1_experiment(config, units=80)
        assert a["fixed"].as_row() == b["fixed"].as_row()
        assert a["disaggregated"].as_row() == b["disaggregated"].as_row()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_trace(FixedDatacentre(4), [])
