"""Perf-regression harness for the parallel sweep engine.

Measures three ways of regenerating figures 5-9 (the per-configuration
model sweeps; Fig. 1 is a single monolithic cluster replay and is
covered by ``BENCH_kernel.json``'s workloads instead):

* **serial** — ``jobs=1``, cache off: the pre-engine baseline cost;
* **cold parallel** — ``jobs=4`` into an empty cache: fan-out speedup;
* **warm** — the same run again: content-addressed cache replay.

Results land in ``BENCH_sweeps.json`` at the repository root so
regressions show up in review diffs. The rendered tables from all
three runs must be byte-identical — the speedups are only meaningful
if the parallel and cached paths reproduce the serial output exactly.

Set ``SWEEP_PERF_SMOKE=1`` for a fast CI-sized run with relaxed
thresholds (the full run asserts the ISSUE targets: >=2x cold
parallel, >=10x warm cache). The cold-parallel target presumes the
host can actually run the workers concurrently; like ``--jobs auto``,
the bench never oversubscribes — it fans out with ``min(4, cpus)``
workers — and on hosts with fewer than 4 CPUs the assertion degrades
to an engine-overhead bound while the measured numbers (and the CPU
count) are still recorded in ``BENCH_sweeps.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.figures import render
from repro.sweep import run_figures

SMOKE = os.environ.get("SWEEP_PERF_SMOKE", "") not in ("", "0")

#: Results land at the repository root, next to BENCH_kernel.json.
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sweeps.json",
)

FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9")

# Fan out like ``--jobs auto`` would: up to 4 workers, never more than
# the host has CPUs (oversubscribing a small host only adds thrash).
CPUS = os.cpu_count() or 1
JOBS = min(4, CPUS)

# Fig. 8's latency-sample count dominates the sweep's wall-clock; the
# other figures' slices provide the many-small-specs load.
FIG8_SAMPLES = 150_000 if SMOKE else 800_000

# Required speedups (full run = the ISSUE acceptance targets; smoke
# keeps CI honest without being flaky on loaded shared runners). The
# parallel target only holds where >=4 workers run concurrently; a
# smaller host bounds the engine + pool dispatch overhead instead.
if JOBS >= 4:
    COLD_TARGET = 1.2 if SMOKE else 2.0
elif JOBS > 1:
    COLD_TARGET = 1.05
else:
    COLD_TARGET = 0.8
WARM_TARGET = 3.0 if SMOKE else 10.0


def _figure_kwargs():
    return {"fig8": {"samples": FIG8_SAMPLES}}


def _timed_run(**engine_kwargs):
    started = time.perf_counter()
    tables, engine = run_figures(
        list(FIGURES), figure_kwargs=_figure_kwargs(), **engine_kwargs
    )
    elapsed = time.perf_counter() - started
    rendered = "\n".join(render(tables[name]) for name in FIGURES)
    return rendered, engine, elapsed


def test_sweep_fanout_and_cache_speedup(tmp_path):
    cache_dir = str(tmp_path / "cache")

    serial_text, _, serial_s = _timed_run(jobs=1, cache=False)

    cold_text, cold_engine, cold_s = _timed_run(jobs=JOBS,
                                                cache_dir=cache_dir)
    assert cold_engine.cache_hits == 0 and cold_engine.executed > 0

    warm_text, warm_engine, warm_s = _timed_run(jobs=JOBS,
                                                cache_dir=cache_dir)
    assert warm_engine.executed == 0
    assert warm_engine.cache_hits == warm_engine.specs_seen

    # Correctness first: all three paths render identical tables.
    assert cold_text == serial_text
    assert warm_text == serial_text

    cold_speedup = serial_s / cold_s
    warm_speedup = serial_s / warm_s
    print(
        f"figs 5-9 (fig8 samples={FIG8_SAMPLES:,}, {CPUS} CPUs): "
        f"serial {serial_s:.2f}s, cold x{JOBS} {cold_s:.2f}s "
        f"({cold_speedup:.2f}x), warm {warm_s:.3f}s "
        f"({warm_speedup:.1f}x)"
    )

    report = {
        "figures": list(FIGURES),
        "specs": cold_engine.specs_seen,
        "jobs": JOBS,
        "cpus": CPUS,
        "fig8_samples": FIG8_SAMPLES,
        "serial_s": round(serial_s, 4),
        "cold_parallel_s": round(cold_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "cold_speedup": round(cold_speedup, 3),
        "warm_speedup": round(warm_speedup, 3),
        "cold_target": COLD_TARGET,
        "warm_target": WARM_TARGET,
        "smoke": SMOKE,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert cold_speedup >= COLD_TARGET, (
        f"cold parallel sweep {cold_speedup:.2f}x < {COLD_TARGET}x target"
    )
    assert warm_speedup >= WARM_TARGET, (
        f"warm cache replay {warm_speedup:.2f}x < {WARM_TARGET}x target"
    )
