"""Command line: regenerate paper figures, run the demo, trace, sweep.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig5                 # one figure's series (serial)
    python -m repro all                  # every figure (serial)
    python -m repro demo                 # attach/detach walk-through
    python -m repro trace stream         # traced run + Chrome-trace artifacts
    python -m repro trace chaos --scenario link-kill-failover
    python -m repro metrics stream       # Prometheus exposition + events + profile
    python -m repro figures --jobs auto  # parallel + cached regeneration
    python -m repro sweep slice:fig8.config --sweep kind=local,scale-out \\
        --set samples=30000              # fan a target out over a grid
    python -m repro chaos link-kill-failover --seed 7 --out chaos-artifacts
    python -m repro dse --smoke          # fault-campaign DSE + SLO ranking
    python -m repro backends             # which accel backend is active
    python -m repro serve --port 8080    # control plane over HTTP (asyncio)
    python -m repro loadtest --smoke     # throughput-vs-p99 curves + shed counts
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys

from .figures import FIGURES, render


def _run_demo() -> None:
    from .mem import MIB
    from .obs import MetricsRegistry, RunSummary, summary_from_snapshot
    from .testbed import Testbed

    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(128))
    testbed.node0.run_store(window.start, payload)
    assert testbed.node0.run_load(window.start) == payload
    for _ in range(16):
        testbed.node0.run_load(window.start)
    rtt = testbed.node0.device.compute.rtt.mean
    testbed.detach(attachment)

    summary = RunSummary("repro demo — attach, store/load, detach")
    summary.section("attachment")
    summary.row("size", "4 MiB of node1 on node0")
    summary.row(
        "real-address window", f"[{window.start:#x}, {window.end:#x})"
    )
    summary.row("NUMA node", attachment.plan.numa_node_id)
    summary.section("datapath")
    summary.row("remote load/store", "roundtrip OK")
    summary.row("unloaded RTT", rtt * 1e9, "ns")
    summary.section("control plane")
    summary.row("teardown", "detached cleanly")
    print(summary.render())

    registry = MetricsRegistry()
    testbed.register_observability(registry)
    print()
    print(
        summary_from_snapshot(
            "end-of-run metrics",
            registry.snapshot(),
            prefixes=["bus", "endpoint", "llc", "dram"],
        ).render()
    )


# -- traced workloads ------------------------------------------------------------


def _trace_stream(nbytes: int):
    """STREAM-style bulk transfer: burst write + read-back over the wire."""
    from .mem import MIB
    from .osmodel import PagePolicy
    from .testbed import RemoteBuffer, Testbed

    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    buffer = RemoteBuffer.allocate(
        testbed.node0,
        nbytes,
        policy=PagePolicy.BIND,
        numa_nodes=[attachment.plan.numa_node_id],
        batched=True,
    )
    blob = bytes(range(256)) * (nbytes // 256)
    buffer.write(0, blob)
    assert buffer.read(0, nbytes) == blob
    buffer.free()
    return testbed


def _trace_pingpong(nbytes: int):
    """Per-cacheline load/store roundtrips (latency-bound)."""
    from .mem import MIB
    from .testbed import Testbed

    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(128))
    rounds = max(1, min(nbytes // 128, 64))
    for index in range(rounds):
        testbed.node0.run_store(window.start + index * 128, payload)
        testbed.node0.run_load(window.start + index * 128)
    return testbed


def _trace_fault(nbytes: int):
    """Forced frame drops on channel 0 exercising the LLC replay path."""
    from .mem import MIB
    from .net.faults import FaultInjector
    from .testbed import Testbed

    injector = FaultInjector()
    testbed = Testbed(fault_injectors={0: injector})
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(128))
    testbed.node0.run_store(window.start, payload)
    injector.force_drop_next(2)
    rounds = max(4, min(nbytes // 128, 32))
    for _ in range(rounds):
        testbed.node0.run_load(window.start)
    return testbed


_TRACE_WORKLOADS = {
    "stream": _trace_stream,
    "pingpong": _trace_pingpong,
    "fault": _trace_fault,
}


def _run_trace(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one workload with end-to-end tracing enabled and write "
            "the Chrome-trace JSON (Perfetto/chrome://tracing), the "
            "metrics snapshot JSON and a terminal summary. The 'chaos' "
            "workload traces a resilience scenario (--scenario) and "
            "additionally writes its event journal."
        ),
    )
    from .resilience import SCENARIOS

    parser.add_argument(
        "workload",
        choices=sorted(_TRACE_WORKLOADS) + ["chaos"],
        nargs="?",
        help="workload to trace",
    )
    parser.add_argument(
        "--bytes",
        type=int,
        default=128 * 1024,
        dest="nbytes",
        help="workload size in bytes (rounded down to 256 B, min 256)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=1,
        help="trace 1 in N transactions (default: every transaction)",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="link-kill-failover",
        help="resilience scenario for the chaos workload",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="scenario seed for the chaos workload",
    )
    parser.add_argument(
        "--out",
        default="trace-artifacts",
        help="output directory for the exported artifacts",
    )
    args = parser.parse_args(argv)
    if args.workload is None:
        parser.print_help()
        return 0
    if args.workload == "chaos":
        return _trace_chaos(args)
    nbytes = max(256, args.nbytes - args.nbytes % 256)

    from .obs import (
        MetricsRegistry,
        disable_tracing,
        enable_tracing,
        render_metrics_summary,
        write_chrome_trace,
        write_metrics_json,
    )

    os.makedirs(args.out, exist_ok=True)
    tracer = enable_tracing(sample_every=args.sample)
    try:
        testbed = _TRACE_WORKLOADS[args.workload](nbytes)
    finally:
        disable_tracing()
    registry = MetricsRegistry()
    testbed.register_observability(registry)

    trace_path = os.path.join(args.out, f"trace-{args.workload}.json")
    metrics_path = os.path.join(args.out, f"metrics-{args.workload}.json")
    write_chrome_trace(tracer, trace_path)
    write_metrics_json(registry, metrics_path)
    print(render_metrics_summary(registry, f"repro trace {args.workload}"))
    print()
    completed = len(tracer.completed())
    print(
        f"traced {len(tracer.transactions)} transactions "
        f"({completed} completed end-to-end, 1-in-{tracer.sample_every} "
        f"sampling)"
    )
    print(f"chrome trace : {trace_path}")
    print(f"metrics json : {metrics_path}")
    return 0


def _trace_chaos(args) -> int:
    """Traced resilience scenario: validated Chrome trace + journal."""
    from .obs import (
        chrome_trace,
        disable_tracing,
        enable_tracing,
        validate_chrome_trace,
    )
    from .resilience import run_scenario

    os.makedirs(args.out, exist_ok=True)
    tracer = enable_tracing(sample_every=args.sample)
    try:
        result = run_scenario(args.scenario, seed=args.seed)
    finally:
        disable_tracing()

    document = chrome_trace(tracer)
    count = validate_chrome_trace(document)

    stem = f"chaos-{args.scenario}"
    trace_path = os.path.join(args.out, f"trace-{stem}.json")
    metrics_path = os.path.join(args.out, f"metrics-{stem}.json")
    events_path = os.path.join(args.out, f"events-{stem}.jsonl")
    with open(trace_path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")
    with open(metrics_path, "w") as handle:
        json.dump(result["metrics"], handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(events_path, "w") as handle:
        for event in result["events"]:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")

    verdict = "OK" if result["verified"] else "FAILED"
    print(f"chaos {args.scenario} (seed {args.seed}): {verdict}")
    print(
        f"traced {len(tracer.transactions)} transactions, "
        f"{count} chrome-trace events (validated), "
        f"{len(result['events'])} journal events"
    )
    slo = result.get("slo")
    if slo is not None:
        print(f"SLOs: {slo['total'] - slo['breached']}/{slo['total']} ok")
    print(f"chrome trace : {trace_path}")
    print(f"metrics json : {metrics_path}")
    print(f"event journal: {events_path}")
    return 0 if result["verified"] else 1


# -- telemetry pipeline -----------------------------------------------------------


def _run_metrics(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description=(
            "Run one workload with the full telemetry pipeline enabled "
            "(metrics registry + structured event log + sim-time "
            "profiler) and print the registry in Prometheus text "
            "exposition format. Writes the exposition, the JSON-lines "
            "event journal and a flame-graph folded-stacks profile; "
            "--slo evaluates declarative objectives against the final "
            "registry and exits non-zero on breach."
        ),
    )
    parser.add_argument(
        "workload",
        choices=sorted(_TRACE_WORKLOADS),
        nargs="?",
        help="workload to run with telemetry on",
    )
    parser.add_argument(
        "--bytes",
        type=int,
        default=128 * 1024,
        dest="nbytes",
        help="workload size in bytes (rounded down to 256 B, min 256)",
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=1024,
        help="profiler sampling stride in kernel events",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="SPEC",
        dest="slos",
        help="SLO spec 'name: metric{k=v,...} op threshold' (repeatable); "
             "any breach makes the exit code non-zero",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="profiler components to show in the top-N table",
    )
    parser.add_argument(
        "--out",
        default="metrics-artifacts",
        help="output directory for the exported artifacts",
    )
    args = parser.parse_args(argv)
    if args.workload is None:
        parser.print_help()
        return 0
    nbytes = max(256, args.nbytes - args.nbytes % 256)

    from .obs import (
        MetricsRegistry,
        disable_events,
        disable_profiling,
        enable_events,
        enable_profiling,
        parse_prometheus,
        render_prometheus,
    )
    from .obs.slo import SloEngine, parse_slo_specs

    specs = parse_slo_specs(args.slos)

    os.makedirs(args.out, exist_ok=True)
    enable_events()
    enable_profiling(stride=args.stride)
    try:
        testbed = _TRACE_WORKLOADS[args.workload](nbytes)
    finally:
        profiler = disable_profiling()

    registry = MetricsRegistry()
    testbed.register_observability(registry)

    # Evaluate SLOs before closing the journal so breach events land in
    # it with the workload as correlation context.
    report = None
    if specs:
        report = SloEngine(specs).evaluate(
            registry,
            now=testbed.sim.now,
            context={"workload": args.workload},
        )
    log = disable_events()

    exposition = render_prometheus(registry)
    parsed = parse_prometheus(exposition)  # strict self-check

    prom_path = os.path.join(args.out, f"metrics-{args.workload}.prom")
    events_path = os.path.join(args.out, f"events-{args.workload}.jsonl")
    folded_path = os.path.join(args.out, f"profile-{args.workload}.folded")
    with open(prom_path, "w") as handle:
        handle.write(exposition)
    log.write_jsonl(events_path)
    profiler.write_folded(folded_path)

    print(exposition, end="")
    print()
    print(profiler.top_table(args.top).render())
    if report is not None:
        print()
        print(report.render())
    print()
    print(
        f"{len(parsed['samples'])} series across "
        f"{len(parsed['types'])} families (strict parse OK); "
        f"{log.total} journal events ({log.evicted} evicted); "
        f"{profiler.samples_taken} profiler samples @ stride {args.stride}"
    )
    print(f"exposition   : {prom_path}")
    print(f"event journal: {events_path}")
    print(f"folded stacks: {folded_path}")
    return report.exit_code() if report is not None else 0


# -- sweep-engine subcommands ----------------------------------------------------


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        default="1",
        help="worker processes: an integer or 'auto' (= CPU count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: benchmarks/results/cache)",
    )


def _make_engine(args):
    from .sweep import SweepEngine

    return SweepEngine(
        jobs=args.jobs, cache=not args.no_cache, cache_dir=args.cache_dir
    )


def _run_figures(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro figures",
        description=(
            "Regenerate paper figures through the sweep engine: "
            "independent slices fan out over worker processes and "
            "cached slices are not recomputed. Output tables are "
            "byte-identical to the serial figure functions."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="figure",
        help=f"figure ids to regenerate (default: all of "
             f"{', '.join(sorted(FIGURES))})",
    )
    _add_engine_arguments(parser)
    args = parser.parse_args(argv)

    from .obs import summary_from_snapshot
    from .sweep import run_figures

    names = args.figures or sorted(FIGURES)
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(FIGURES))})"
        )
    tables, engine = run_figures(names, engine=_make_engine(args))
    for name in names:
        print(render(tables[name]))
        print()
    print(engine.stats_line())
    if engine.executed:
        print()
        print(
            summary_from_snapshot(
                "sweep metrics (workers merged)",
                engine.registry.snapshot(),
                prefixes=["sweep"],
            ).render()
        )
    return 0


def _parse_value(text: str):
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_assignment(option: str, text: str):
    if "=" not in text:
        raise SystemExit(
            f"error: {option} expects KEY=VALUE, got {text!r}"
        )
    key, _, value = text.partition("=")
    return key, value


def _run_sweep(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=(
            "Fan one target out over a parameter grid through the "
            "sweep engine. Targets: 'slice:<name>' (figure slices), "
            "'figure:<name>' (whole figures), 'py:<module>:<function>' "
            "(any importable JSON-returning function)."
        ),
        epilog=(
            "example: python -m repro sweep slice:fig8.config "
            "--sweep kind=local,scale-out --set samples=10000 --jobs 2"
        ),
    )
    parser.add_argument(
        "target", help="target to run (slice:, figure: or py:module:function)"
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="fixed",
        help="fixed kwarg for every run (VALUE parsed as JSON, else string)",
    )
    parser.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        dest="swept",
        help="kwarg swept over comma-separated values (cartesian product)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="per-spec seed recorded in the cache key (passed to targets "
             "that accept a 'seed' kwarg)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print one JSON object per run instead of the table",
    )
    _add_engine_arguments(parser)
    args = parser.parse_args(argv)

    from .sweep import make_spec, resolve_target

    try:
        resolve_target(args.target)
    except (KeyError, ImportError, AttributeError, ValueError) as error:
        parser.error(str(error))

    fixed = dict(
        (key, _parse_value(value))
        for key, value in (
            _parse_assignment("--set", item) for item in args.fixed
        )
    )
    axes = []
    for item in args.swept:
        key, values = _parse_assignment("--sweep", item)
        axes.append(
            (key, [_parse_value(value) for value in values.split(",")])
        )

    grids = [dict(zip([k for k, _ in axes], combo))
             for combo in itertools.product(*[v for _, v in axes])]
    specs = [
        make_spec(args.target, seed=args.seed, **{**fixed, **grid})
        for grid in grids
    ]
    engine = _make_engine(args)
    outcomes = engine.run(specs)

    for outcome in outcomes:
        record = {
            "key": outcome.spec.key,
            "target": outcome.spec.target,
            "kwargs": outcome.spec.kwargs,
            "seed": outcome.spec.seed,
            "cached": outcome.cached,
            "elapsed_s": round(outcome.elapsed_s, 6),
            "result": outcome.value,
        }
        if args.json:
            print(json.dumps(record, sort_keys=True))
        else:
            preview = json.dumps(outcome.value)
            if len(preview) > 72:
                preview = preview[:69] + "..."
            source = "cache" if outcome.cached else "run"
            print(
                f"{outcome.spec.key[:12]}  {source:5s} "
                f"{outcome.elapsed_s:8.3f}s  "
                f"{outcome.spec.kwargs_json}  {preview}"
            )
    print(engine.stats_line())
    return 0


# -- accel backends ---------------------------------------------------------------


def _run_backends(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro backends",
        description=(
            "Report the accelerated-kernel backend in use: which backend "
            "REPRO_BACKEND selected, which are importable, the numpy "
            "version, and why a fallback happened (if one did)."
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as one JSON object",
    )
    args = parser.parse_args(argv)

    from . import accel

    info = accel.backend_info()
    if args.json:
        print(json.dumps(info, sort_keys=True))
        return 0

    requested = info["requested"] if info["requested"] is not None else "-"
    env_value = info["env_value"] if info["env_value"] is not None else "(unset)"
    print(f"selected backend : {info['selected']}")
    print(f"requested        : {requested}")
    print(f"{info['env_var']:17s}: {env_value}")
    print(f"available        : {', '.join(info['available'])}")
    if info["numpy_version"] is not None:
        print(f"numpy            : {info['numpy_version']}")
    else:
        print(f"numpy            : unavailable ({info['numpy_import_error']})")
    if info["fallback_reason"] is not None:
        print(f"fallback         : {info['fallback_reason']}")
    return 0


# -- chaos engineering -----------------------------------------------------------


def _run_chaos(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Run one deterministic fault-recovery scenario (seeded "
            "campaigns, monitored failover, journal replay) and print "
            "its verdict; optionally write the full JSON result with "
            "a sorted metrics snapshot for byte-for-byte diffing."
        ),
    )
    from .resilience import SCENARIOS

    parser.add_argument(
        "scenario",
        choices=sorted(SCENARIOS),
        nargs="?",
        help="scenario to run",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="campaign/workload seed (same seed => identical metrics)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory for the chaos-<scenario>.json artifact",
    )
    args = parser.parse_args(argv)
    if args.scenario is None:
        parser.print_help()
        return 0

    from .resilience import run_scenario

    result = run_scenario(args.scenario, seed=args.seed)
    verdict = "OK" if result["verified"] else "FAILED"
    print(f"chaos {args.scenario} (seed {args.seed}): {verdict}")
    for key in ("failed_at_offset", "failovers", "endpoint_retries",
                "frames_dropped", "drained_at_s"):
        if key in result:
            print(f"  {key:18s} {result[key]}")
    if "report" in result:
        report = result["report"]
        print(
            f"  failover           #{report['old_attachment']} "
            f"({report['old_memory_host']}) -> "
            f"#{report['new_attachment']} ({report['new_memory_host']}) "
            f"in {report['recovery_time_s'] * 1e6:.1f} us, "
            f"{report['replayed_bytes']} bytes replayed"
        )
    if "slo" in result:
        slo = result["slo"]
        print(
            f"  SLOs               {slo['total'] - slo['breached']}"
            f"/{slo['total']} ok, {len(result.get('events', []))} "
            f"journal events"
        )
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"chaos-{args.scenario}.json")
        with open(path, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"result json : {path}")
    return 0 if result["verified"] else 1


# -- fault-campaign design-space exploration --------------------------------------


def _run_dse(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro dse",
        description=(
            "Fault-campaign design-space exploration with "
            "availability-SLO decision support: build a design over the "
            "robustness factor space (factorial grid or seeded "
            "evolutionary search), run every cell through the cached "
            "sweep engine, judge cells against availability SLOs, and "
            "write a decision-support report (text + JSON + markdown) "
            "ranking the SLO-passing configurations by bandwidth cost "
            "and naming the dominant sensitivity factors."
        ),
        epilog=(
            "examples: python -m repro dse --design factorial "
            "--factor failover_policy=fast,none --replicates 2; "
            "python -m repro dse --design evolve --generations 3 "
            "--population 6 --jobs auto"
        ),
    )
    parser.add_argument(
        "--design",
        choices=("factorial", "evolve"),
        default="factorial",
        help="design builder: full/fractional factorial grid, or "
             "seeded evolutionary search (tournament + mutation)",
    )
    parser.add_argument(
        "--factor",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        dest="factors",
        help="override one factor's sweep levels (values parsed as "
             "JSON, else strings); repeatable",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="seed replicates per design point (replicate i runs with "
             "seed base+i)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="base seed: replicate seeds and the evolutionary search "
             "derive from it",
    )
    parser.add_argument(
        "--fraction",
        type=int,
        default=1,
        help="factorial only: keep a deterministic 1/N lattice slice "
             "of the full grid",
    )
    parser.add_argument(
        "--phase",
        type=int,
        default=0,
        help="factorial only: which 1/N slice to keep (0..fraction-1)",
    )
    parser.add_argument(
        "--generations", type=int, default=4,
        help="evolve only: number of generations",
    )
    parser.add_argument(
        "--population", type=int, default=8,
        help="evolve only: population size",
    )
    parser.add_argument(
        "--tournament", type=int, default=2,
        help="evolve only: tournament size for parent selection",
    )
    parser.add_argument(
        "--mutation-rate", type=float, default=0.35,
        help="evolve only: per-factor mutation probability",
    )
    parser.add_argument(
        "--objective",
        default="bandwidth_cost",
        help="response minimized among SLO-passing configurations "
             "(and the evolutionary fitness)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="SPEC",
        dest="slos",
        help="SLO spec 'name: metric{k=v,...} op threshold' "
             "(repeatable; default: the stock availability objectives)",
    )
    parser.add_argument(
        "--payload-kib",
        type=int,
        default=32,
        help="workload size per cell in KiB",
    )
    parser.add_argument(
        "--campaign-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="campaign_params",
        help="campaign parameter override (e.g. at_s=2e-5) applied to "
             "every faulted cell; repeatable",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 2x2x2 factorial (frame_flits x loss_rate x "
             "failover_policy) with 2 replicates — includes the "
             "deliberate no-failover canary that breaches the "
             "availability SLO",
    )
    parser.add_argument(
        "--out",
        default="dse-artifacts",
        help="output directory for dse-report.{json,md}",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON report instead of the text rendering",
    )
    _add_engine_arguments(parser)
    args = parser.parse_args(argv)

    from .resilience.dse import (
        CELL_TARGET,
        EvolutionarySearch,
        build_report,
        cells_for,
        default_space,
        fractional_factorial,
        full_factorial,
        render_markdown,
        render_text,
    )
    from .resilience.dse.responses import DEFAULT_SLOS
    from .sweep import make_spec

    overrides = {}
    if args.smoke:
        overrides = {
            "frame_flits": [8, 16],
            "credit_depth": [256],
            "loss_rate": [0.0, 0.01],
            "campaign": ["link-kill"],
            "failover_policy": ["fast", "none"],
        }
        args.replicates = max(args.replicates, 2)
    for item in args.factors:
        key, values = _parse_assignment("--factor", item)
        overrides[key] = [_parse_value(value) for value in values.split(",")]
    campaign_params = dict(
        (key, _parse_value(value))
        for key, value in (
            _parse_assignment("--campaign-param", item)
            for item in args.campaign_params
        )
    )
    slo_lines = args.slos or list(DEFAULT_SLOS)

    space = default_space()
    levels = space.levels(overrides)
    engine = _make_engine(args)

    def specs_for(cells):
        specs = []
        for cell in cells:
            kwargs = dict(cell.point)
            if kwargs.get("campaign") != "none" and campaign_params:
                kwargs["campaign_params"] = campaign_params
            specs.append(make_spec(
                CELL_TARGET,
                seed=cell.seed,
                payload_kib=args.payload_kib,
                **kwargs,
            ))
        return specs

    def evaluate(cells):
        """Run cells through the engine; returns judged cell records."""
        outcomes = engine.run(specs_for(cells))
        return [
            {
                "point": dict(cell.point),
                "seed": cell.seed,
                "replicate": cell.replicate,
                "value": outcome.value,
            }
            for cell, outcome in zip(cells, outcomes)
        ]

    design_info = {"kind": args.design, "seed": args.seed,
                   "replicates": args.replicates,
                   "payload_kib": args.payload_kib}
    if args.design == "factorial":
        if args.fraction > 1:
            points = fractional_factorial(
                levels, args.fraction, args.phase
            )
            design_info["fraction"] = args.fraction
            design_info["phase"] = args.phase
        else:
            points = full_factorial(levels)
        records = evaluate(cells_for(points, args.replicates, args.seed))
    else:
        from .obs.slo import parse_slo_specs
        from .resilience.dse import evaluate_cell_slo

        specs = parse_slo_specs(slo_lines)
        records = []

        def fitness(points):
            batch = evaluate(
                cells_for(points, args.replicates, args.seed)
            )
            records.extend(batch)
            scores = []
            for point in points:
                own = [
                    record for record in batch
                    if record["point"] == point
                ]
                breaches = sum(
                    0 if evaluate_cell_slo(record["value"], specs)["ok"]
                    else 1
                    for record in own
                )
                mean = sum(
                    record["value"]["responses"][args.objective]
                    for record in own
                ) / len(own)
                # SLO breaches dominate: an infeasible configuration
                # never outranks a feasible one on raw objective value.
                scores.append(mean + 1e9 * breaches)
            return scores

        search = EvolutionarySearch(
            levels,
            population=args.population,
            generations=args.generations,
            tournament=args.tournament,
            mutation_rate=args.mutation_rate,
            seed=args.seed,
        )
        result = search.run(fitness)
        design_info.update({
            "population": args.population,
            "generations": args.generations,
            "tournament": args.tournament,
            "mutation_rate": args.mutation_rate,
            "evolution": result.describe(),
        })

    report = build_report(
        design=design_info,
        cells=records,
        levels=levels,
        slo_lines=slo_lines,
        objective=args.objective,
    )

    os.makedirs(args.out, exist_ok=True)
    json_path = os.path.join(args.out, "dse-report.json")
    md_path = os.path.join(args.out, "dse-report.md")
    with open(json_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(md_path, "w") as handle:
        handle.write(render_markdown(report))

    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_text(report))
    print()
    print(engine.stats_line())
    print(f"report json    : {json_path}")
    print(f"report markdown: {md_path}")
    return 0


# -- sharded multi-rack cluster replay --------------------------------------------


def _run_cluster(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description=(
            "Sharded rack-domain simulation: replay the cluster trace "
            "as live attach/detach/steal traffic across N rack "
            "testbeds, each its own simulation domain under "
            "conservative (Chandy-Misra) time sync. --jobs fans the "
            "domains out over worker processes; the artifact is "
            "byte-identical to a serial run for the same config."
        ),
        epilog=(
            "examples: python -m repro cluster --racks 4 --tasks 2000; "
            "python -m repro cluster --scale 0.013 --jobs 4 --chaos "
            "--out cluster-artifacts"
        ),
    )
    parser.add_argument(
        "--racks", type=int, default=4,
        help="rack domains (each a full packet-switched testbed)",
    )
    parser.add_argument(
        "--nodes", type=int, default=4,
        help="nodes per rack; first half borrow, second half lend",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="size the logical-machine fleet as a fraction of the "
             "Google trace's 12555 machines (overrides --machines)",
    )
    parser.add_argument(
        "--machines", type=int, default=None,
        help="logical machines across the cluster (default 160)",
    )
    parser.add_argument(
        "--tasks", type=int, default=None,
        help="trace length; default sizes it from the machine count",
    )
    parser.add_argument(
        "--sample", type=float, default=1.0,
        help="deterministically keep this fraction of the trace's "
             "tasks (0 < f <= 1)",
    )
    parser.add_argument(
        "--seed", type=int, default=17,
        help="trace seed (same seed + config => identical artifact)",
    )
    parser.add_argument(
        "--local-fraction", type=float, default=None, metavar="F",
        help="machine memory that is local; tasks above it lease from "
             "the rack pool (default 0.1)",
    )
    parser.add_argument(
        "--latency", type=float, default=None, metavar="T",
        help="one-way inter-rack latency in trace time units — also "
             "the sync lookahead / window width (default 50)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="crash each rack's first memory lender mid-run "
             "(force-detach its leases, remap borrowers)",
    )
    parser.add_argument(
        "--jobs", default=None,
        help="domain worker processes ('auto' = cpu count; default: "
             "$SWEEP_JOBS or 1)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for cluster-summary.json + cluster-journal.jsonl",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the summary JSON instead of the text rendering",
    )
    args = parser.parse_args(argv)

    from .cluster import (
        GOOGLE_TRACE_MACHINES,
        ClusterConfig,
        run_cluster,
        write_artifacts,
    )
    from .sweep import resolve_jobs

    machines = args.machines
    if args.scale is not None:
        if not 0.0 < args.scale <= 1.0:
            parser.error(f"--scale must be in (0, 1], got {args.scale}")
        machines = max(args.racks, round(GOOGLE_TRACE_MACHINES * args.scale))
    overrides = {}
    if args.local_fraction is not None:
        overrides["local_memory_fraction"] = args.local_fraction
    if args.latency is not None:
        overrides["inter_rack_latency"] = args.latency
    config = ClusterConfig(
        racks=args.racks,
        nodes_per_rack=args.nodes,
        machines=machines if machines is not None else 160,
        tasks=args.tasks,
        seed=args.seed,
        sample=args.sample,
        chaos=args.chaos,
        **overrides,
    )
    jobs = resolve_jobs(args.jobs)

    artifact, runtime = run_cluster(config, jobs=jobs)
    summary = artifact["summary"]

    if args.json:
        print(json.dumps(
            {
                "config": artifact["config"],
                "horizon": artifact["horizon"],
                "rounds": artifact["rounds"],
                "messages": artifact["messages"],
                "summary": summary,
                "runtime": runtime,
            },
            sort_keys=True,
        ))
    else:
        print(
            f"cluster : {config.racks} racks x {config.nodes_per_rack} "
            f"nodes, {config.machines} machines, "
            f"{summary['tasks']} tasks, seed {config.seed}"
            f"{', chaos' if config.chaos else ''}"
        )
        print(
            f"sync    : {artifact['rounds']} windows of "
            f"{config.inter_rack_latency:g} (horizon "
            f"{artifact['horizon']:.0f}), {artifact['messages']} "
            f"inter-rack messages, jobs {runtime['jobs']}"
        )
        total = max(summary["tasks"], 1)
        share = "  ".join(
            f"{name} {100.0 * count / total:.1f}%"
            for name, count in summary["classes"].items()
        )
        print(f"classes : {share}")
        counters = {k: v for k, v in summary["counters"].items() if v}
        if counters:
            print(
                "traffic : "
                + "  ".join(f"{k} {v}" for k, v in sorted(counters.items()))
            )
        print(
            f"wall    : {runtime['wall_s']:.2f} s "
            f"(domain busy {runtime['busy_s']:.2f} s)"
        )
    if args.out is not None:
        paths = write_artifacts(artifact, args.out)
        print(f"summary : {paths['summary']}")
        print(f"journal : {paths['journal']}")
    return 0


# -- control-plane server + load test --------------------------------------------


def _run_serve(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Boot the prototype testbed and serve its control plane "
            "over HTTP (asyncio, stdlib-only). Prints the issued "
            "credentials; Ctrl-C drains gracefully."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="0 picks an ephemeral port")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=256,
                        help="bounded admission-queue depth")
    args = parser.parse_args(argv)

    import asyncio

    from .control.api import RestApi
    from .control.qos import QosClass
    from .control.server import ControlServer, ServerConfig
    from .obs import MetricsRegistry, enable_events
    from .testbed import Testbed

    async def serve() -> None:
        testbed = Testbed()
        enable_events(4096)
        registry = MetricsRegistry()
        api = RestApi(testbed.plane, registry=registry)
        demo_tenant = testbed.plane.register_tenant(
            "demo", qos=QosClass.BURSTABLE,
            max_attachments=16, max_bytes=64 << 20,
        )
        server = ControlServer(
            api,
            ServerConfig(host=args.host, port=args.port,
                         workers=args.workers,
                         max_queue_depth=args.queue_depth),
            registry=registry,
        )
        await server.start()
        print(f"listening    : http://{args.host}:{server.port}")
        print(f"admin token  : {testbed.admin_token}")
        print(f"demo tenant  : {demo_tenant} (burstable)")
        print(f"catalogue    : GET /v1   (unauthenticated)")
        print(f"scrape       : GET /v1/metrics")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining ...")
            await server.drain()
            print(f"served {server.requests_served} requests, "
                  f"shed {server.queue.shed_count}")

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_loadtest(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadtest",
        description=(
            "Open-loop load test of the control-plane HTTP server: "
            "stages of rising request rate against three tenants "
            "(guaranteed/burstable/best-effort), reporting throughput, "
            "latency percentiles, the validation-latency CDF, shed "
            "counts and peak RSS to BENCH_control.json."
        ),
    )
    parser.add_argument("--smoke", action="store_true",
                        help="short CI preset (seconds, still sheds)")
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--out", default="BENCH_control.json")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    args = parser.parse_args(argv)

    from .control.loadgen import run_control_benchmark

    report = run_control_benchmark(
        smoke=args.smoke, queue_depth=args.queue_depth
    )
    report["preset"] = "smoke" if args.smoke else "full"
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0
    print(f"preset  : {report['preset']}  "
          f"(queue depth {args.queue_depth})")
    print("stage      offered      ok  tput_rps   p50_ms   p95_ms   p99_ms")
    for stage in report["stages"]:
        lat = stage["latency_ms"]
        print(f"{stage['rate_rps']:>7.0f}/s  {stage['offered']:>7} "
              f"{stage['ok']:>7}  {stage['throughput_rps']:>8.1f} "
              f"{lat['p50']:>8.1f} {lat['p95']:>8.1f} {lat['p99']:>8.1f}")
    totals = report["totals"]
    validation = report["validation"]
    print(f"shed    : {totals['quota_429']} x 429 (quota), "
          f"{totals['shed_503']} x 503 (overload/headroom)")
    print(f"validate: n={validation['count']} "
          f"p50={validation['latency_ms']['p50']:.1f}ms "
          f"p99={validation['latency_ms']['p99']:.1f}ms")
    print(f"peak rss: {report['peak_rss_kib'] / 1024:.1f} MiB")
    print(f"report  : {args.out}")
    return 0


# -- entry point -----------------------------------------------------------------

#: Subcommands with their own argv (dispatched before the main parser).
_SUBCOMMANDS = {
    "trace": _run_trace,
    "metrics": _run_metrics,
    "figures": _run_figures,
    "sweep": _run_sweep,
    "chaos": _run_chaos,
    "cluster": _run_cluster,
    "dse": _run_dse,
    "backends": _run_backends,
    "serve": _run_serve,
    "loadtest": _run_loadtest,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "ThymesisFlow (MICRO 2020) reproduction: regenerate the "
            "paper's figures from the simulated stack."
        ),
    )
    sub = parser.add_subparsers(dest="command", metavar="command")
    sub.add_parser("list", help="list every regenerable figure")
    sub.add_parser("all", help="regenerate every figure serially")
    for name, fn in sorted(FIGURES.items()):
        sub.add_parser(name, help=fn.__doc__.strip().splitlines()[0])
    sub.add_parser("demo", help="attach/detach walk-through with summary")
    sub.add_parser(
        "trace",
        help="traced workload run with Chrome-trace + metrics artifacts",
        add_help=False,
    )
    sub.add_parser(
        "metrics",
        help="telemetry run: Prometheus exposition, event log, profiler",
        add_help=False,
    )
    sub.add_parser(
        "figures",
        help="parallel, cached figure regeneration (--jobs N, --no-cache)",
        add_help=False,
    )
    sub.add_parser(
        "sweep",
        help="fan a target out over a parameter grid (--sweep k=v1,v2)",
        add_help=False,
    )
    sub.add_parser(
        "chaos",
        help="deterministic fault-recovery scenario (--seed N, --out DIR)",
        add_help=False,
    )
    sub.add_parser(
        "cluster",
        help="sharded multi-rack trace replay under conservative time "
             "sync (--racks N, --scale S, --jobs J)",
        add_help=False,
    )
    sub.add_parser(
        "dse",
        help="fault-campaign design-space exploration with SLO-ranked "
             "decision support (--design factorial|evolve)",
        add_help=False,
    )
    sub.add_parser(
        "backends",
        help="report the accel backend in use (REPRO_BACKEND, --json)",
        add_help=False,
    )
    sub.add_parser(
        "serve",
        help="serve the control plane over HTTP (--port, --workers)",
        add_help=False,
    )
    sub.add_parser(
        "loadtest",
        help="throughput-vs-latency load test of the control-plane "
             "server (--smoke, --out BENCH_control.json)",
        add_help=False,
    )
    return parser


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommands with options of their own get the raw argv tail; the
    # main parser only ever sees the simple single-token commands.
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](list(argv[1:]))
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        for name, fn in sorted(FIGURES.items()):
            print(f"{name:6s} {fn.__doc__.strip().splitlines()[0]}")
        return 0
    if args.command == "demo":
        _run_demo()
        return 0
    targets = sorted(FIGURES) if args.command == "all" else [args.command]
    for name in targets:
        print(render(FIGURES[name]()))
        print()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly the way
        # well-behaved Unix filters do (128 + SIGPIPE).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(141)
