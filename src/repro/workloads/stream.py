"""STREAM sustainable-memory-bandwidth benchmark — paper §VI-C / Fig. 5.

Two faces:

* :class:`StreamModel` — the analytic machine model that regenerates
  Fig. 5: per-thread bandwidth is concurrency-limited
  (outstanding-lines × linesize / latency), the aggregate is capped by
  the path bandwidth (channel ceiling for disaggregated memory, split
  harmonically for the interleaved configuration), with a mild
  saturation penalty past the knee ("performance decreases because the
  network facing stack gets closer to the saturation threshold").
* :func:`stream_reference_kernels` — tiny functional implementations of
  the four kernels over numpy arrays used to validate the bytes/FLOP
  accounting in tests.

Kernel definitions follow §VI-C exactly: copy moves 16 B/iteration with
0 FLOPs; scale 16 B with 1 FLOP; add 24 B with 1 FLOP; triad 24 B with
2 FLOPs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..mem.address import CACHELINE_BYTES, GIB
from ..testbed.configurations import AccessEnvironment, MemoryConfigKind

__all__ = [
    "StreamKernel",
    "StreamConfig",
    "StreamResult",
    "StreamModel",
    "stream_reference_kernels",
]


class StreamKernel(enum.Enum):
    """The four STREAM kernels with their per-iteration costs (§VI-C)."""

    COPY = ("copy", 16, 0)
    SCALE = ("scale", 16, 1)
    ADD = ("add", 24, 1)
    TRIAD = ("triad", 24, 2)

    def __init__(self, label: str, bytes_per_iter: int, flops_per_iter: int):
        self.label = label
        self.bytes_per_iter = bytes_per_iter
        self.flops_per_iter = flops_per_iter


@dataclass(frozen=True)
class StreamConfig:
    """One STREAM run: paper default is 160 M elements (3.66 GiB total)."""

    array_elements: int = 160_000_000
    element_bytes: int = 8
    threads: int = 8

    @property
    def footprint_bytes(self) -> int:
        # Three arrays (a, b, c) as in McCalpin's reference code.
        return 3 * self.array_elements * self.element_bytes

    def __post_init__(self):
        if self.array_elements < 1 or self.threads < 1:
            raise ValueError("need >= 1 element and >= 1 thread")


@dataclass(frozen=True)
class StreamResult:
    kernel: StreamKernel
    threads: int
    bandwidth_bytes_s: float

    @property
    def bandwidth_gib_s(self) -> float:
        return self.bandwidth_bytes_s / GIB


class StreamModel:
    """Analytic sustained-bandwidth model for one §VI-A configuration."""

    def __init__(
        self,
        environment: AccessEnvironment,
        outstanding_lines_per_thread: int = 20,
        flops_per_cycle: float = 4.0,
        frequency_hz: float = 3.8e9,
        saturation_droop: float = 0.05,
    ):
        self.environment = environment
        self.outstanding = outstanding_lines_per_thread
        self.flops_per_cycle = flops_per_cycle
        self.frequency_hz = frequency_hz
        self.saturation_droop = saturation_droop

    # -- model pieces ------------------------------------------------------------------
    def effective_latency_s(self) -> float:
        """Mean miss latency: STREAM misses on every line (no reuse)."""
        env = self.environment
        if env.remote_fraction == 0.0:
            return env.local_latency_s
        return (
            (1.0 - env.remote_fraction) * env.local_latency_s
            + env.remote_fraction * env.remote_latency_s
        )

    def per_thread_bandwidth(self, kernel: StreamKernel) -> float:
        """Concurrency-limited demand of one thread (Little's law)."""
        memory_time = self.effective_latency_s() / self.outstanding
        bandwidth = CACHELINE_BYTES / memory_time
        if kernel.flops_per_iter:
            # One iteration moves bytes_per_iter and does flops; compute
            # time per byte shaves demand when it dominates (it never
            # does on POWER9 at 4 FLOP/cycle, but the model is honest).
            compute_time_per_byte = kernel.flops_per_iter / (
                self.flops_per_cycle * self.frequency_hz * kernel.bytes_per_iter
            )
            memory_time_per_byte = 1.0 / bandwidth
            bandwidth = 1.0 / max(memory_time_per_byte, compute_time_per_byte)
        return bandwidth

    def path_capacity(self) -> float:
        """Aggregate ceiling of the memory path for this configuration."""
        env = self.environment
        if env.remote_fraction == 0.0:
            return env.local_bandwidth_bytes_s
        if env.remote_fraction >= 1.0:
            return env.remote_bandwidth_bytes_s
        # Interleaved: both paths run in parallel; the slower-relative
        # path bounds the blend (min over f/bw terms).
        remote_bound = env.remote_bandwidth_bytes_s / env.remote_fraction
        local_bound = env.local_bandwidth_bytes_s / (1.0 - env.remote_fraction)
        return min(remote_bound, local_bound)

    def sustained_bandwidth(
        self, kernel: StreamKernel, threads: int
    ) -> float:
        """Aggregate sustained bandwidth for ``threads`` OpenMP threads."""
        if threads < 1:
            raise ValueError(f"threads must be >= 1: {threads}")
        demand = threads * self.per_thread_bandwidth(kernel)
        capacity = self.path_capacity()
        if demand <= capacity:
            return demand
        # Past the knee the network-facing stack saturates and goodput
        # droops slightly with additional pressure (§VI-C).
        overload = demand / capacity - 1.0
        return capacity / (1.0 + self.saturation_droop * overload)

    # -- benchmark driver ----------------------------------------------------------------
    def run(self, config: Optional[StreamConfig] = None) -> Dict[str, StreamResult]:
        config = config or StreamConfig()
        return {
            kernel.label: StreamResult(
                kernel=kernel,
                threads=config.threads,
                bandwidth_bytes_s=self.sustained_bandwidth(
                    kernel, config.threads
                ),
            )
            for kernel in StreamKernel
        }


def stream_reference_kernels(elements: int = 1024) -> Dict[str, np.ndarray]:
    """Functional reference: run all four kernels, return the arrays.

    Used by tests to pin down the bytes/FLOPs bookkeeping (e.g. that
    "copy" really is one read + one write per element).
    """
    rng = np.random.default_rng(42)
    a = rng.random(elements)
    b = np.empty_like(a)
    c = np.empty_like(a)
    scalar = 3.0
    c[:] = a                      # copy:  c = a
    b[:] = scalar * c             # scale: b = q*c
    c[:] = a + b                  # add:   c = a + b
    a_out = b + scalar * c        # triad: a = b + q*c
    return {"a": a, "b": b, "c": c, "triad": a_out}
