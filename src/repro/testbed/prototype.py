"""The three-node experimental prototype — paper §V / §VI-A.

"The experimental prototype is composed of three IBM Power System AC922
nodes … Two of the nodes are equipped with an Alpha Data 9V3 card";
those two are cabled back-to-back with two independent 100 Gb/s
channels, and the third node runs application clients over a separate
10 Gb/s Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..control.orchestrator import ControlPlane
from ..control.security import Role
from ..core.llc import LlcConfig
from ..net.link import DuplexChannel, LinkConfig, SerialLink
from ..net.faults import FaultInjector
from ..sim.engine import Simulator
from .base import TestbedBase
from .node import Ac922Node, NodeSpec

__all__ = ["Testbed", "EthernetSpec"]


@dataclass(frozen=True)
class EthernetSpec:
    """Conventional networks in the testbed (§VI-A)."""

    #: server↔server Ethernet used by the scale-out configuration.
    server_gbps: float = 100.0
    #: client↔server Ethernet (all configurations).
    client_gbps: float = 10.0
    #: one-way latency of a LAN hop (switch + stack).
    hop_latency_s: float = 20e-6


class Testbed(TestbedBase):
    """Builds the §V prototype and exposes attach/detach shortcuts."""

    def __init__(
        self,
        spec: Optional[NodeSpec] = None,
        llc_config: Optional[LlcConfig] = None,
        link_config: Optional[LinkConfig] = None,
        ethernet: Optional[EthernetSpec] = None,
        fault_injectors: Optional[Dict[int, FaultInjector]] = None,
        channels_between_servers: int = 2,
    ):
        self.sim = Simulator()
        self.spec = spec or NodeSpec()
        self.ethernet = ethernet or EthernetSpec()
        link_config = link_config or LinkConfig()

        # Nodes: two FPGA-equipped servers plus a client node.
        self.node0 = Ac922Node(self.sim, "node0", self.spec, llc_config)
        self.node1 = Ac922Node(self.sim, "node1", self.spec, llc_config)
        client_spec = NodeSpec(
            dram_bytes=self.spec.dram_bytes,
            cpu_count=self.spec.cpu_count,
            section_bytes=self.spec.section_bytes,
            page_bytes=self.spec.page_bytes,
            has_fpga=False,
        )
        self.client = Ac922Node(self.sim, "client", client_spec)
        self.servers = [self.node0, self.node1]
        self.nodes = [self.node0, self.node1, self.client]

        # Direct-attached copper: two independent channels (§V).
        self.channels: List[DuplexChannel] = []
        injectors = fault_injectors or {}
        for index in range(channels_between_servers):
            channel = DuplexChannel(
                self.sim,
                link_config,
                faults_ab=injectors.get(index),
                name=f"ch{index}",
            )
            self.node0.device.connect_channel(channel.endpoint_view("a"))
            self.node1.device.connect_channel(channel.endpoint_view("b"))
            self.channels.append(channel)

        # Control plane + agents ----------------------------------------------------
        self.plane = ControlPlane()
        # Control events share the datapath's sim-time timeline.
        self.plane.clock = lambda: self.sim.now
        for node in self.servers:
            self.plane.register_host(
                node.agent,
                transceivers=channels_between_servers,
                donor_capacity_bytes=node.spec.dram_bytes // 2,
            )
        for index in range(channels_between_servers):
            self.plane.add_cable("node0", index, "node1", index)
        self.admin_token = self.plane.acl.issue_token(Role.ADMIN)

    # -- topology hooks ------------------------------------------------------------------
    def _register_network(self, registry) -> None:
        for channel in self.channels:
            channel.a_to_b.register_metrics(registry, direction="ab")
            channel.b_to_a.register_metrics(registry, direction="ba")

    def links_of(self, hostname: str) -> List[SerialLink]:
        node = self.node(hostname)  # KeyError on unknown host
        if node not in self.servers:
            return []
        # Back-to-back cabling: both servers share one fault domain —
        # severing the copper isolates either of them.
        links: List[SerialLink] = []
        for channel in self.channels:
            links.extend((channel.a_to_b, channel.b_to_a))
        return links

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Testbed(nodes={[n.hostname for n in self.nodes]}, "
            f"channels={len(self.channels)})"
        )
