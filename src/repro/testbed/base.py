"""One front door for every testbed: protocol + shared base class.

The three testbeds (:class:`~repro.testbed.prototype.Testbed`,
:class:`~repro.testbed.rack.RackTestbed`,
:class:`~repro.testbed.packet_rack.PacketRackTestbed`) historically
grew divergent ``attach()`` signatures and each lacked some part of the
common surface (``register_observability``, ``run``). This module
fixes the API: :class:`TestbedProtocol` is the structural contract —
attach/detach/run/register_observability with **one** signature and one
:class:`~repro.control.orchestrator.Attachment` return type — and
:class:`TestbedBase` implements it once, with small hooks for the
per-topology differences (the circuit switch's reconfiguration blackout,
which links belong to which host).

``memory_host``/``bonded``/``token`` are keyword-only. The one-release
positional shim (PR 4's :class:`DeprecationWarning`) is gone: passing
them positionally now raises :class:`TypeError` straight from the
signature.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

from ..control.orchestrator import Attachment, ControlPlane
from ..mem.address import AddressRange
from ..net.link import SerialLink
from ..sim.engine import Simulator
from .node import Ac922Node

__all__ = ["TestbedProtocol", "TestbedBase"]


@runtime_checkable
class TestbedProtocol(Protocol):
    """What every testbed exposes: the unified experiment surface."""

    sim: Simulator
    plane: ControlPlane
    nodes: List[Ac922Node]
    admin_token: str

    def node(self, hostname: str) -> Ac922Node:
        ...

    def attach(
        self,
        compute_host: str,
        size: int,
        *,
        memory_host: Optional[str] = None,
        bonded: bool = False,
        token: Optional[str] = None,
    ) -> Attachment:
        ...

    def detach(self, attachment: Attachment, *, force: bool = False) -> None:
        ...

    def remote_window_range(self, attachment: Attachment) -> AddressRange:
        ...

    def run(self, until: Optional[float] = None) -> float:
        ...

    def register_observability(self, registry) -> None:
        ...

    def links_of(self, hostname: str) -> List[SerialLink]:
        ...


class TestbedBase:
    """Shared implementation of :class:`TestbedProtocol`.

    Subclasses build ``sim``/``plane``/``nodes``/``admin_token`` in
    their constructors and may override the two hooks:

    * :meth:`_settle_after_attach` — e.g. the circuit switch's optical
      reconfiguration blackout.
    * :meth:`_register_network` — per-topology link/switch metrics.
    """

    __test__ = False  # not a pytest class, despite subclass names

    sim: Simulator
    plane: ControlPlane
    nodes: List[Ac922Node]
    admin_token: str

    # -- node lookup ---------------------------------------------------------------
    def node(self, hostname: str) -> Ac922Node:
        for node in self.nodes:
            if node.hostname == hostname:
                return node
        raise KeyError(f"no node {hostname!r}")

    # -- attach / detach -----------------------------------------------------------
    def attach(
        self,
        compute_host: str,
        size: int,
        *,
        memory_host: Optional[str] = None,
        bonded: bool = False,
        token: Optional[str] = None,
    ) -> Attachment:
        """Attach ``size`` bytes of disaggregated memory to a host.

        Uses the admin credential unless ``token`` is given. Returns
        once the fabric is usable (after any reconfiguration blackout).
        """
        attachment = self.plane.attach(
            compute_host,
            size,
            memory_host=memory_host,
            bonded=bonded,
            token=token if token is not None else self.admin_token,
        )
        self._settle_after_attach(attachment)
        return attachment

    def detach(self, attachment: Attachment, *, force: bool = False) -> None:
        self.plane.detach(
            attachment.attachment_id, token=self.admin_token, force=force
        )

    def _settle_after_attach(self, attachment: Attachment) -> None:
        """Hook: wait out fabric bring-up before traffic flows."""

    # -- addressing ----------------------------------------------------------------
    def remote_window_range(self, attachment: Attachment) -> AddressRange:
        """Real-address range the attachment occupies on the compute node."""
        node = self.node(attachment.compute_host)
        section_bytes = node.spec.section_bytes
        first = attachment.plan.section_indices[0]
        count = len(attachment.plan.section_indices)
        return AddressRange(
            node.tf_window.start + first * section_bytes,
            count * section_bytes,
        )

    # -- execution -----------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Advance the shared simulation (to ``until``, or until idle)."""
        return self.sim.run(until=until)

    # -- observability -------------------------------------------------------------
    def register_observability(self, registry) -> None:
        """Register every node plus the topology's network elements."""
        for node in self.nodes:
            node.register_observability(registry)
        self._register_network(registry)

    def _register_network(self, registry) -> None:
        """Hook: per-topology link/switch metric registration."""

    # -- fault domains --------------------------------------------------------------
    def links_of(self, hostname: str) -> List[SerialLink]:
        """The serial links whose failure isolates ``hostname``.

        Fault campaigns target these (install an injector, kill or
        degrade the link); each topology knows its own wiring.
        """
        raise NotImplementedError
