"""The five experimental memory configurations — paper §VI-A, Fig. 4.

Each configuration is summarized as an :class:`AccessEnvironment`: the
memory-system parameters an application model needs to predict its
performance (remote fraction and latency, bandwidth ceilings, CPU and
instance counts, network synchronization costs). This is the single
place where the §VI-A semantics live:

* **local** — all memory on the application server's node.
* **single-disaggregated** — all memory stolen from the neighbour over
  one 100 Gb/s channel.
* **bonding-disaggregated** — as above over both channels (200 Gb/s),
  but the effective memory bandwidth is capped by the OpenCAPI C1
  128 B-transaction ceiling (≈16 GiB/s), not 2× the single channel.
* **interleaved** — pages round-robined 50/50 across local + remote.
* **scale-out** — the application is scaled across both servers with
  local memory only; it gains 2× CPU but pays network synchronization
  (the paper notes disaggregated configs use *half* the CPUs of
  scale-out).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..mem.address import GIB
from .calibration import (
    CHANNEL_THEORETICAL_MAX_BYTES_S,
    LOCAL_DRAM_BANDWIDTH_BYTES_S,
    LOCAL_DRAM_LATENCY_S,
    OPENCAPI_C1_128B_CEILING_BYTES_S,
    PROTOTYPE_RTT_S,
)
from .prototype import EthernetSpec

__all__ = ["MemoryConfigKind", "AccessEnvironment", "make_environment"]

#: Effective per-access latency penalty of round-robin channel bonding,
#: calibrated to the measured single-vs-bonding gaps of Figs. 7 and 8.
#: Mechanism: each channel delivers frames strictly in order, so a
#: transaction sprayed onto one channel waits behind that channel's
#: unrelated frames, and with traffic halved per channel frames fill
#: (and flush) more slowly; responses also complete out of order and
#: must be matched. Bonding therefore buys bandwidth (Fig. 5) at the
#: cost of unloaded latency.
BONDING_LATENCY_PENALTY = 1.35


class MemoryConfigKind(enum.Enum):
    LOCAL = "local"
    SINGLE_DISAGGREGATED = "single-disaggregated"
    BONDING_DISAGGREGATED = "bonding-disaggregated"
    INTERLEAVED = "interleaved"
    SCALE_OUT = "scale-out"


@dataclass(frozen=True)
class AccessEnvironment:
    """Memory-system view an application sees under one configuration."""

    kind: MemoryConfigKind
    #: Fraction of LLC misses served by disaggregated memory.
    remote_fraction: float
    #: Unloaded latency of one remote access (RTT of the datapath).
    remote_latency_s: float
    #: Aggregate bandwidth toward disaggregated memory.
    remote_bandwidth_bytes_s: float
    #: Local DRAM parameters.
    local_latency_s: float
    local_bandwidth_bytes_s: float
    #: CPU cores available to one application instance.
    cores_per_instance: int
    #: Number of cooperating application instances (2 for scale-out).
    instances: int
    #: One-way latency of an inter-instance network message (scale-out).
    sync_latency_s: float
    #: One-way latency client → application server.
    client_latency_s: float

    @property
    def total_cores(self) -> int:
        return self.cores_per_instance * self.instances

    @property
    def uses_thymesisflow(self) -> bool:
        return self.remote_fraction > 0.0

    def with_cores(self, cores_per_instance: int) -> "AccessEnvironment":
        return replace(self, cores_per_instance=cores_per_instance)

    def average_miss_latency(self) -> float:
        """Mean LLC-miss service latency under the NUMA split."""
        return (
            (1.0 - self.remote_fraction) * self.local_latency_s
            + self.remote_fraction * self.remote_latency_s
        )


def make_environment(
    kind: MemoryConfigKind,
    cores_per_node: int = 32,
    ethernet: Optional[EthernetSpec] = None,
    remote_rtt_s: float = PROTOTYPE_RTT_S,
) -> AccessEnvironment:
    """Build the §VI-A environment for one configuration."""
    ethernet = ethernet or EthernetSpec()
    client = ethernet.hop_latency_s
    base = dict(
        local_latency_s=LOCAL_DRAM_LATENCY_S,
        local_bandwidth_bytes_s=LOCAL_DRAM_BANDWIDTH_BYTES_S,
        cores_per_instance=cores_per_node,
        instances=1,
        sync_latency_s=0.0,
        client_latency_s=client,
    )
    if kind is MemoryConfigKind.LOCAL:
        return AccessEnvironment(
            kind=kind,
            remote_fraction=0.0,
            remote_latency_s=0.0,
            remote_bandwidth_bytes_s=0.0,
            **base,
        )
    if kind is MemoryConfigKind.SINGLE_DISAGGREGATED:
        return AccessEnvironment(
            kind=kind,
            remote_fraction=1.0,
            remote_latency_s=remote_rtt_s,
            remote_bandwidth_bytes_s=CHANNEL_THEORETICAL_MAX_BYTES_S,
            **base,
        )
    if kind is MemoryConfigKind.BONDING_DISAGGREGATED:
        # Two channels = 25 GiB/s of wire, but the C1 128 B-transaction
        # ceiling caps useful memory bandwidth at ~16 GiB/s (§VI-C).
        # Round-robin spraying lets responses complete out of order, so
        # unloaded per-access latency is slightly *worse* than a single
        # channel — visible in Figs. 7–9 where bonding trails single for
        # latency-bound workloads while winning on bandwidth (Fig. 5).
        return AccessEnvironment(
            kind=kind,
            remote_fraction=1.0,
            remote_latency_s=remote_rtt_s * BONDING_LATENCY_PENALTY,
            remote_bandwidth_bytes_s=min(
                2 * CHANNEL_THEORETICAL_MAX_BYTES_S,
                OPENCAPI_C1_128B_CEILING_BYTES_S,
            ),
            **base,
        )
    if kind is MemoryConfigKind.INTERLEAVED:
        return AccessEnvironment(
            kind=kind,
            remote_fraction=0.5,
            remote_latency_s=remote_rtt_s,
            remote_bandwidth_bytes_s=CHANNEL_THEORETICAL_MAX_BYTES_S,
            **base,
        )
    if kind is MemoryConfigKind.SCALE_OUT:
        environment = dict(base)
        environment["instances"] = 2
        environment["sync_latency_s"] = ethernet.hop_latency_s
        return AccessEnvironment(
            kind=kind,
            remote_fraction=0.0,
            remote_latency_s=0.0,
            remote_bandwidth_bytes_s=0.0,
            **environment,
        )
    raise ValueError(f"unknown configuration {kind!r}")


def all_environments(
    cores_per_node: int = 32,
    ethernet: Optional[EthernetSpec] = None,
) -> Dict[MemoryConfigKind, AccessEnvironment]:
    """All five §VI-A environments keyed by kind."""
    return {
        kind: make_environment(kind, cores_per_node, ethernet)
        for kind in MemoryConfigKind
    }
