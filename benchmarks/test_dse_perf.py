"""Perf + reproducibility harness for the DSE smoke design.

Runs the CI smoke design (2x2x2 factorial over frame size, ambient
loss, and failover policy, with 2 seed replicates = 16 cells) twice
through the real ``python -m repro dse`` entry point against a shared
content-addressed cache:

* **cold** — every cell simulated, cache populated;
* **warm** — every cell served from cache; the decision-support
  artifacts (JSON + markdown) must be byte-identical to the cold run.

Results land in ``BENCH_dse.json`` at the repository root so timing
regressions (and the warm-replay speedup) show up in review diffs.
The harness also asserts the smoke design's availability canary: the
``failover_policy=none`` configurations must breach the availability
floor, otherwise the decision support has nothing to decide.

Set ``DSE_PERF_SMOKE=1`` (CI) to relax the warm-speedup threshold for
noisy shared runners; the byte-identity and canary assertions are
unconditional.
"""

from __future__ import annotations

import io
import json
import os
import time
from contextlib import redirect_stdout

from repro.__main__ import main

SMOKE = os.environ.get("DSE_PERF_SMOKE", "") not in ("", "0")

#: Results land at the repository root, next to BENCH_sweeps.json.
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_dse.json",
)

WARM_TARGET = 2.0 if SMOKE else 5.0


def _run(out_dir, cache_dir):
    argv = [
        "dse", "--smoke", "--seed", "7",
        "--out", out_dir, "--cache-dir", cache_dir,
    ]
    stdout = io.StringIO()
    started = time.perf_counter()
    with redirect_stdout(stdout):
        code = main(argv)
    elapsed = time.perf_counter() - started
    assert code == 0
    return stdout.getvalue(), elapsed


def _artifacts(out_dir):
    with open(os.path.join(out_dir, "dse-report.json"), "rb") as fh:
        report_json = fh.read()
    with open(os.path.join(out_dir, "dse-report.md"), "rb") as fh:
        report_md = fh.read()
    return report_json, report_md


def test_dse_smoke_cold_warm_and_canary(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold_out = str(tmp_path / "cold")
    warm_out = str(tmp_path / "warm")

    cold_text, cold_s = _run(cold_out, cache_dir)
    assert "cache 0 hits" in cold_text or "16 executed" in cold_text

    warm_text, warm_s = _run(warm_out, cache_dir)
    assert "0 executed" in warm_text
    assert "cache 16 hits" in warm_text

    # Reproducibility first: warm replay renders the same decision.
    cold_json, cold_md = _artifacts(cold_out)
    warm_json, warm_md = _artifacts(warm_out)
    assert warm_json == cold_json
    assert warm_md == cold_md

    # The smoke design must carry at least one breaching configuration
    # (the failover_policy=none canary) and at least one passing one,
    # or the ranking exercises nothing.
    report = json.loads(cold_json)
    breaching = report["ranking"]["breaching"]
    passing = report["ranking"]["passing"]
    assert breaching, "smoke design lost its SLO-breach canary"
    assert passing, "smoke design has no feasible configuration"
    assert all(
        json.loads(key)["failover_policy"] == "none" for key in breaching
    )
    assert report["recommendation"]["failover_policy"] == "fast"
    dominant = report["sensitivity"]["availability"]["factors"][0]
    assert dominant["factor"] == "failover_policy"

    warm_speedup = cold_s / warm_s
    cells = sum(row["cells"] for row in report["configs"])
    print(
        f"dse smoke ({cells} cells): cold {cold_s:.2f}s, "
        f"warm {warm_s:.3f}s ({warm_speedup:.1f}x)"
    )

    bench = {
        "design": "smoke (2x2x2 factorial, 2 replicates)",
        "cells": cells,
        "configs": len(report["configs"]),
        "breaching_configs": len(breaching),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(warm_speedup, 3),
        "warm_target": WARM_TARGET,
        "smoke": SMOKE,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert warm_speedup >= WARM_TARGET, (
        f"warm DSE replay {warm_speedup:.2f}x < {WARM_TARGET}x target"
    )
