"""Unified exception hierarchy with stable machine-readable codes.

Every domain error in the reproduction derives from :class:`ReproError`
and carries a ``code`` — a stable, machine-readable slug (``"graph/
no-path"``, ``"memory/unreachable"``) that survives message rewording.
The REST facade (:mod:`repro.control.api`) maps codes to HTTP statuses
through the single :data:`HTTP_STATUS_BY_CODE` table instead of
string-matching exception messages, and every error body it returns is
the versioned ``{"error": <human text>, "code": <slug>}`` shape.

The concrete exception classes keep living in their home modules
(``SwitchError`` in ``repro.net.switch``, ``AuthError`` in
``repro.control.security``, ...) so existing import paths stay valid;
they subclass both :class:`ReproError` and their historical stdlib base
(``RuntimeError``, ``ValueError``, ``PermissionError``) so existing
``except`` clauses keep catching them.

This module must import nothing from the rest of ``repro`` — it is the
root of the package's exception graph.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ReproError",
    "RemoteMemoryError",
    "HTTP_STATUS_BY_CODE",
    "http_status_for",
]


class ReproError(Exception):
    """Base of every domain error; carries a stable ``code`` slug.

    ``details`` holds optional structured context (attempt counts,
    attachment ids...) surfaced by :meth:`describe` for API bodies and
    logs without parsing the human-readable message.
    """

    #: Machine-readable error code; subclasses override the class
    #: attribute. An instance may override it again via ``code=``.
    code: str = "repro/error"

    def __init__(
        self, message: str, *, code: Optional[str] = None, **details: Any
    ):
        super().__init__(message)
        if code is not None:
            self.code = code
        self.details: Dict[str, Any] = details

    def describe(self) -> Dict[str, Any]:
        """Versioned error body: ``{"error", "code"}`` plus details."""
        body: Dict[str, Any] = {"error": str(self), "code": self.code}
        if self.details:
            body["details"] = dict(self.details)
        return body


class RemoteMemoryError(ReproError, RuntimeError):
    """A remote-memory transaction failed permanently.

    Raised by the compute endpoint after its bounded retry/backoff
    budget is exhausted (donor crash, permanently dead link) — the
    structured alternative to hanging the event loop. ``details``
    carries ``endpoint``/``network_id``/``attempts``/``elapsed_s`` so
    the health monitor can map the failure back to an attachment.
    """

    code = "memory/unreachable"


#: The one code -> HTTP status table (satellite: no string matching).
#: 4xx are caller mistakes, 409 is "valid request, conflicting state",
#: 429 is "tenant over quota, retry after releasing", 502 is upstream
#: (donor/link) failure, 503 is "not wired / shedding / draining".
HTTP_STATUS_BY_CODE: Dict[str, int] = {
    "repro/error": 500,
    "auth/denied": 401,
    "mem/address": 400,
    "request/invalid": 400,
    "graph/inconsistent": 409,
    "graph/no-path": 409,
    "switch/circuit": 409,
    "switch/packet-session": 409,
    "control/orchestration": 409,
    "control/unknown-attachment": 404,
    "control/quota-exceeded": 429,
    "control/no-headroom": 503,
    "server/overloaded": 503,
    "server/draining": 503,
    "memory/unreachable": 502,
    "memory/quarantined": 409,
    "resilience/unknown-campaign": 400,
    "resilience/bad-campaign-params": 400,
    "resilience/no-injector": 503,
    "dse/bad-design": 400,
    "dse/empty-feasible-set": 400,
}


def http_status_for(code: str) -> int:
    """HTTP status for an error code (500 for unknown codes)."""
    return HTTP_STATUS_BY_CODE.get(code, 500)
