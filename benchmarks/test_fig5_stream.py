"""Fig. 5 — STREAM sustained memory bandwidth.

Paper series: kernels {copy, scale, add, triad} × threads {4, 8, 16} ×
configurations {bonding-disaggregated, single-disaggregated,
interleaved}, against the 12.5 GiB/s single-channel theoretical maximum.

Shape claims asserted:
* single-disaggregated ≈ 10 GiB/s at 4 threads, near the 12.5 GiB/s
  ceiling at 8 threads, slightly lower at 16 (saturation);
* bonding ≈ +30 % over single (capped by the 16 GiB/s C1 ceiling, not 2×);
* interleaved beats both disaggregated configurations everywhere.
"""

import pytest
from conftest import print_table, save_results, sweep_payload

from repro.mem import GIB
from repro.testbed import MemoryConfigKind, make_environment
from repro.workloads import StreamKernel, StreamModel

CONFIGS = (
    MemoryConfigKind.BONDING_DISAGGREGATED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
    MemoryConfigKind.INTERLEAVED,
)
THREADS = (4, 8, 16)


def compute_payload(threads=THREADS):
    """Sweep target: sustained bandwidth for every series point."""
    results = {}
    for kind in CONFIGS:
        model = StreamModel(make_environment(kind))
        for kernel in StreamKernel:
            for count in threads:
                bandwidth = model.sustained_bandwidth(kernel, count)
                results[f"{kind.value}/{kernel.label}/{count}"] = bandwidth
    return results


def test_fig5_stream(once):
    results = once(sweep_payload, __file__, threads=THREADS)

    rows = []
    for threads in THREADS:
        for kernel in StreamKernel:
            rows.append(
                (
                    threads,
                    kernel.label,
                    *(
                        f"{results[f'{kind.value}/{kernel.label}/{threads}'] / GIB:.2f}"
                        for kind in CONFIGS
                    ),
                )
            )
    print_table(
        "Fig. 5 — STREAM GiB/s (theoretical single-channel max 12.5)",
        ["threads", "kernel", "bonding", "single", "interleaved"],
        rows,
    )
    save_results(
        "fig5",
        {key: bandwidth / GIB for key, bandwidth in results.items()},
    )

    single = lambda k, t: results[f"single-disaggregated/{k}/{t}"]
    bonding = lambda k, t: results[f"bonding-disaggregated/{k}/{t}"]
    inter = lambda k, t: results[f"interleaved/{k}/{t}"]

    # "~10 GiB/s with 4 threads, close to the theoretical maximum of
    # 12.5 GiB/s when using 8 threads" (§VI-C).
    assert 8.5 * GIB <= single("copy", 4) <= 11.5 * GIB
    assert 10.5 * GIB <= single("copy", 8) <= 12.6 * GIB
    # Saturation droop past the knee.
    assert single("copy", 16) <= single("copy", 8)
    # "Overall we measure a ~30% improvement" for bonding; far from 2x.
    for kernel in ("copy", "triad"):
        gain = bonding(kernel, 16) / single(kernel, 16)
        assert 1.15 <= gain <= 1.45, (kernel, gain)
    # Interleaved outperforms all other configurations (§VI-C).
    for kernel in StreamKernel:
        for threads in THREADS:
            assert inter(kernel.label, threads) >= single(kernel.label, threads)
            assert inter(kernel.label, threads) >= bonding(kernel.label, threads)
