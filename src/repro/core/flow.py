"""Active thymesisflow bookkeeping.

"The architecture logically groups all transactions (and their
responses) in-transit between a given compute and memory-stealing
endpoint, and belonging to a specific section, as an *active
thymesisflow*. Each active thymesisflow is associated with a unique
network identifier." (§IV-A1)

The network identifier is stamped into transaction headers by the RMMU
and consumed by the routing layer; it also carries the bonding mode
in-band ("the bonding mode is enabled in-band by appropriate transaction
header network identifiers on a per active thymesisflow basis",
§IV-A3). We model that by reserving the top bit of the identifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ActiveFlow", "FlowTable", "FlowError", "BONDING_FLAG"]

#: In-band bonding flag carried in the network identifier.
BONDING_FLAG = 1 << 15

#: Network ids are 15-bit values (bit 15 carries the bonding mode).
MAX_NETWORK_ID = BONDING_FLAG - 1


class FlowError(RuntimeError):
    """Flow-table exhaustion or inconsistent flow configuration."""


@dataclass
class ActiveFlow:
    """One active thymesisflow: a (compute, donor, section) association."""

    network_id: int
    compute_node: str
    memory_node: str
    section_index: int
    bonded: bool = False
    channels: Tuple[int, ...] = (0,)

    @property
    def wire_network_id(self) -> int:
        """The identifier as it appears in transaction headers."""
        return self.network_id | (BONDING_FLAG if self.bonded else 0)

    def __post_init__(self):
        if not 0 <= self.network_id <= MAX_NETWORK_ID:
            raise FlowError(
                f"network id {self.network_id} out of range "
                f"[0, {MAX_NETWORK_ID}]"
            )
        if not self.channels:
            raise FlowError("flow must use at least one channel")
        if self.bonded and len(self.channels) < 2:
            raise FlowError("bonded flow needs >= 2 channels")


def is_bonded_wire_id(wire_network_id: int) -> bool:
    """Decode the in-band bonding flag from a header identifier."""
    return bool(wire_network_id & BONDING_FLAG)


def base_network_id(wire_network_id: int) -> int:
    return wire_network_id & MAX_NETWORK_ID


class FlowTable:
    """Allocates network identifiers and tracks active flows."""

    def __init__(self, capacity: int = 1024):
        if not 1 <= capacity <= MAX_NETWORK_ID + 1:
            raise FlowError(f"capacity out of range: {capacity}")
        self.capacity = capacity
        self._flows: Dict[int, ActiveFlow] = {}
        self._next_id = 0

    def allocate(
        self,
        compute_node: str,
        memory_node: str,
        section_index: int,
        channels: Tuple[int, ...] = (0,),
        bonded: bool = False,
    ) -> ActiveFlow:
        if len(self._flows) >= self.capacity:
            raise FlowError(f"flow table full ({self.capacity} flows)")
        network_id = self._find_free_id()
        flow = ActiveFlow(
            network_id=network_id,
            compute_node=compute_node,
            memory_node=memory_node,
            section_index=section_index,
            bonded=bonded,
            channels=tuple(channels),
        )
        self._flows[network_id] = flow
        return flow

    def release(self, network_id: int) -> ActiveFlow:
        try:
            return self._flows.pop(network_id)
        except KeyError:
            raise FlowError(f"no active flow with id {network_id}") from None

    def lookup(self, network_id: int) -> ActiveFlow:
        try:
            return self._flows[base_network_id(network_id)]
        except KeyError:
            raise FlowError(
                f"no active flow with id {base_network_id(network_id)}"
            ) from None

    def flows(self) -> List[ActiveFlow]:
        return [self._flows[k] for k in sorted(self._flows)]

    def flows_between(
        self, compute_node: str, memory_node: str
    ) -> List[ActiveFlow]:
        return [
            flow
            for flow in self.flows()
            if flow.compute_node == compute_node
            and flow.memory_node == memory_node
        ]

    def __len__(self) -> int:
        return len(self._flows)

    def _find_free_id(self) -> int:
        for _ in range(self.capacity):
            candidate = self._next_id
            self._next_id = (self._next_id + 1) % self.capacity
            if candidate not in self._flows:
                return candidate
        raise FlowError("no free network identifiers")
