"""Importable ``py:`` sweep targets used by the sweep-engine tests."""


def seeded_value(scale: int, seed: int = 0) -> dict:
    """Echo back the kwargs the engine resolved for this spec."""
    return {"seed": seed, "scale": scale}
