"""Fault campaigns, write journaling, and deterministic chaos scenarios.

The resilience layer sits on top of the unified testbed surface
(:class:`~repro.testbed.base.TestbedProtocol`): campaigns schedule
macro-faults (link kill/flap, brownout, lender crash) against a host's
fault domain, :class:`ResilientBuffer` journals writes so failover can
replay them byte-for-byte, and the scenarios in
:mod:`repro.resilience.scenarios` tie both to the
:class:`~repro.control.health.HealthMonitor` into end-to-end,
seed-deterministic recovery runs (also exposed as
``python -m repro chaos``).
"""

from .campaigns import (
    CAMPAIGNS,
    Brownout,
    FaultCampaign,
    LenderCrash,
    LinkFlap,
    LinkKill,
    UnknownCampaignError,
    ensure_injector,
    make_campaign,
    make_rest_fault_hook,
)
from .journal import ResilientBuffer, WriteJournal
from .scenarios import SCENARIOS, run_scenario

__all__ = [
    "FaultCampaign",
    "LinkKill",
    "LinkFlap",
    "Brownout",
    "LenderCrash",
    "UnknownCampaignError",
    "CAMPAIGNS",
    "make_campaign",
    "ensure_injector",
    "make_rest_fault_hook",
    "WriteJournal",
    "ResilientBuffer",
    "SCENARIOS",
    "run_scenario",
]
