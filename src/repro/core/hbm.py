"""HBM caching layer at the compute endpoint — paper §VII future work.

"Remote memory access experience can be further improved … by the
introduction of an appropriate caching layer at the hardware-level
(e.g. using HBM intermediate memory as cache)."

The cache sits inside the compute endpoint, in front of the RMMU:

* **reads** that hit serve from on-card HBM at ~tens of ns instead of
  the ~1 µs network round trip;
* **reads** that miss are forwarded remotely and fill the cache;
* **writes** are write-through with allocate — the donor copy stays
  authoritative (the stealing host may reclaim memory at detach time),
  so victims are always clean and eviction costs nothing on the wire.

The cache is *functional*: it stores real line data, so every
correctness test exercises it end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..mem.address import CACHELINE_BYTES, MIB
from ..mem.cache import CacheConfig, SetAssociativeCache

__all__ = ["HbmCacheConfig", "HbmCache"]


@dataclass(frozen=True)
class HbmCacheConfig:
    """Geometry + timing of the on-card HBM cache."""

    size_bytes: int = 64 * MIB
    ways: int = 8
    hit_latency_s: float = 30e-9  #: HBM2 access through the FPGA stack

    def __post_init__(self):
        lines = self.size_bytes // CACHELINE_BYTES
        if lines < self.ways or lines % self.ways:
            raise ValueError(
                f"invalid HBM geometry: {lines} lines / {self.ways} ways"
            )


class HbmCache:
    """Functional line cache over device-internal addresses."""

    def __init__(self, config: Optional[HbmCacheConfig] = None,
                 name: str = "hbm"):
        self.config = config or HbmCacheConfig()
        self.name = name
        self._tags = SetAssociativeCache(
            CacheConfig(
                name=f"{name}.tags",
                size_bytes=self.config.size_bytes,
                ways=self.config.ways,
                line_bytes=CACHELINE_BYTES,
                hit_latency_s=self.config.hit_latency_s,
            )
        )
        self._data: Dict[int, bytes] = {}
        self.read_hits = 0
        self.read_misses = 0
        self.write_throughs = 0
        self.invalidations = 0

    @staticmethod
    def _line(address: int) -> int:
        return (address // CACHELINE_BYTES) * CACHELINE_BYTES

    # -- read path ----------------------------------------------------------------
    def lookup(self, address: int, size: int) -> Optional[bytes]:
        """Return cached data covering the access, or None on miss.

        Only whole-line, line-aligned accesses are cacheable (exactly
        what the POWER9 ld/st datapath emits); anything else bypasses.
        """
        line = self._line(address)
        if address != line or size != CACHELINE_BYTES:
            return None
        if line in self._data:
            # Touch for LRU bookkeeping; a present line always hits.
            self._tags.access(line)
            self.read_hits += 1
            return self._data[line]
        self.read_misses += 1
        return None

    def fill(self, address: int, data: bytes) -> None:
        """Install a line after a remote read completed."""
        line = self._line(address)
        if address != line or len(data) != CACHELINE_BYTES:
            return
        _hit, victim = self._tags.access_detailed(line)
        if victim is not None:
            # Write-through policy: victims are clean; just drop them.
            self._data.pop(victim, None)
        self._data[line] = data

    # -- write path ------------------------------------------------------------------
    def write_through(self, address: int, data: bytes) -> None:
        """Update the cached copy (allocate on write); donor still written."""
        line = self._line(address)
        if address != line or len(data) != CACHELINE_BYTES:
            # Partial-line writes just invalidate to stay coherent.
            self._data.pop(line, None)
            self._tags.invalidate(line)
            self.invalidations += 1
            return
        self.write_throughs += 1
        _hit, victim = self._tags.access_detailed(line, write=True)
        if victim is not None:
            self._data.pop(victim, None)
        self._data[line] = data

    # -- management -------------------------------------------------------------------
    def invalidate_range(self, start: int, size: int) -> int:
        """Drop all lines in a detached section; returns lines dropped."""
        dropped = 0
        line = self._line(start)
        end = start + size
        while line < end:
            if self._data.pop(line, None) is not None:
                self._tags.invalidate(line)
                dropped += 1
            line += CACHELINE_BYTES
        self.invalidations += dropped
        return dropped

    @property
    def resident_lines(self) -> int:
        return len(self._data)

    @property
    def hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0
