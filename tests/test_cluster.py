"""Tests for the Fig. 1 motivation study (trace, models, replay)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    AllocationFailure,
    DisaggregatedDatacentre,
    FixedDatacentre,
    TraceConfig,
    ratio_span_orders_of_magnitude,
    replay_trace,
    run_fig1_experiment,
    synthesize_trace,
)
from repro.cluster.trace import EventKind, TaskRequest


def task(task_id=0, cpu=0.1, memory=0.1):
    return TaskRequest(task_id, cpu, memory, submit_time=0.0, duration=1.0)


class TestTrace:
    def test_events_sorted_and_paired(self):
        events = synthesize_trace(TraceConfig(tasks=200))
        times = [e.time for e in events]
        assert times == sorted(times)
        submits = sum(1 for e in events if e.kind is EventKind.SUBMIT)
        assert submits == 200
        assert len(events) == 400

    def test_finish_after_submit(self):
        events = synthesize_trace(TraceConfig(tasks=100))
        submit_time = {}
        for event in events:
            if event.kind is EventKind.SUBMIT:
                submit_time[event.task.task_id] = event.time
            else:
                assert event.time > submit_time[event.task.task_id]

    def test_deterministic(self):
        a = synthesize_trace(TraceConfig(tasks=100, seed=5))
        b = synthesize_trace(TraceConfig(tasks=100, seed=5))
        assert a == b

    def test_requests_within_machine_bounds(self):
        events = synthesize_trace(TraceConfig(tasks=500))
        for event in events:
            assert 0 < event.task.cpu <= 1.0
            assert 0 < event.task.memory <= 1.0

    def test_ratio_spans_three_orders_of_magnitude(self):
        """§I: memory/CPU demand ratios span 3 orders of magnitude."""
        events = synthesize_trace(TraceConfig(tasks=5000))
        span = ratio_span_orders_of_magnitude(iter(events))
        assert span >= 2.5


class TestFixedDatacentre:
    def test_allocate_reduces_free(self):
        dc = FixedDatacentre(4)
        dc.allocate(task(cpu=0.5, memory=0.25))
        assert dc.cpu_free.sum() == pytest.approx(3.5)
        assert dc.mem_free.sum() == pytest.approx(3.75)

    def test_release_restores(self):
        dc = FixedDatacentre(4)
        placement = dc.allocate(task(cpu=0.5, memory=0.25))
        dc.release(placement)
        assert dc.cpu_free.sum() == pytest.approx(4.0)
        assert dc.servers_off() == 4

    def test_best_fit_packs_tightly(self):
        dc = FixedDatacentre(4)
        dc.allocate(task(0, cpu=0.6, memory=0.6))
        # Second task fits next to the first; best fit should reuse it.
        dc.allocate(task(1, cpu=0.3, memory=0.3))
        assert dc.servers_off() == 3

    def test_infeasible_raises(self):
        dc = FixedDatacentre(1)
        dc.allocate(task(0, cpu=0.9, memory=0.9))
        with pytest.raises(AllocationFailure):
            dc.allocate(task(1, cpu=0.5, memory=0.1))

    def test_stranding_metrics(self):
        dc = FixedDatacentre(2)
        dc.allocate(task(0, cpu=0.2, memory=0.9))
        # Server 0 on: 0.8 CPU stranded, 0.1 memory stranded.
        assert dc.stranded_cpu() == pytest.approx(0.8)
        assert dc.stranded_memory() == pytest.approx(0.1)
        assert dc.servers_off() == 1


class TestDisaggregatedDatacentre:
    def test_memory_can_split_across_modules(self):
        dc = DisaggregatedDatacentre(2, 2, links_per_module=16)
        dc.allocate(task(0, cpu=0.1, memory=0.9))
        dc.allocate(task(1, cpu=0.1, memory=0.9))
        # 0.1 free on each module: a 0.15 request must span both.
        placement = dc.allocate(task(2, cpu=0.1, memory=0.15))
        assert len(placement.memory_shares) == 2

    def test_split_respects_link_budget(self):
        dc = DisaggregatedDatacentre(1, 4, links_per_module=2)
        dc.cpu_free[0] = 1.0
        # Fill modules to force a >2-way split which must fail.
        for index in range(4):
            dc.mem_free[index] = 0.2
        with pytest.raises(AllocationFailure):
            dc.allocate(task(0, cpu=0.1, memory=0.7))

    def test_release_restores_links(self):
        dc = DisaggregatedDatacentre(2, 2, links_per_module=4)
        placement = dc.allocate(task(0, cpu=0.5, memory=0.5))
        used_links = len(placement.memory_shares)
        assert dc.compute_links_free[placement.compute_unit] == 4 - used_links
        dc.release(placement)
        assert (dc.compute_links_free == 4).all()
        assert (dc.memory_links_free == 4).all()

    def test_off_counts(self):
        dc = DisaggregatedDatacentre(4, 4)
        dc.allocate(task(0, cpu=0.5, memory=0.5))
        assert dc.compute_off() == 3
        assert dc.memory_off() == 3

    def test_conservation_after_churn(self):
        dc = DisaggregatedDatacentre(8, 8)
        placements = [
            dc.allocate(task(i, cpu=0.1 + 0.05 * (i % 5), memory=0.2))
            for i in range(20)
        ]
        for placement in placements:
            dc.release(placement)
        assert dc.cpu_free.sum() == pytest.approx(8.0)
        assert dc.mem_free.sum() == pytest.approx(8.0)
        assert dc.compute_off() == 8 and dc.memory_off() == 8

    @settings(max_examples=25, deadline=None)
    @given(
        tasks=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=0.5),
                st.floats(min_value=0.01, max_value=0.9),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_property_no_negative_capacity(self, tasks):
        dc = DisaggregatedDatacentre(6, 6)
        placements = []
        for index, (cpu, memory) in enumerate(tasks):
            try:
                placements.append(dc.allocate(task(index, cpu, memory)))
            except AllocationFailure:
                pass
        assert (dc.cpu_free >= -1e-9).all()
        assert (dc.mem_free >= -1e-9).all()
        assert (dc.compute_links_free >= 0).all()
        for placement in placements:
            total = sum(amount for _u, amount in placement.memory_shares)
            assert total == pytest.approx(placement.task.memory)


class TestFig1Experiment:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.cluster import scaled_trace_config

        return run_fig1_experiment(scaled_trace_config(units=160), units=160)

    def test_disaggregation_reduces_fragmentation(self, reports):
        fixed, disagg = reports["fixed"], reports["disaggregated"]
        assert disagg.cpu_fragmentation_pct < fixed.cpu_fragmentation_pct
        assert disagg.memory_fragmentation_pct < fixed.memory_fragmentation_pct

    def test_fragmentation_reduction_factor_matches_paper(self, reports):
        """Fig. 1 ratios: CPU 16→3.86 (≈4.1×), MEM 29.5→9.2 (≈3.2×)."""
        fixed, disagg = reports["fixed"], reports["disaggregated"]
        cpu_factor = fixed.cpu_fragmentation_pct / disagg.cpu_fragmentation_pct
        mem_factor = (
            fixed.memory_fragmentation_pct / disagg.memory_fragmentation_pct
        )
        assert 2.0 <= cpu_factor <= 8.0
        assert 2.0 <= mem_factor <= 6.0

    def test_memory_fragments_more_than_cpu(self, reports):
        for report in reports.values():
            assert (
                report.memory_fragmentation_pct > report.cpu_fragmentation_pct
            )

    def test_disaggregation_powers_off_more_memory(self, reports):
        fixed, disagg = reports["fixed"], reports["disaggregated"]
        assert disagg.memory_off_pct > fixed.memory_off_pct + 5.0

    def test_replay_is_deterministic(self):
        from repro.cluster import scaled_trace_config

        config = scaled_trace_config(units=80, tasks=2000)
        a = run_fig1_experiment(config, units=80)
        b = run_fig1_experiment(config, units=80)
        assert a["fixed"].as_row() == b["fixed"].as_row()
        assert a["disaggregated"].as_row() == b["disaggregated"].as_row()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_trace(FixedDatacentre(4), [])


class TestDownsampleTrace:
    """Deterministic task-level thinning (the replay --sample knob)."""

    def trace(self, tasks=400, seed=5):
        return synthesize_trace(TraceConfig(tasks=tasks, seed=seed))

    def test_fraction_one_is_identity(self):
        from repro.cluster import downsample_trace

        events = self.trace()
        assert downsample_trace(events, 1.0) == events

    def test_fraction_bounds_enforced(self):
        from repro.cluster import downsample_trace

        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                downsample_trace(self.trace(tasks=10), bad)

    def test_deterministic_under_fixed_seed(self):
        from repro.cluster import downsample_trace

        events = self.trace()
        first = downsample_trace(events, 0.4, seed=9)
        second = downsample_trace(events, 0.4, seed=9)
        assert first == second
        other_seed = downsample_trace(events, 0.4, seed=10)
        assert {e.task.task_id for e in other_seed} != \
            {e.task.task_id for e in first}

    def test_keeps_submit_finish_pairs(self):
        from collections import Counter

        from repro.cluster import downsample_trace

        sampled = downsample_trace(self.trace(), 0.3, seed=2)
        per_task = Counter(e.task.task_id for e in sampled)
        assert per_task and set(per_task.values()) == {2}

    def test_larger_fraction_is_superset(self):
        """Nested subsets: sweeping --sample only adds tasks."""
        from repro.cluster import downsample_trace

        events = self.trace()
        small = {e.task.task_id
                 for e in downsample_trace(events, 0.2, seed=3)}
        large = {e.task.task_id
                 for e in downsample_trace(events, 0.6, seed=3)}
        assert small <= large
        assert len(small) < len(large) < 400

    def test_kept_fraction_tracks_request(self):
        from repro.cluster import downsample_trace

        events = self.trace(tasks=2000)
        kept = downsample_trace(events, 0.5, seed=1)
        assert 0.4 < len(kept) / len(events) < 0.6


class TestTraceWindow:
    def test_half_open_interval(self):
        from repro.cluster import trace_window

        events = synthesize_trace(TraceConfig(tasks=50, seed=3))
        lo, hi = events[10].time, events[30].time
        window = trace_window(events, lo, hi)
        assert window and all(lo <= e.time < hi for e in window)
        assert events[10] in window and events[30] not in window

    def test_empty_windows_return_empty(self):
        from repro.cluster import trace_window

        events = synthesize_trace(TraceConfig(tasks=20, seed=3))
        assert trace_window(events, 5.0, 5.0) == []      # zero width
        assert trace_window(events, 9.0, 2.0) == []      # inverted
        assert trace_window([], 0.0, 100.0) == []        # no events
        horizon = events[-1].time
        assert trace_window(events, horizon + 1, horizon + 2) == []


class TestCapacityClamping:
    """Requests are machine-normalized: draws above 1.0 clamp to 1.0
    and stay valid, they do not escape the unit interval."""

    def test_extreme_draws_clamp_to_unit_capacity(self):
        config = TraceConfig(tasks=300, seed=13,
                             cpu_log_mean=1.5, cpu_log_sigma=1.0,
                             ratio_log_mean=1.5, ratio_log_sigma=1.0)
        events = synthesize_trace(config)
        cpus = [e.task.cpu for e in events]
        mems = [e.task.memory for e in events]
        assert max(cpus) == 1.0 and max(mems) == 1.0
        assert all(0 < v <= 1.0 for v in cpus + mems)

    def test_clamped_memory_never_exceeds_cpu_times_ratio(self):
        config = TraceConfig(tasks=100, seed=13,
                             ratio_log_mean=3.0, ratio_log_sigma=0.5)
        for event in synthesize_trace(config):
            assert event.task.memory <= 1.0
