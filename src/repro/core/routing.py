"""Transaction routing layer — paper §IV-A3.

Sits between the endpoint attachment modules and the per-channel LLCs.
Each transaction is handled independently based on the network
identifier in its header, so any number of endpoints can be connected
concurrently. The layer implements **channel bonding**: a flow whose
wire identifier carries the in-band bonding flag is sprayed over its
configured set of physical channels; channels are freely shared between
bonded and unbonded flows.

Beyond the paper's plain round-robin, routes accept per-channel
*weights* (smooth weighted round-robin) — the "more sophisticated
channel sharing approaches that go beyond simple round-robin … able to
offer bandwidth allocation and QoS capabilities" §IV-A3 anticipates.
Equal weights degenerate to the paper's round-robin exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..obs import trace as _trace
from ..opencapi.transactions import MemTransaction, split_burst
from ..sim.engine import Simulator
from .flow import base_network_id, is_bonded_wire_id
from .llc import LlcEndpoint

__all__ = ["RoutingLayer", "RoutingError"]

#: Receive handler signature: (transaction, arrival channel index).
RxHandler = Callable[[MemTransaction, int], None]


class RoutingError(RuntimeError):
    """Unroutable transaction: unknown network id or channel."""


class RoutingLayer:
    """Per-device routing/forwarding with round-robin channel bonding."""

    def __init__(self, sim: Simulator, name: str = "routing"):
        self.sim = sim
        self.name = name
        self._channels: List[LlcEndpoint] = []
        self._routes: Dict[int, Tuple[int, ...]] = {}
        self._weights: Dict[int, Tuple[int, ...]] = {}
        self._wrr_current: Dict[int, List[int]] = {}
        self._rx_handler: Optional[RxHandler] = None
        self.forwarded = 0
        self.responses_returned = 0
        self.per_channel_tx: List[int] = []

    # -- wiring --------------------------------------------------------------------
    def add_channel(self, llc: LlcEndpoint) -> int:
        """Register one network channel; returns its index."""
        index = len(self._channels)
        self._channels.append(llc)
        self.per_channel_tx.append(0)
        self.sim.process(self._drain(llc, index), name=f"{self.name}.rx{index}")
        return index

    @property
    def channel_count(self) -> int:
        return len(self._channels)

    def channel(self, index: int) -> LlcEndpoint:
        try:
            return self._channels[index]
        except IndexError:
            raise RoutingError(
                f"{self.name}: no channel {index} "
                f"(have {len(self._channels)})"
            ) from None

    def set_rx_handler(self, handler: RxHandler) -> None:
        """The endpoint attachment module's ingress callback."""
        self._rx_handler = handler

    # -- route configuration (programmed by the agent) ------------------------------
    def install_route(
        self,
        network_id: int,
        channels: Sequence[int],
        weights: Optional[Sequence[int]] = None,
    ) -> None:
        """Program a route; optional per-channel weights (QoS shaping)."""
        if not channels:
            raise RoutingError("route needs at least one channel")
        for index in channels:
            self.channel(index)  # validates existence
        if weights is None:
            weights = [1] * len(channels)
        if len(weights) != len(channels):
            raise RoutingError(
                f"{len(weights)} weights for {len(channels)} channels"
            )
        if any(w < 1 for w in weights):
            raise RoutingError("weights must be >= 1")
        self._routes[network_id] = tuple(channels)
        self._weights[network_id] = tuple(weights)
        self._wrr_current[network_id] = [0] * len(channels)

    def remove_route(self, network_id: int) -> None:
        self._routes.pop(network_id, None)
        self._weights.pop(network_id, None)
        self._wrr_current.pop(network_id, None)

    def route_for(self, network_id: int) -> Tuple[int, ...]:
        try:
            return self._routes[base_network_id(network_id)]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no route for network id "
                f"{base_network_id(network_id)}"
            ) from None

    # -- forwarding ----------------------------------------------------------------
    def select_channel(self, wire_network_id: int) -> int:
        """Pick the physical channel for one transaction header.

        Smooth weighted round-robin (the nginx algorithm): with equal
        weights this is exactly the paper's round-robin; unequal weights
        apportion the flow's transactions proportionally.
        """
        base = base_network_id(wire_network_id)
        channels = self.route_for(base)
        if not (is_bonded_wire_id(wire_network_id) and len(channels) > 1):
            return channels[0]
        weights = self._weights[base]
        current = self._wrr_current[base]
        total = sum(weights)
        for index in range(len(channels)):
            current[index] += weights[index]
        best = max(range(len(channels)), key=lambda i: current[i])
        current[best] -= total
        return channels[best]

    def forward(self, txn: MemTransaction):
        """Waitable forward of a request toward its remote endpoint."""
        if txn.network_id is None:
            raise RoutingError(f"{self.name}: transaction has no network id")
        if _trace.ENABLED:
            _trace.txn_mark(
                self.sim.now, txn.base_txn_id, "routing.forward", self.name
            )
        channels = self.route_for(txn.network_id)
        if (
            txn.burst > 1
            and is_bonded_wire_id(txn.network_id)
            and len(channels) > 1
        ):
            # Bonded flows spray per cacheline; split the burst so the
            # round-robin channel sequence matches the per-line
            # formulation exactly.
            return self.sim.process(
                self._forward_burst_bonded(txn), name=f"{self.name}.fwd"
            )
        index = self.select_channel(txn.network_id)
        self.forwarded += txn.burst
        self.per_channel_tx[index] += txn.burst
        return self.channel(index).submit(txn)

    def _forward_burst_bonded(self, txn: MemTransaction) -> Generator:
        pending = []
        for line in range(txn.burst):
            piece = split_burst(txn, line, 1)
            index = self.select_channel(txn.network_id)
            self.forwarded += 1
            self.per_channel_tx[index] += 1
            pending.append(self.channel(index).submit(piece))
        for waitable in pending:
            yield waitable

    def forward_response(self, response: MemTransaction):
        """Responses return "using the channel they arrived from"."""
        if response.arrival_channel is None:
            raise RoutingError(
                f"{self.name}: response without arrival channel"
            )
        if _trace.ENABLED:
            _trace.txn_mark(
                self.sim.now,
                response.base_txn_id,
                "routing.response",
                self.name,
            )
        self.responses_returned += response.burst
        index = response.arrival_channel
        self.per_channel_tx[index] += response.burst
        return self.channel(index).submit(response)

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector: forwarded counts and per-channel distribution."""

        def collect(reg):
            base = dict(routing=self.name, **labels)
            reg.gauge("routing.forwarded", **base).set(self.forwarded)
            reg.gauge("routing.responses_returned", **base).set(
                self.responses_returned
            )
            for index, count in enumerate(self.per_channel_tx):
                reg.gauge(
                    "routing.channel_tx", channel=str(index), **base
                ).set(count)

        registry.add_collector(collect)

    # -- ingress --------------------------------------------------------------------
    def _drain(self, llc: LlcEndpoint, index: int) -> Generator:
        while True:
            txn = yield llc.receive()
            if self._rx_handler is None:
                raise RoutingError(
                    f"{self.name}: transaction arrived with no rx handler"
                )
            txn.arrival_channel = index
            self._rx_handler(txn, index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoutingLayer({self.name!r}, channels={len(self._channels)}, "
            f"routes={len(self._routes)})"
        )
