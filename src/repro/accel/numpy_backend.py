"""numpy batch implementation of the accel kernels.

Arrays pay a fixed construction cost, so every kernel keeps the scalar
reference path for small batches (``VECTOR_MIN``) and switches to
vectorized numpy only where it wins. Above the threshold the array
formulation performs the same IEEE-754 float operations in the same
association order as the reference (``np.cumsum`` accumulates
sequentially; elementwise ops match scalar ops), so results stay
bit-identical — the property ``tests/test_accel_equivalence.py`` and
``tests/test_accel_backends.py`` enforce.

A kernel whose per-element work is cheaper than the list<->array
round-trips has no crossover at all; such kernels (currently
``bank_service_windows``) stay on the reference path unconditionally
rather than carrying a threshold that never wins.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from . import python_backend as _reference

NAME = "numpy"

#: Batch size below which the scalar reference path is faster than
#: paying array construction overhead. Measured crossover for the
#: list-in/list-out kernels sits near 256 elements: the fixed cost of
#: array allocation plus ``tolist`` is ~8 us, i.e. ~100 scalar loop
#: iterations.
VECTOR_MIN = 256


def numpy_version() -> str:
    return np.__version__


def serialization_schedule(
    start_s: float, sizes_bytes: Sequence[int], payload_bits_per_s: float
) -> List[float]:
    """Vectorized wire-occupancy boundaries (see reference docstring)."""
    if len(sizes_bytes) < VECTOR_MIN:
        return _reference.serialization_schedule(
            start_s, sizes_bytes, payload_bits_per_s
        )
    bounds = np.empty(len(sizes_bytes) + 1, dtype=np.float64)
    bounds[0] = start_s
    times = np.asarray(sizes_bytes, dtype=np.float64)
    # size * 8 / rate, elementwise — identical scalar ops per frame.
    np.multiply(times, 8.0, out=bounds[1:])
    np.divide(bounds[1:], payload_bits_per_s, out=bounds[1:])
    # cumsum accumulates left to right: ((start + t0) + t1) + ... —
    # the same association order as the reference loop.
    np.cumsum(bounds, out=bounds)
    return bounds.tolist()


#: Base line count below which vectorization cannot pay for the digest
#: kernel (typical single-frame digests are a handful of lines).
DIGEST_MIN = 256


def frame_digest(
    identity: int, entries: Iterable[Tuple[int, int, int]]
) -> bytes:
    """Vectorized per-line digest signatures (see reference docstring).

    Vectorizes *across* entries: per-line txn ids are expanded with
    ``np.repeat`` plus a ramp, so one batch of integer ops covers every
    burst at once. Integer math — ordering cannot change the result.
    """
    if type(entries) is not list:
        entries = list(entries)
    count = len(entries)
    # Cheap Python-side total first (plain loop: no generator frame —
    # typical single-frame digests are a handful of lines and must not
    # pay any per-call setup cost). Vectorization pays only when bursts
    # are long — array construction costs ~3 fromiter elements per
    # *entry* — so entry-heavy digests (mostly burst == 1) stay on the
    # reference path too.
    total_lines = 0
    for entry in entries:
        total_lines += entry[2]
    if total_lines < DIGEST_MIN + 4 * count:
        return _reference.frame_digest(identity, entries)
    bursts = np.fromiter(
        (entry[2] for entry in entries), dtype=np.int64, count=count
    )
    txn_ids = np.fromiter(
        (entry[0] for entry in entries), dtype=np.int64, count=count
    )
    commands = np.fromiter(
        (entry[1] for entry in entries), dtype=np.int64, count=count
    )
    # Line offsets within each entry: a global ramp minus each entry's
    # starting position, e.g. bursts [2, 3] -> [0, 1, 0, 1, 2].
    entry_starts = np.empty(count, dtype=np.int64)
    entry_starts[0] = 0
    np.cumsum(bursts[:-1], out=entry_starts[1:])
    offsets = np.arange(total_lines, dtype=np.int64)
    offsets -= np.repeat(entry_starts, bursts)
    # (txn_id + line) * 131 + command, for every line of every entry.
    signature = np.repeat(txn_ids, bursts)
    signature += offsets
    signature *= 131
    signature += np.repeat(commands, bursts)
    header = struct.pack("<Q", identity & 0xFFFFFFFFFFFFFFFF)
    return header + signature.astype("<i8", copy=False).tobytes()


#: Sample count below which Python's timsort beats array round-trips.
SORT_MIN = 1024


def sort_values(values: Sequence[float]) -> List[float]:
    """Ascending sort of float samples (see reference docstring).

    A sort is a permutation — no arithmetic — so the numpy result is
    the reference result by construction.
    """
    if len(values) < SORT_MIN:
        return _reference.sort_values(values)
    return np.sort(np.asarray(values, dtype=np.float64)).tolist()


#: Unknown count below which the scalar elimination beats the per-pivot
#: array slicing overhead. DSE effects models with main effects only
#: sit below this; models with pairwise interactions over wide factor
#: spaces cross it.
SOLVE_MIN = 16


def solve_linear_system(
    matrix: Sequence[Sequence[float]], rhs: Sequence[float]
) -> List[float]:
    """Vectorized Gaussian elimination (see reference docstring).

    The inner row update is elementwise (``row[j] - factor * base[j]``
    for each j independently), so vectorizing across the trailing rows
    performs the identical IEEE-754 ops. Zero factors are masked out —
    the reference skips those rows entirely, and updating them anyway
    could flip signed zeros. Pivot choice (first maximal magnitude) and
    the scalar back-substitution match the reference order exactly.
    """
    n = len(rhs)
    if n < SOLVE_MIN:
        return _reference.solve_linear_system(matrix, rhs)
    a = np.empty((n, n + 1), dtype=np.float64)
    a[:, :n] = np.asarray(matrix, dtype=np.float64)
    a[:, n] = np.asarray(rhs, dtype=np.float64)
    for k in range(n):
        column = np.abs(a[k:, k])
        pivot = k + int(np.argmax(column))  # first maximum, like the loop
        if column[pivot - k] == 0.0:
            raise ZeroDivisionError(f"singular system at column {k}")
        if pivot != k:
            a[[k, pivot], k:] = a[[pivot, k], k:]
        factors = a[k + 1:, k] / a[k, k]
        live = factors != 0.0
        if live.any():
            a[k + 1:, k:][live] -= factors[live, None] * a[k, k:]
    x = [0.0] * n
    rows = a.tolist()
    for k in range(n - 1, -1, -1):
        row = rows[k]
        acc = row[n]
        for j in range(k + 1, n):
            acc -= row[j] * x[j]
        x[k] = acc / row[k]
    return x


# bank_service_windows: the reference path wins at EVERY batch size, so
# this backend delegates unconditionally (a direct alias — the perf
# harness asserts the delegation by identity). The kernel does one
# float add and one int min per element; measured at batch 16Ki the
# list->array->list round-trips alone (~17 us asarray float + ~13 us
# tolist float per 16Ki) cost more than the whole reference listcomp
# (~21 us), so no numpy formulation of this kernel has a crossover.
# The other kernels above vectorize real per-element work (cumsum,
# digest arithmetic, sorting) and keep their thresholds.
bank_service_windows = _reference.bank_service_windows
