#!/usr/bin/env python3
"""Rack-scale disaggregation through an optical circuit switch (§VII).

The paper's outlook: "at the scale of one or a few racks, a circuit
switched optical network would be attractive." This example builds four
AC922 nodes behind one circuit switch and lets the control plane
compose memory across the rack — planning paths through the switch,
programming light paths, and paying the extra crossing in RTT.

Run:  python examples/rack_scale.py
"""

from repro.mem import MIB
from repro.testbed import RackTestbed


def main() -> None:
    print("Building a 4-node rack behind one circuit switch...")
    rack = RackTestbed(nodes=4)
    print(f"  switch ports: {len(rack.switch.ports)}, "
          f"2 channels per node\n")

    print("node0 borrows from node2; node1 borrows from node3 "
          "(disjoint circuits):")
    a = rack.attach("node0", 2 * MIB, memory_host="node2")
    b = rack.attach("node1", 2 * MIB, memory_host="node3")
    print(f"  live circuits: {rack.driver.circuits()}")

    for attachment, host in ((a, "node0"), (b, "node1")):
        window = rack.remote_window_range(attachment)
        node = rack.node(host)
        node.run_store(window.start, host.encode().ljust(128, b"\x00"))
        data = node.run_load(window.start)
        print(f"  {host}: remote roundtrip OK "
              f"({data.rstrip(bytes(1)).decode()!r} via switch)")

    for _ in range(16):
        rack.node("node0").run_load(rack.remote_window_range(a).start)
    rtt = rack.node("node0").device.compute.rtt.mean
    print(f"\nRTT through the switch: {rtt * 1e9:.0f} ns "
          "(back-to-back prototype: ~1030 ns; +2 optical crossings)")
    distance = rack.node("node0").kernel.topology.distance(
        0, a.plan.numa_node_id
    )
    print(f"NUMA distance encodes it: {distance} "
          "(back-to-back attachments get ~112)")

    print("\nReconfiguring the rack: node0 switches donor to node3...")
    rack.detach(a)
    c = rack.attach("node0", 2 * MIB, memory_host="node3")
    window = rack.remote_window_range(c)
    rack.node("node0").run_store(window.start, b"\x42" * 128)
    assert rack.node("node0").run_load(window.start) == b"\x42" * 128
    print(f"  circuits now: {rack.driver.circuits()}")
    print("  link bring-up resynchronized LLC frame ids; "
          "the new flow is clean")

    print(f"\nswitch stats: {rack.switch.frames_forwarded} frames "
          f"forwarded, {rack.switch.reconfigurations} reconfigurations")
    rack.detach(b)
    rack.detach(c)
    print("rack drained; all circuits released:",
          rack.driver.circuits() == [])


if __name__ == "__main__":
    main()
