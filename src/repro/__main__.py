"""Command line: regenerate paper figures, run the demo, trace a workload.

Usage::

    python -m repro list               # what can be regenerated
    python -m repro fig5               # one figure's series
    python -m repro all                # every figure
    python -m repro demo               # attach/detach walk-through
    python -m repro trace stream       # traced run + Chrome-trace artifacts
"""

from __future__ import annotations

import argparse
import os
import sys

from .figures import FIGURES, render


def _run_demo() -> None:
    from .mem import MIB
    from .obs import MetricsRegistry, RunSummary, summary_from_snapshot
    from .testbed import Testbed

    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(128))
    testbed.node0.run_store(window.start, payload)
    assert testbed.node0.run_load(window.start) == payload
    for _ in range(16):
        testbed.node0.run_load(window.start)
    rtt = testbed.node0.device.compute.rtt.mean
    testbed.detach(attachment)

    summary = RunSummary("repro demo — attach, store/load, detach")
    summary.section("attachment")
    summary.row("size", "4 MiB of node1 on node0")
    summary.row(
        "real-address window", f"[{window.start:#x}, {window.end:#x})"
    )
    summary.row("NUMA node", attachment.plan.numa_node_id)
    summary.section("datapath")
    summary.row("remote load/store", "roundtrip OK")
    summary.row("unloaded RTT", rtt * 1e9, "ns")
    summary.section("control plane")
    summary.row("teardown", "detached cleanly")
    print(summary.render())

    registry = MetricsRegistry()
    testbed.register_observability(registry)
    print()
    print(
        summary_from_snapshot(
            "end-of-run metrics",
            registry.snapshot(),
            prefixes=["bus", "endpoint", "llc", "dram"],
        ).render()
    )


# -- traced workloads ------------------------------------------------------------


def _trace_stream(nbytes: int):
    """STREAM-style bulk transfer: burst write + read-back over the wire."""
    from .mem import MIB
    from .osmodel import PagePolicy
    from .testbed import RemoteBuffer, Testbed

    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    buffer = RemoteBuffer.allocate(
        testbed.node0,
        nbytes,
        policy=PagePolicy.BIND,
        numa_nodes=[attachment.plan.numa_node_id],
        batched=True,
    )
    blob = bytes(range(256)) * (nbytes // 256)
    buffer.write(0, blob)
    assert buffer.read(0, nbytes) == blob
    buffer.free()
    return testbed


def _trace_pingpong(nbytes: int):
    """Per-cacheline load/store roundtrips (latency-bound)."""
    from .mem import MIB
    from .testbed import Testbed

    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(128))
    rounds = max(1, min(nbytes // 128, 64))
    for index in range(rounds):
        testbed.node0.run_store(window.start + index * 128, payload)
        testbed.node0.run_load(window.start + index * 128)
    return testbed


def _trace_fault(nbytes: int):
    """Forced frame drops on channel 0 exercising the LLC replay path."""
    from .mem import MIB
    from .net.faults import FaultInjector
    from .testbed import Testbed

    injector = FaultInjector()
    testbed = Testbed(fault_injectors={0: injector})
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(128))
    testbed.node0.run_store(window.start, payload)
    injector.force_drop_next(2)
    rounds = max(4, min(nbytes // 128, 32))
    for _ in range(rounds):
        testbed.node0.run_load(window.start)
    return testbed


_TRACE_WORKLOADS = {
    "stream": _trace_stream,
    "pingpong": _trace_pingpong,
    "fault": _trace_fault,
}


def _run_trace(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one workload with end-to-end tracing enabled and write "
            "the Chrome-trace JSON (Perfetto/chrome://tracing), the "
            "metrics snapshot JSON and a terminal summary."
        ),
    )
    parser.add_argument(
        "workload", choices=sorted(_TRACE_WORKLOADS), help="workload to trace"
    )
    parser.add_argument(
        "--bytes",
        type=int,
        default=128 * 1024,
        dest="nbytes",
        help="workload size in bytes (rounded down to 256 B, min 256)",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=1,
        help="trace 1 in N transactions (default: every transaction)",
    )
    parser.add_argument(
        "--out",
        default="trace-artifacts",
        help="output directory for the exported artifacts",
    )
    args = parser.parse_args(argv)
    nbytes = max(256, args.nbytes - args.nbytes % 256)

    from .obs import (
        MetricsRegistry,
        disable_tracing,
        enable_tracing,
        render_metrics_summary,
        write_chrome_trace,
        write_metrics_json,
    )

    os.makedirs(args.out, exist_ok=True)
    tracer = enable_tracing(sample_every=args.sample)
    try:
        testbed = _TRACE_WORKLOADS[args.workload](nbytes)
    finally:
        disable_tracing()
    registry = MetricsRegistry()
    testbed.register_observability(registry)

    trace_path = os.path.join(args.out, f"trace-{args.workload}.json")
    metrics_path = os.path.join(args.out, f"metrics-{args.workload}.json")
    write_chrome_trace(tracer, trace_path)
    write_metrics_json(registry, metrics_path)
    print(render_metrics_summary(registry, f"repro trace {args.workload}"))
    print()
    completed = len(tracer.completed())
    print(
        f"traced {len(tracer.transactions)} transactions "
        f"({completed} completed end-to-end, 1-in-{tracer.sample_every} "
        f"sampling)"
    )
    print(f"chrome trace : {trace_path}")
    print(f"metrics json : {metrics_path}")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The trace subcommand has its own options; dispatch before the
    # single-positional legacy parser sees (and rejects) them.
    if argv and argv[0] == "trace":
        return _run_trace(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "ThymesisFlow (MICRO 2020) reproduction: regenerate the "
            "paper's figures from the simulated stack."
        ),
    )
    parser.add_argument(
        "target",
        choices=sorted(FIGURES) + ["all", "list", "demo", "trace"],
        help="figure id, 'all', 'list', 'demo', or 'trace <workload>'",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        for name, fn in sorted(FIGURES.items()):
            print(f"{name:6s} {fn.__doc__.strip().splitlines()[0]}")
        return 0
    if args.target == "demo":
        _run_demo()
        return 0
    if args.target == "trace":
        # `trace` with no workload: show the subcommand's usage/help.
        return _run_trace(["--help"])
    targets = sorted(FIGURES) if args.target == "all" else [args.target]
    for name in targets:
        print(render(FIGURES[name]()))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
