"""Workload generators: STREAM, YCSB, Facebook-ETC, ESRally nested track."""

from .esrally import (
    Challenge,
    CorpusConfig,
    NestedQuery,
    NestedTrackGenerator,
    StackOverflowPost,
    build_corpus,
)
from .etc import (
    CacheOperation,
    CacheOpType,
    EtcConfig,
    EtcGenerator,
    ITEM_OVERHEAD_BYTES,
)
from .stream import (
    StreamConfig,
    StreamKernel,
    StreamModel,
    StreamResult,
    stream_reference_kernels,
)
from .ycsb import (
    YCSB_WORKLOADS,
    YcsbGenerator,
    YcsbOperation,
    YcsbOperationType,
    YcsbWorkload,
)

__all__ = [
    "StreamKernel",
    "StreamConfig",
    "StreamModel",
    "StreamResult",
    "stream_reference_kernels",
    "YcsbWorkload",
    "YcsbGenerator",
    "YcsbOperation",
    "YcsbOperationType",
    "YCSB_WORKLOADS",
    "EtcConfig",
    "EtcGenerator",
    "CacheOperation",
    "CacheOpType",
    "ITEM_OVERHEAD_BYTES",
    "Challenge",
    "NestedQuery",
    "NestedTrackGenerator",
    "CorpusConfig",
    "StackOverflowPost",
    "build_corpus",
]
