#!/usr/bin/env python3
"""VoltDB under disaggregation: partitions, IPC and throughput.

Part 1 drives the *functional* H-Store-style partitioned store with a
real YCSB stream. Part 2 sweeps the performance model across partition
counts and memory configurations, reproducing the Fig. 6 profiling
trends and the Fig. 7 throughput comparison.

Run:  python examples/database_partitions.py
"""

from repro.apps import VoltDb, VoltDbModel
from repro.testbed import MemoryConfigKind, make_environment
from repro.workloads import YCSB_WORKLOADS, YcsbGenerator


def functional_run() -> None:
    print("== Functional VoltDB + YCSB-A ==")
    db = VoltDb(partitions=8)
    for key in range(10_000):
        db.insert(key, {"field0": f"value{key}"})
    generator = YcsbGenerator(YCSB_WORKLOADS["A"], record_count=10_000)
    for op in generator.operations(20_000):
        db.execute(op)
    print(f"rows: {db.rows}, committed txns: {db.committed}")
    clocks = db.partition_clocks()
    print(f"per-partition txn counts (load balance): "
          f"min={min(clocks)}, max={max(clocks)}")


def profile_sweep() -> None:
    print("\n== Fig. 6 — profiling: package IPC / utilized cores ==")
    local = make_environment(MemoryConfigKind.LOCAL)
    single = make_environment(MemoryConfigKind.SINGLE_DISAGGREGATED)
    print(f"{'wl':<4}{'parts':>6}{'IPC loc':>9}{'UCC loc':>9}"
          f"{'IPC sgl':>9}{'UCC sgl':>9}")
    for workload in "AE":
        for partitions in (4, 16, 32, 64):
            ml = VoltDbModel(local, partitions).evaluate(workload)
            ms = VoltDbModel(single, partitions).evaluate(workload)
            print(f"{workload:<4}{partitions:>6}"
                  f"{ml.package_ipc:>9.2f}{ml.utilized_cores:>9.1f}"
                  f"{ms.package_ipc:>9.2f}{ms.utilized_cores:>9.1f}")
    ml = VoltDbModel(local, 32).evaluate("A")
    ms = VoltDbModel(single, 32).evaluate("A")
    print(f"\nback-end stall cycles: local {ml.backend_stall_fraction:.1%} "
          f"vs single-disaggregated {ms.backend_stall_fraction:.1%} "
          "(paper: 55.5% vs 80.9%)")


def throughput_sweep() -> None:
    print("\n== Fig. 7 — YCSB A/E throughput across configurations ==")
    order = (
        MemoryConfigKind.LOCAL,
        MemoryConfigKind.SCALE_OUT,
        MemoryConfigKind.INTERLEAVED,
        MemoryConfigKind.SINGLE_DISAGGREGATED,
        MemoryConfigKind.BONDING_DISAGGREGATED,
    )
    for workload in "AE":
        for partitions in (4, 32):
            base = VoltDbModel(
                make_environment(MemoryConfigKind.LOCAL), partitions
            ).evaluate(workload).throughput_ops
            print(f"\nworkload {workload}, {partitions} partitions:")
            for kind in order:
                metric = VoltDbModel(
                    make_environment(kind), partitions
                ).evaluate(workload)
                delta = 100 * (metric.throughput_ops / base - 1)
                print(f"  {kind.value:<24}"
                      f"{metric.throughput_ops / 1e3:>9.1f}K ops/s "
                      f"({delta:+.1f}% vs local)")
    print("\npaper, A@32: scale-out -5.95%, interleaved -5.62%, "
          "single -7.97%, bonding -10.03%")


def main() -> None:
    functional_run()
    profile_sweep()
    throughput_sweep()


if __name__ == "__main__":
    main()
