"""Pure-Python reference implementation of the accel kernels.

Every kernel here defines the *semantics*: accelerated backends must
return bit-identical values (floats included — same IEEE-754 operations
in the same association order). Keep these loops boring and explicit;
they double as the specification the differential suite checks the
numpy backend against.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

NAME = "python"


def serialization_schedule(
    start_s: float, sizes_bytes: Sequence[int], payload_bits_per_s: float
) -> List[float]:
    """Wire-occupancy boundaries for frames serialized back to back.

    Returns ``len(sizes_bytes) + 1`` instants: frame ``i`` occupies
    ``[bounds[i], bounds[i + 1])``. Accumulation is strictly sequential
    (``((start + t0) + t1) + ...``) — the association order every
    backend must reproduce for bit-identical link timestamps.
    """
    bounds = [start_s]
    cursor = start_s
    for size in sizes_bytes:
        cursor = cursor + size * 8 / payload_bits_per_s
        bounds.append(cursor)
    return bounds


def frame_digest(
    identity: int, entries: Iterable[Tuple[int, int, int]]
) -> bytes:
    """Canonical digest bytes of one LLC frame's transaction headers.

    ``entries`` holds ``(txn_id, command_value, burst)`` per
    transaction; a burst contributes one signature per cacheline (the
    per-line headers the unbatched formulation would put on the wire),
    so CRC coverage is identical in both formulations.
    """
    signature: List[int] = []
    for txn_id, command_value, burst in entries:
        if burst == 1:
            signature.append(txn_id * 131 + command_value)
        else:
            for line in range(burst):
                signature.append((txn_id + line) * 131 + command_value)
    return struct.pack(
        f"<Q{len(signature)}q",
        identity & 0xFFFFFFFFFFFFFFFF,
        *signature,
    )


def sort_values(values: Sequence[float]) -> List[float]:
    """Ascending sort of latency samples (CDF/percentile preparation).

    Sorting is a pure permutation of the inputs, so any backend's sort
    yields the identical list; what varies is only the wall-clock cost
    on the Fig. 8-sized sample sets.
    """
    return sorted(values)


def solve_linear_system(
    matrix: Sequence[Sequence[float]], rhs: Sequence[float]
) -> List[float]:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination.

    Partial pivoting (first row of maximal magnitude), in-place
    elimination over an augmented copy, sequential back-substitution.
    The DSE effects models feed this their (ridge-regularized) normal
    equations; systems are small and dense. Raises
    ``ZeroDivisionError`` on a singular pivot column.

    Every float op and its association order here is the spec:
    accelerated backends must reproduce the values bit-for-bit,
    including which rows are skipped (zero factors are *not* updated,
    preserving signed zeros).
    """
    n = len(rhs)
    a = [list(map(float, matrix[i])) + [float(rhs[i])] for i in range(n)]
    for k in range(n):
        pivot = k
        best = abs(a[k][k])
        for r in range(k + 1, n):
            magnitude = abs(a[r][k])
            if magnitude > best:
                best = magnitude
                pivot = r
        if best == 0.0:
            raise ZeroDivisionError(f"singular system at column {k}")
        if pivot != k:
            a[k], a[pivot] = a[pivot], a[k]
        base = a[k]
        for r in range(k + 1, n):
            row = a[r]
            factor = row[k] / base[k]
            if factor == 0.0:
                continue
            for j in range(k, n + 1):
                row[j] -= factor * base[j]
    x = [0.0] * n
    for k in range(n - 1, -1, -1):
        row = a[k]
        acc = row[n]
        for j in range(k + 1, n):
            acc -= row[j] * x[j]
        x[k] = acc / row[k]
    return x


def bank_service_windows(
    starts_s: Sequence[float],
    line_counts: Sequence[int],
    banks: int,
    access_latency_s: float,
    line_transfer_s: float,
) -> Tuple[List[float], List[int]]:
    """Completion instants and bank occupancy for a batch of bursts.

    Lines of one burst proceed in parallel across banks, so each
    burst's service is a single per-line interval regardless of length
    (see ``DramDevice._access_burst``); occupancy is capped at the
    device's bank count.
    """
    service = access_latency_s + line_transfer_s
    completions = [start + service for start in starts_s]
    slots = [lines if lines < banks else banks for lines in line_counts]
    return completions, slots
