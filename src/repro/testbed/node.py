"""One AC922-class node: bus, DRAM, kernel, PASIDs, ThymesisFlow card.

The real testbed node is a dual-socket POWER9 with 512 GiB of RAM; the
model keeps the structure (bus + DRAM + kernel + optional FPGA card)
with capacities scaled by the caller so simulations stay laptop-sized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..core.device import ThymesisFlowDevice
from ..core.llc import LlcConfig
from ..mem.address import AddressRange, GIB, MIB
from ..mem.dram import DramDevice, DramTiming
from ..opencapi.bus import SystemBus
from ..opencapi.pasid import PasidRegistry
from ..osmodel.agent import ThymesisFlowAgent
from ..osmodel.kernel import LinuxKernel
from ..sim.engine import Simulator
from .calibration import LOCAL_DRAM_BANDWIDTH_BYTES_S, LOCAL_DRAM_LATENCY_S

__all__ = ["NodeSpec", "Ac922Node"]

#: Where firmware places the ThymesisFlow compute window in the real
#: address space (far above any plausible scaled DRAM).
TF_WINDOW_BASE = 0x100_0000_0000


@dataclass(frozen=True)
class NodeSpec:
    """Sizing of one node (defaults are scaled-down AC922 values)."""

    dram_bytes: int = 512 * MIB
    cpu_count: int = 32
    smt_threads: int = 4
    section_bytes: int = 1 * MIB
    page_bytes: int = 64 * 1024
    tf_window_sections: int = 256
    has_fpga: bool = True
    #: §VII projection: ThymesisFlow integrated into the processor SoC —
    #: the host-link serdes crossings disappear (4 fewer per RTT).
    integrated_soc: bool = False

    @property
    def hardware_threads(self) -> int:
        return self.cpu_count * self.smt_threads

    @property
    def tf_window_bytes(self) -> int:
        return self.tf_window_sections * self.section_bytes


class Ac922Node:
    """A complete host: the unit the control plane composes."""

    def __init__(
        self,
        sim: Simulator,
        hostname: str,
        spec: Optional[NodeSpec] = None,
        llc_config: Optional[LlcConfig] = None,
    ):
        self.sim = sim
        self.hostname = hostname
        self.spec = spec or NodeSpec()

        # Bus + DRAM -------------------------------------------------------------
        self.bus = SystemBus(sim, name=f"{hostname}.bus")
        self.dram = DramDevice(
            sim,
            AddressRange(0x0, self.spec.dram_bytes),
            timing=DramTiming(
                access_latency_s=LOCAL_DRAM_LATENCY_S,
                bandwidth_bytes_per_s=LOCAL_DRAM_BANDWIDTH_BYTES_S,
            ),
            name=f"{hostname}.dram",
        )
        self.bus.attach_dram(self.dram)

        # Kernel -----------------------------------------------------------------
        self.kernel = LinuxKernel(
            hostname,
            section_bytes=self.spec.section_bytes,
            page_bytes=self.spec.page_bytes,
        )
        self.kernel.add_boot_memory(
            0,
            self.dram.window,
            cpu_count=self.spec.cpu_count,
            base_latency_s=LOCAL_DRAM_LATENCY_S,
        )

        # OpenCAPI / ThymesisFlow ----------------------------------------------------
        self.pasids = PasidRegistry()
        self.device: Optional[ThymesisFlowDevice] = None
        self.tf_window: Optional[AddressRange] = None
        self.agent: Optional[ThymesisFlowAgent] = None
        if self.spec.has_fpga:
            self.device = ThymesisFlowDevice(
                sim,
                name=f"{hostname}.tf",
                section_bytes=self.spec.section_bytes,
                llc_config=llc_config,
                host_crossing_s=0.0 if self.spec.integrated_soc else None,
            )
            self.tf_window = AddressRange(
                TF_WINDOW_BASE, self.spec.tf_window_bytes
            )
            self.device.attach_compute(self.bus, self.tf_window)
            self.device.enable_memory_role(self.bus, self.pasids)
            self.agent = ThymesisFlowAgent(
                hostname,
                kernel=self.kernel,
                device=self.device,
                pasids=self.pasids,
                donor_node_id=0,
                memory_scrubber=lambda start, size: self.dram.backing.fill(
                    start, size, 0
                ),
            )
        # NUMA page migration must move content, and content may live
        # behind the ThymesisFlow window — copy through the bus in
        # cacheline units (the only transaction size the datapath moves).
        self.kernel.page_copier = self._copy_page_content
        #: When True, page migration moves content as burst transactions
        #: (one batch per 16-line window); when False it issues the
        #: equivalent concurrent per-line transactions — same timing,
        #: more simulator events.
        self.bulk_transfers = True

    def _copy_page_content(self, source: int, destination: int,
                           size: int) -> None:
        """Synchronous page copy (migration quiesces the page)."""
        from ..mem.address import CACHELINE_BYTES

        window_lines = 16

        def copier():
            offset = 0
            while offset < size:
                chunk = min(window_lines * CACHELINE_BYTES, size - offset)
                if chunk > CACHELINE_BYTES:
                    chunk -= chunk % CACHELINE_BYTES
                lines = chunk // CACHELINE_BYTES
                if lines > 1 and self.bulk_transfers:
                    data = yield self.bus.load_burst(source + offset, lines)
                    yield self.bus.store_burst(destination + offset, data)
                elif lines > 1:
                    loads = [
                        self.bus.load(
                            source + offset + i * CACHELINE_BYTES,
                            CACHELINE_BYTES,
                        )
                        for i in range(lines)
                    ]
                    pieces = []
                    for waitable in loads:
                        pieces.append((yield waitable))
                    stores = [
                        self.bus.store(
                            destination + offset + i * CACHELINE_BYTES,
                            pieces[i],
                        )
                        for i in range(lines)
                    ]
                    for waitable in stores:
                        yield waitable
                else:
                    data = yield self.bus.load(source + offset, chunk)
                    yield self.bus.store(destination + offset, data)
                offset += chunk

        self.sim.run_process(copier())

    # -- observability -----------------------------------------------------------------
    def register_observability(self, registry) -> None:
        """Register this node's whole stack, labelled by hostname."""
        node = self.hostname
        self.bus.register_metrics(registry, node=node)
        self.dram.register_metrics(registry, node=node)
        if self.device is not None:
            self.device.register_metrics(registry, node=node)

    # -- functional memory access (timed) --------------------------------------------
    def load(self, address: int, size: int = 128):
        """Timed load on this node's bus (simulation process)."""
        return self.bus.load(address, size)

    def store(self, address: int, data: bytes):
        return self.bus.store(address, data)

    def run_load(self, address: int, size: int = 128) -> bytes:
        """Convenience: run the simulator until the load completes."""
        return self.sim.run_process(self._one(self.load(address, size)))

    def run_store(self, address: int, data: bytes) -> None:
        self.sim.run_process(self._one(self.store(address, data)))

    @staticmethod
    def _one(process) -> Generator:
        result = yield process
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Ac922Node({self.hostname!r}, dram="
            f"{self.spec.dram_bytes >> 20} MiB, "
            f"fpga={self.spec.has_fpga})"
        )
