"""End-to-end transaction tracing: span model, exporters, overhead guard.

The acceptance-critical test here is full-path reconstruction: a traced
remote access must yield one record whose per-layer spans walk the whole
stack (bus → RMMU → routing → LLC → wire → donor bus → DRAM → response →
completion), with contiguous, non-overlapping child spans whose
durations sum to the end-to-end latency — and the Chrome-trace export of
that run must validate.
"""

import json

import pytest

from repro.mem import MIB
from repro.obs import (
    Tracer,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs import trace as trace_mod
from repro.testbed import Testbed


@pytest.fixture(autouse=True)
def _tracing_off():
    """Never leak an enabled tracer into other tests."""
    yield
    disable_tracing()


def _remote_roundtrip():
    """One store + one load through the full simulated datapath."""
    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(128))
    testbed.node0.run_store(window.start, payload)
    assert testbed.node0.run_load(window.start) == payload
    return testbed


def _is_subsequence(needle, haystack):
    iterator = iter(haystack)
    return all(stage in iterator for stage in needle)


#: The full path of a remote load (§IV): compute bus issue, RMMU
#: translation, routing, LLC (credit wait, framing, delivery), the donor
#: bus mastering, DRAM service, and the response path home.
FULL_PATH = [
    "bus.issue",
    "rmmu.translate",
    "routing.forward",
    "llc.credit_wait",
    "llc.submit",
    "llc.frame",
    "llc.deliver",
    "bus.issue",       # donor-side C1 mastering
    "dram.service",
    "dram.done",
    "routing.response",
    "llc.credit_wait",
    "llc.submit",
    "llc.frame",
    "llc.deliver",
    "complete",
]


class TestOffByDefault:
    def test_disabled_flag_and_no_tracer(self):
        assert trace_mod.ENABLED is False
        assert trace_mod.active_tracer() is None

    def test_untraced_run_records_nothing(self):
        _remote_roundtrip()
        assert trace_mod.active_tracer() is None

    def test_call_site_helpers_are_noops_when_disabled(self):
        # Components guard with `if ENABLED:`, but even an unguarded
        # call must not blow up between disable and the next dispatch.
        trace_mod.txn_begin(0.0, 1, "load", 128, "bus")
        trace_mod.txn_mark(0.0, 1, "stage", "x")
        trace_mod.txn_end(0.0, 1, "bus")
        trace_mod.span("s", 0.0, 1.0, "t")
        trace_mod.instant("i", 0.0, "t")

    def test_context_manager_restores_disabled(self):
        with tracing() as tracer:
            assert trace_mod.ENABLED is True
            assert trace_mod.active_tracer() is tracer
        assert trace_mod.ENABLED is False
        assert trace_mod.active_tracer() is None


class TestFullPathReconstruction:
    def test_load_spans_walk_the_whole_stack(self):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        loads = tracer.find(op="load", done=True)
        assert loads, "no completed load was traced"
        record = loads[0]
        assert _is_subsequence(FULL_PATH, record.stages), (
            f"stages {record.stages} do not contain the full path"
        )

    def test_child_spans_tile_the_end_to_end_latency(self):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        for record in tracer.completed():
            segments = record.segments()
            assert segments
            # Contiguous and non-overlapping: each span starts exactly
            # where the previous one ended, and never runs backwards.
            for (_s1, t0, t1, _w1), (_s2, t2, _t3, _w2) in zip(
                segments, segments[1:]
            ):
                assert t1 == t2
                assert t1 >= t0
            total = sum(t1 - t0 for _s, t0, t1, _w in segments)
            assert total == pytest.approx(record.latency, rel=0, abs=1e-15)

    def test_store_and_load_both_complete(self):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        assert tracer.find(op="store", done=True)
        assert tracer.find(op="load", done=True)

    def test_marks_are_time_ordered(self):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        for record in tracer.completed():
            times = [t for t, _stage, _w in record.marks]
            assert times == sorted(times)


class TestChromeExport:
    def test_traced_run_validates(self):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        document = chrome_trace(tracer)
        count = validate_chrome_trace(document)
        assert count > len(tracer.transactions)

    def test_required_keys_on_every_event(self):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        for event in chrome_trace(tracer)["traceEvents"]:
            for key in ("ph", "ts", "pid", "name"):
                assert key in event

    def test_transaction_lane_matches_record(self):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        record = tracer.find(op="load", done=True)[0]
        events = [
            e
            for e in chrome_trace(tracer)["traceEvents"]
            if e["ph"] == "X" and e.get("tid") == record.base_id
        ]
        stage_events = [e for e in events if e["cat"] == "stage"]
        assert [e["name"] for e in stage_events] == [
            stage for stage, _t0, _t1, _w in record.segments()
        ]
        enclosing = [e for e in events if e["cat"] == "txn"]
        assert len(enclosing) == 1
        assert enclosing[0]["dur"] == pytest.approx(record.latency * 1e6)

    def test_write_chrome_trace_roundtrips_through_json(self, tmp_path):
        tracer = enable_tracing()
        _remote_roundtrip()
        disable_tracing()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == len(loaded["traceEvents"])

    def test_validator_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace([{"ph": "I", "ts": 0, "pid": 1}])
        with pytest.raises(ValueError, match="no events"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="bad ts"):
            validate_chrome_trace(
                [{"ph": "I", "ts": -1, "pid": 1, "name": "x"}]
            )

    def test_validator_rejects_overlapping_spans(self):
        bad = [
            {"ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1, "name": "a"},
            {"ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1, "name": "b"},
        ]
        with pytest.raises(ValueError, match="overlaps"):
            validate_chrome_trace(bad)


class TestSampling:
    def test_one_in_n_traces_fewer_transactions(self):
        everything = enable_tracing(sample_every=1)
        _remote_roundtrip()
        disable_tracing()
        sampled = enable_tracing(sample_every=1000)
        _remote_roundtrip()
        disable_tracing()
        assert len(sampled.transactions) < len(everything.transactions)
        assert sampled.dropped_by_sampling > 0

    def test_sampling_decision_is_deterministic(self):
        tracer = Tracer(sample_every=4)
        assert tracer._sampled(8)
        assert not tracer._sampled(9)

    def test_invalid_sample_every_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestEngineSpan:
    def test_run_emits_sim_span_only_when_enabled(self):
        from repro.sim import Simulator

        sim = Simulator()
        sim.schedule(1e-6, lambda: None)
        sim.run()
        tracer = enable_tracing()
        sim.schedule(1e-6, lambda: None)
        sim.run()
        disable_tracing()
        spans = [s for s in tracer.spans if s.name == "sim.run"]
        assert len(spans) == 1
        assert spans[0].args["events"] >= 1
