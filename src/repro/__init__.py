"""ThymesisFlow (MICRO 2020) reproduction: a full-stack simulation of
software-defined, rack-scale memory disaggregation.

Public API highlights
---------------------
* :mod:`repro.testbed` — build the paper's 3-node AC922 prototype and the
  five experimental memory configurations.
* :mod:`repro.control` — the software-defined control plane
  (attach/detach disaggregated memory at runtime).
* :mod:`repro.core` — the ThymesisFlow device itself (RMMU, routing, LLC).
* :mod:`repro.workloads` / :mod:`repro.apps` — the evaluation's workload
  generators and application models.
* :mod:`repro.cluster` — the datacentre-scale motivation study (Fig. 1).
"""

__version__ = "1.0.0"
