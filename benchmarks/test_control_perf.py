"""Throughput-vs-latency benchmark of the async control-plane server.

Runs the standard three-tenant load test (see
:mod:`repro.control.loadgen`) through the real ``python -m repro
loadtest`` entry point and persists the full report — per-stage
throughput and latency percentiles, the validation-latency CDF, shed
counts and peak RSS — to ``BENCH_control.json`` at the repository
root, so control-plane performance regressions show up in review
diffs.

The assertions are the PR's acceptance criteria, CI-enforced:

* the server *sheds* under overload (429s from quotas, 503s from the
  bounded admission queue) instead of collapsing;
* latency at the non-overloaded stages stays within target;
* validation reads (GET of a just-created attachment) stay fast;
* peak RSS stays bounded.

Set ``CONTROL_PERF_SMOKE=1`` (CI) to run the short smoke preset and
relax the latency targets for noisy shared runners; the shed-behavior
assertions are unconditional.
"""

from __future__ import annotations

import io
import json
import os
import time
from contextlib import redirect_stdout

from repro.__main__ import main

SMOKE = os.environ.get("CONTROL_PERF_SMOKE", "") not in ("", "0")

#: Results land at the repository root, next to BENCH_kernel.json.
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_control.json",
)

#: p95 latency target (ms) for every stage offered below saturation,
#: and the validation-read p99 target. Generous on shared CI runners.
P95_TARGET_MS = 250.0 if SMOKE else 100.0
#: Validation reads issued *during* the overload stage wait behind the
#: bounded admission queue, so their worst case is queue-depth x
#: service time (~hundreds of ms) — bounded by construction, which is
#: exactly the claim this target enforces. An unbounded queue would
#: blow through it into seconds.
VALIDATION_P99_TARGET_MS = 500.0
PEAK_RSS_TARGET_MIB = 512


def test_control_loadtest_sheds_instead_of_collapsing():
    argv = ["loadtest", "--out", RESULTS_PATH]
    if SMOKE:
        argv.append("--smoke")
    stdout = io.StringIO()
    started = time.perf_counter()
    with redirect_stdout(stdout):
        code = main(argv)
    wall_s = time.perf_counter() - started
    assert code == 0
    print(stdout.getvalue())

    with open(RESULTS_PATH) as fh:
        report = json.load(fh)
    report["wall_s"] = wall_s
    with open(RESULTS_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    stages = report["stages"]
    totals = report["totals"]

    # -- shed, don't collapse (unconditional) -----------------------------------
    assert totals["quota_429"] > 0, (
        "the best-effort tenant never hit its quota: no 429s observed"
    )
    assert totals["shed_503"] > 0, (
        "the admission queue never shed: no 503s observed"
    )
    # ...and the server-side counters agree that shedding happened.
    assert report["server"]["queue_shed"] > 0
    # Overload did not zero throughput: the final (overload) stage still
    # completed a solid majority of the pre-overload stage's rate.
    overload = stages[-1]
    steady = stages[-2]
    assert overload["throughput_rps"] >= 0.5 * steady["throughput_rps"], (
        f"throughput collapsed under overload: "
        f"{overload['throughput_rps']:.0f} rps after "
        f"{steady['throughput_rps']:.0f} rps"
    )
    # Every response was a structured status, not a dropped connection.
    assert totals["conn_errors"] == 0

    # -- latency targets --------------------------------------------------------
    for stage in stages[:-1]:  # all pre-overload stages
        assert stage["latency_ms"]["p95"] <= P95_TARGET_MS, (
            f"stage {stage['rate_rps']} rps: p95 "
            f"{stage['latency_ms']['p95']:.1f} ms > {P95_TARGET_MS} ms"
        )
    validation = report["validation"]
    assert validation["count"] > 0
    assert validation["latency_ms"]["p99"] <= VALIDATION_P99_TARGET_MS
    assert len(validation["cdf"]) > 0

    # -- footprint --------------------------------------------------------------
    assert report["peak_rss_kib"] / 1024 <= PEAK_RSS_TARGET_MIB

    # -- bookkeeping converged --------------------------------------------------
    for tenant in report["tenant_usage"]:
        assert tenant["attachments"] == 0, (
            f"tenant {tenant['name']} leaked attachments: {tenant}"
        )
