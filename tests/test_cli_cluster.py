"""``python -m repro cluster`` — the sharded replay CLI."""

import json

import pytest

from repro.__main__ import main


class TestClusterCli:
    def test_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cluster", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "python -m repro cluster" in out
        assert "--racks" in out and "--scale" in out and "--jobs" in out

    def test_small_run_text_output(self, capsys):
        assert main([
            "cluster", "--racks", "2", "--machines", "8",
            "--tasks", "80", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "cluster : 2 racks" in out
        assert "sync    :" in out and "windows" in out
        assert "classes :" in out and "local" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main([
            "cluster", "--racks", "2", "--machines", "8",
            "--tasks", "80", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["racks"] == 2
        assert payload["summary"]["tasks"] == 80
        assert set(payload["summary"]["classes"]) == {
            "local", "rack_pool", "remote_pool", "stranded", "rejected"
        }
        assert payload["runtime"]["jobs"] == 1

    def test_scale_sizes_the_fleet(self, capsys):
        assert main([
            "cluster", "--racks", "2", "--scale", "0.001",
            "--tasks", "40", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        # round(12555 * 0.001) = 13 machines.
        assert payload["config"]["machines"] == 13

    def test_scale_out_of_range_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--scale", "1.5"])

    def test_out_writes_deterministic_artifacts(self, tmp_path, capsys):
        argv = ["cluster", "--racks", "2", "--machines", "8",
                "--tasks", "80", "--chaos"]
        assert main(argv + ["--out", str(tmp_path / "a")]) == 0
        assert main(argv + ["--jobs", "2", "--out", str(tmp_path / "b")]) == 0
        capsys.readouterr()
        for name in ("cluster-summary.json", "cluster-journal.jsonl"):
            first = (tmp_path / "a" / name).read_bytes()
            second = (tmp_path / "b" / name).read_bytes()
            assert first == second, name

    def test_jobs_env_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv("SWEEP_JOBS", "2")
        assert main([
            "cluster", "--racks", "2", "--machines", "8",
            "--tasks", "40", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runtime"]["jobs"] == 2
