"""Tests for the figures module and the ``python -m repro`` CLI."""

import pytest

from repro.figures import FIGURES, fig5, fig8, render, rtt


class TestFigures:
    def test_registry_covers_every_figure(self):
        assert set(FIGURES) == {
            "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "rtt"
        }

    def test_fig5_shape(self):
        title, headers, rows = fig5(threads=(4,))
        assert "Fig. 5" in title
        assert headers[0] == "threads"
        assert len(rows) == 4  # four kernels at one thread count

    def test_fig8_rows_per_config(self):
        _title, _headers, rows = fig8(samples=2_000)
        assert len(rows) == 5
        configs = [row[0] for row in rows]
        assert "local" in configs and "scale-out" in configs

    def test_rtt_values_near_950(self):
        _title, _headers, rows = rtt(samples=4)
        budget_ns = float(rows[0][1].split()[0])
        assert budget_ns == pytest.approx(960, abs=20)

    def test_render_aligns_columns(self):
        text = render(("T", ["a", "bb"], [["1", "2"], ["333", "4"]]))
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert len(lines) == 4


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "STREAM" in out

    def test_single_figure(self, capsys):
        from repro.__main__ import main

        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out

    def test_demo(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "roundtrip OK" in out
        assert "detached cleanly" in out

    def test_unknown_target_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["bogus"])
