"""Fig. 8 — Memcached GET latency CDF for all five configurations.

Paper values (§VI-E): mean latency 600 µs local, 614 interleaved,
635 single, 650 bonding, 713 scale-out; p90 degradation over the mean
19 % / 33 % / 34 % / 64 % / ~2×; ThymesisFlow configs within ~7 % of
local on average; scale-out pays the Twemproxy hop.
"""

import pytest
from conftest import print_table, save_results, sweep_payload

from repro.apps import MemcachedLatencyModel
from repro.testbed import MemoryConfigKind, make_environment
from repro.workloads import EtcGenerator

ORDER = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.INTERLEAVED,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
    MemoryConfigKind.BONDING_DISAGGREGATED,
    MemoryConfigKind.SCALE_OUT,
)
SAMPLES = 50_000

PAPER_MEANS_US = {
    MemoryConfigKind.LOCAL: 600.0,
    MemoryConfigKind.INTERLEAVED: 614.0,
    MemoryConfigKind.SINGLE_DISAGGREGATED: 635.0,
    MemoryConfigKind.BONDING_DISAGGREGATED: 650.0,
    MemoryConfigKind.SCALE_OUT: 713.0,
}


def compute_payload(samples=SAMPLES):
    """Sweep target: GET-latency distribution summary per config."""
    payload = {}
    for kind in ORDER:
        model = MemcachedLatencyModel(make_environment(kind))
        recorder = model.record(samples)
        payload[kind.value] = {
            "mean_us": recorder.mean * 1e6,
            "p50_us": recorder.percentile(50) * 1e6,
            "p90_us": recorder.percentile(90) * 1e6,
            "p99_us": recorder.percentile(99) * 1e6,
            "p90_degradation": recorder.degradation_at(90),
            "cdf_decile_us": [
                recorder.percentile(q) * 1e6 for q in range(10, 100, 10)
            ],
        }
    # The §VI-E setup's hit ratio backs the cache-friendliness claim.
    payload["hit_ratio"] = EtcGenerator().expected_hit_ratio(
        model_keys=50_000, model_requests=200_000
    )
    return payload


def test_fig8_memcached_cdf(once):
    payload = once(sweep_payload, __file__, samples=SAMPLES)

    rows = []
    for kind in ORDER:
        stats = payload[kind.value]
        rows.append(
            (
                kind.value,
                f"{stats['mean_us']:.0f}",
                f"{stats['p50_us']:.0f}",
                f"{stats['p90_us']:.0f}",
                f"{stats['p99_us']:.0f}",
                f"{100 * stats['p90_degradation']:.0f}%",
                f"{PAPER_MEANS_US[kind]:.0f}",
            )
        )
    print_table(
        "Fig. 8 — Memcached GET latency (µs)",
        ["config", "mean", "p50", "p90", "p99", "p90 degr.", "paper mean"],
        rows,
    )
    hit_ratio = payload["hit_ratio"]
    print(f"ETC steady hit ratio: {hit_ratio:.3f} (paper: 0.80-0.82)")
    save_results("fig8", payload)

    # Mean latencies match the paper within 3%.
    for kind in ORDER:
        mean_us = payload[kind.value]["mean_us"]
        assert mean_us == pytest.approx(PAPER_MEANS_US[kind], rel=0.03), kind

    # Ordering: local < interleaved < single < bonding < scale-out.
    means = [payload[kind.value]["mean_us"] for kind in ORDER]
    assert means == sorted(means)

    # ThymesisFlow configs within ~7% of local on average (§VI-E).
    local_mean = payload[MemoryConfigKind.LOCAL.value]["mean_us"]
    for kind in ORDER[1:4]:
        assert payload[kind.value]["mean_us"] / local_mean - 1 <= 0.09

    # Scale-out: ~2x degradation at p90, the heaviest tail of all.
    scale_out_deg = payload[
        MemoryConfigKind.SCALE_OUT.value
    ]["p90_degradation"]
    assert 0.8 <= scale_out_deg <= 1.2
    assert scale_out_deg == max(
        payload[kind.value]["p90_degradation"] for kind in ORDER
    )

    # Hit ratio in the reported band.
    assert 0.78 <= hit_ratio <= 0.84
