"""Twemproxy (nutcracker) model — paper §VI-E scale-out path.

"For the scale-out configuration, we employ Twemproxy; a proxy for the
Memcached servers … by employing a proxy, we simulate an environment,
matching the one found in a typical data-centre, where the internal
network of servers is not exposed to the various clients."

Functionally the proxy shards keys across a server pool (ketama-style
consistent hashing over a hash ring); performance-wise it adds one
network hop and connection multiplexing delay to every request — the
source of scale-out's +113 µs mean and ~2× p90 tail in Fig. 8.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from .memcached import Memcached

__all__ = ["Twemproxy"]


class Twemproxy:
    """Consistent-hashing Memcached proxy."""

    def __init__(
        self,
        servers: Sequence[Memcached],
        virtual_nodes: int = 160,
    ):
        if not servers:
            raise ValueError("proxy needs at least one server")
        self.servers = list(servers)
        self._ring: List[Tuple[int, int]] = []
        for index, _server in enumerate(self.servers):
            for replica in range(virtual_nodes):
                point = self._hash(f"server{index}:vn{replica}")
                self._ring.append((point, index))
        self._ring.sort()
        self._points = [point for point, _index in self._ring]
        self.forwarded = 0

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.md5(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def server_for(self, key: str) -> Memcached:
        """Ketama lookup: first ring point clockwise from the key hash."""
        point = self._hash(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self.servers[self._ring[index][1]]

    # -- memcached protocol, proxied --------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        self.forwarded += 1
        return self.server_for(key).get(key)

    def set(self, key: str, value: bytes) -> None:
        self.forwarded += 1
        self.server_for(key).set(key, value)

    def delete(self, key: str) -> bool:
        self.forwarded += 1
        return self.server_for(key).delete(key)

    # -- distribution diagnostics -------------------------------------------------------
    def key_distribution(self, keys: Sequence[str]) -> List[int]:
        """How many of ``keys`` land on each server (balance check)."""
        counts = [0] * len(self.servers)
        for key in keys:
            for index, server in enumerate(self.servers):
                if server is self.server_for(key):
                    counts[index] += 1
                    break
        return counts
