"""Linux sparse-memory-model sections — paper §IV-A1 / §IV-B.

"The Linux kernel divides the physical address space assigned to the
main system memory into fixed-size aligned sections. Each memory
section is independently handled by the kernel, and can be 'hotplugged'
at runtime to expand the available system memory."

Sections are the currency the whole stack trades in: the RMMU has one
table entry per section, the agent hotplugs one section at a time, and
the control plane allocates donor memory in section multiples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..mem.address import AddressError, AddressRange, DEFAULT_SECTION_BYTES

__all__ = ["SectionState", "MemorySection", "SparseMemoryModel"]


class SectionState(enum.Enum):
    """Lifecycle of a hotpluggable section."""

    ABSENT = "absent"          #: no backing present at this index
    OFFLINE = "offline"        #: probed (backing present) but not usable
    ONLINE = "online"          #: part of a zone; pages allocatable
    GOING_OFFLINE = "going_offline"  #: being evacuated for removal


@dataclass
class MemorySection:
    """One sparse-memory section."""

    index: int
    range: AddressRange
    state: SectionState = SectionState.OFFLINE
    numa_node: Optional[int] = None

    @property
    def online(self) -> bool:
        return self.state is SectionState.ONLINE


class SparseMemoryModel:
    """Tracks the sections of one host's physical address space.

    The model is sparse in both senses: only probed indices exist, and
    the physical address space may have arbitrary holes (the firmware
    places DRAM, MMIO windows and ThymesisFlow windows wherever it
    likes).
    """

    def __init__(self, section_bytes: int = DEFAULT_SECTION_BYTES):
        if section_bytes <= 0 or (section_bytes & (section_bytes - 1)) != 0:
            raise AddressError(
                f"section_bytes must be a power of two: {section_bytes}"
            )
        self.section_bytes = section_bytes
        self._sections: Dict[int, MemorySection] = {}

    # -- index arithmetic ---------------------------------------------------------
    def index_of(self, address: int) -> int:
        if address < 0:
            raise AddressError(f"negative address: {address:#x}")
        return address // self.section_bytes

    def range_of(self, index: int) -> AddressRange:
        return AddressRange(index * self.section_bytes, self.section_bytes)

    # -- probing (creating sections) -------------------------------------------------
    def probe(self, start: int, size: int) -> List[MemorySection]:
        """Register backing for ``[start, start+size)``; returns sections.

        Both bounds must be section-aligned, exactly like
        ``/sys/devices/system/memory/probe``.
        """
        if start % self.section_bytes or size % self.section_bytes:
            raise AddressError(
                f"probe [{start:#x}, +{size:#x}) not aligned to "
                f"{self.section_bytes:#x}-byte sections"
            )
        if size <= 0:
            raise AddressError(f"probe size must be > 0: {size}")
        first = self.index_of(start)
        count = size // self.section_bytes
        created: List[MemorySection] = []
        for index in range(first, first + count):
            if index in self._sections:
                raise AddressError(f"section {index} already present")
        for index in range(first, first + count):
            section = MemorySection(index, self.range_of(index))
            self._sections[index] = section
            created.append(section)
        return created

    def remove(self, index: int) -> MemorySection:
        """Remove an offline section entirely (hot-remove)."""
        section = self.section(index)
        if section.state is not SectionState.OFFLINE:
            raise AddressError(
                f"section {index} must be OFFLINE to remove "
                f"(is {section.state.value})"
            )
        return self._sections.pop(index)

    # -- state transitions ------------------------------------------------------------
    def online(self, index: int, numa_node: int) -> MemorySection:
        section = self.section(index)
        if section.state is not SectionState.OFFLINE:
            raise AddressError(
                f"section {index} must be OFFLINE to online "
                f"(is {section.state.value})"
            )
        section.state = SectionState.ONLINE
        section.numa_node = numa_node
        return section

    def begin_offline(self, index: int) -> MemorySection:
        section = self.section(index)
        if section.state is not SectionState.ONLINE:
            raise AddressError(
                f"section {index} must be ONLINE to offline "
                f"(is {section.state.value})"
            )
        section.state = SectionState.GOING_OFFLINE
        return section

    def finish_offline(self, index: int) -> MemorySection:
        section = self.section(index)
        if section.state is not SectionState.GOING_OFFLINE:
            raise AddressError(
                f"section {index} not GOING_OFFLINE "
                f"(is {section.state.value})"
            )
        section.state = SectionState.OFFLINE
        section.numa_node = None
        return section

    # -- queries ----------------------------------------------------------------------
    def section(self, index: int) -> MemorySection:
        try:
            return self._sections[index]
        except KeyError:
            raise AddressError(f"no section at index {index}") from None

    def section_at(self, address: int) -> MemorySection:
        return self.section(self.index_of(address))

    def present(self, index: int) -> bool:
        return index in self._sections

    def sections(self) -> Iterator[MemorySection]:
        for index in sorted(self._sections):
            yield self._sections[index]

    def online_sections(
        self, numa_node: Optional[int] = None
    ) -> List[MemorySection]:
        return [
            s
            for s in self.sections()
            if s.online and (numa_node is None or s.numa_node == numa_node)
        ]

    def total_online_bytes(self, numa_node: Optional[int] = None) -> int:
        return len(self.online_sections(numa_node)) * self.section_bytes

    def __len__(self) -> int:
        return len(self._sections)
