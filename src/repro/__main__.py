"""Command line: regenerate paper figures and run the quickstart demo.

Usage::

    python -m repro list               # what can be regenerated
    python -m repro fig5               # one figure's series
    python -m repro all                # every figure
    python -m repro demo               # attach/detach walk-through
"""

from __future__ import annotations

import argparse
import sys

from .figures import FIGURES, render


def _run_demo() -> None:
    from .mem import MIB
    from .testbed import Testbed

    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    print(f"attached 4 MiB of node1 to node0 at "
          f"[{window.start:#x}, {window.end:#x}) "
          f"(NUMA node {attachment.plan.numa_node_id})")
    payload = bytes(range(128))
    testbed.node0.run_store(window.start, payload)
    assert testbed.node0.run_load(window.start) == payload
    for _ in range(16):
        testbed.node0.run_load(window.start)
    rtt = testbed.node0.device.compute.rtt.mean
    print(f"remote load/store roundtrip OK; RTT {rtt * 1e9:.0f} ns")
    testbed.detach(attachment)
    print("detached cleanly")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "ThymesisFlow (MICRO 2020) reproduction: regenerate the "
            "paper's figures from the simulated stack."
        ),
    )
    parser.add_argument(
        "target",
        choices=sorted(FIGURES) + ["all", "list", "demo"],
        help="figure id, 'all', 'list', or 'demo'",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        for name, fn in sorted(FIGURES.items()):
            print(f"{name:6s} {fn.__doc__.strip().splitlines()[0]}")
        return 0
    if args.target == "demo":
        _run_demo()
        return 0
    targets = sorted(FIGURES) if args.target == "all" else [args.target]
    for name in targets:
        print(render(FIGURES[name]()))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
