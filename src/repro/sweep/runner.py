"""Figure regeneration on top of the sweep engine.

``repro.figures`` describes every figure as a *plan*: a title, headers
and an ordered list of independent slice calls (see
``repro.figures.FIGURE_PLANS``). This module turns plans into
:class:`~repro.sweep.RunSpec` lists, executes them through a
:class:`~repro.sweep.SweepEngine` — all figures' slices in one global
fan-out, so a wide figure keeps the pool busy while a narrow one
finishes — and reassembles the slice rows into the same
``(title, headers, rows)`` tables the serial functions return. Row
order is fixed by the plan, never by completion order, which is why
``--jobs N`` output is byte-identical to serial output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..figures import FIGURE_PLANS, FigureTable
from .engine import SweepEngine
from .spec import RunSpec, make_spec

__all__ = ["figure_specs", "run_figures"]


def figure_specs(
    name: str,
    fingerprint: Optional[str] = None,
    **kwargs: Any,
) -> Tuple[str, List[str], List[RunSpec]]:
    """One figure's (title, headers, specs) from its declarative plan."""
    title, headers, calls = FIGURE_PLANS[name](**kwargs)
    specs = [
        make_spec(f"slice:{slice_name}", fingerprint=fingerprint, **call_kwargs)
        for slice_name, call_kwargs in calls
    ]
    return title, headers, specs


def run_figures(
    names: Optional[Sequence[str]] = None,
    *,
    jobs: Union[int, str, None] = 1,
    cache: bool = True,
    cache_dir: Optional[str] = None,
    figure_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
    engine: Optional[SweepEngine] = None,
) -> Tuple[Dict[str, FigureTable], SweepEngine]:
    """Regenerate figures through the engine.

    Returns ``(tables, engine)`` where ``tables`` maps figure name to
    the familiar ``(title, headers, rows)`` tuple and ``engine`` holds
    cache/parallelism statistics and the merged worker metrics.
    ``figure_kwargs`` optionally overrides one figure's plan kwargs,
    e.g. ``{"fig8": {"samples": 500_000}}``.
    """
    if names is None:
        names = sorted(FIGURE_PLANS)
    unknown = [name for name in names if name not in FIGURE_PLANS]
    if unknown:
        raise KeyError(
            f"unknown figure(s) {unknown}; available: "
            f"{sorted(FIGURE_PLANS)}"
        )
    if engine is None:
        engine = SweepEngine(jobs=jobs, cache=cache, cache_dir=cache_dir)

    layout = []  # (name, title, headers, first spec index, spec count)
    all_specs: List[RunSpec] = []
    for name in names:
        overrides = (figure_kwargs or {}).get(name, {})
        title, headers, specs = figure_specs(name, **overrides)
        layout.append((name, title, headers, len(all_specs), len(specs)))
        all_specs.extend(specs)

    outcomes = engine.run(all_specs)

    tables: Dict[str, FigureTable] = {}
    for name, title, headers, start, count in layout:
        rows: List[List[str]] = []
        for outcome in outcomes[start:start + count]:
            rows.extend(outcome.value)
        tables[name] = (title, headers, rows)
    return tables, engine
