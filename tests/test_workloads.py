"""Tests for the workload generators (STREAM, YCSB, ETC, ESRally)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SeededRNG, ZipfGenerator
from repro.testbed import MemoryConfigKind, make_environment
from repro.workloads import (
    CacheOpType,
    Challenge,
    CorpusConfig,
    EtcConfig,
    EtcGenerator,
    NestedTrackGenerator,
    StreamConfig,
    StreamKernel,
    StreamModel,
    YCSB_WORKLOADS,
    YcsbGenerator,
    YcsbOperationType,
    build_corpus,
    stream_reference_kernels,
)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        zipf = ZipfGenerator(1000, 1.0, SeededRNG(1))
        total = sum(zipf.probability(i) for i in range(1000))
        assert total == pytest.approx(1.0)

    def test_rank_zero_is_most_popular(self):
        zipf = ZipfGenerator(1000, 1.0, SeededRNG(1))
        assert zipf.probability(0) > zipf.probability(1) > zipf.probability(10)

    def test_samples_within_range(self):
        zipf = ZipfGenerator(50, 1.2, SeededRNG(2))
        samples = zipf.sample_many(5000)
        assert samples.min() >= 0
        assert samples.max() < 50

    def test_empirical_skew_matches_head_mass(self):
        zipf = ZipfGenerator(10_000, 1.0, SeededRNG(3))
        samples = zipf.sample_many(50_000)
        head = (samples < 100).mean()
        assert head == pytest.approx(zipf.head_mass(100), abs=0.02)

    def test_deterministic_given_seed(self):
        a = ZipfGenerator(100, 1.0, SeededRNG(7)).sample_many(100)
        b = ZipfGenerator(100, 1.0, SeededRNG(7)).sample_many(100)
        assert (a == b).all()


class TestStreamModel:
    def test_kernel_costs_match_paper(self):
        assert StreamKernel.COPY.bytes_per_iter == 16
        assert StreamKernel.COPY.flops_per_iter == 0
        assert StreamKernel.SCALE.flops_per_iter == 1
        assert StreamKernel.ADD.bytes_per_iter == 24
        assert StreamKernel.TRIAD.flops_per_iter == 2

    def test_default_footprint_is_3_66_gib(self):
        config = StreamConfig()
        assert config.footprint_bytes == pytest.approx(3.66e9, rel=0.1)

    def test_single_disaggregated_caps_near_channel_max(self):
        env = make_environment(MemoryConfigKind.SINGLE_DISAGGREGATED)
        model = StreamModel(env)
        bw8 = model.sustained_bandwidth(StreamKernel.COPY, 8)
        assert 10e9 <= bw8 <= 13.5e9  # close to 12.5 GiB/s ceiling

    def test_four_threads_below_saturation(self):
        env = make_environment(MemoryConfigKind.SINGLE_DISAGGREGATED)
        model = StreamModel(env)
        bw4 = model.sustained_bandwidth(StreamKernel.COPY, 4)
        bw8 = model.sustained_bandwidth(StreamKernel.COPY, 8)
        assert bw4 < bw8

    def test_oversaturation_droops(self):
        env = make_environment(MemoryConfigKind.SINGLE_DISAGGREGATED)
        model = StreamModel(env)
        bw8 = model.sustained_bandwidth(StreamKernel.COPY, 8)
        bw16 = model.sustained_bandwidth(StreamKernel.COPY, 16)
        assert bw16 <= bw8  # §VI-C: performance decreases past the knee

    def test_bonding_gains_about_30_percent(self):
        single = StreamModel(
            make_environment(MemoryConfigKind.SINGLE_DISAGGREGATED)
        )
        bonding = StreamModel(
            make_environment(MemoryConfigKind.BONDING_DISAGGREGATED)
        )
        s = single.sustained_bandwidth(StreamKernel.COPY, 16)
        b = bonding.sustained_bandwidth(StreamKernel.COPY, 16)
        assert 1.15 <= b / s <= 1.45  # "~30% improvement"

    def test_interleaved_outperforms_both_disaggregated(self):
        kinds = (
            MemoryConfigKind.SINGLE_DISAGGREGATED,
            MemoryConfigKind.BONDING_DISAGGREGATED,
            MemoryConfigKind.INTERLEAVED,
        )
        results = {
            kind: StreamModel(make_environment(kind)).sustained_bandwidth(
                StreamKernel.COPY, 16
            )
            for kind in kinds
        }
        assert results[MemoryConfigKind.INTERLEAVED] == max(results.values())

    def test_run_covers_all_kernels(self):
        env = make_environment(MemoryConfigKind.INTERLEAVED)
        results = StreamModel(env).run(StreamConfig(threads=8))
        assert set(results) == {"copy", "scale", "add", "triad"}

    def test_reference_kernels_functional(self):
        arrays = stream_reference_kernels(256)
        a, b, c = arrays["a"], arrays["b"], arrays["c"]
        np.testing.assert_allclose(c, a + b)           # add
        np.testing.assert_allclose(arrays["triad"], b + 3.0 * c)

    def test_invalid_thread_count(self):
        env = make_environment(MemoryConfigKind.LOCAL)
        with pytest.raises(ValueError):
            StreamModel(env).sustained_bandwidth(StreamKernel.COPY, 0)


class TestYcsb:
    def test_all_six_workloads_defined(self):
        assert set(YCSB_WORKLOADS) == set("ABCDEF")

    def test_mix_weights_sum_to_one(self):
        for workload in YCSB_WORKLOADS.values():
            total = (
                workload.read
                + workload.update
                + workload.insert
                + workload.scan
                + workload.read_modify_write
            )
            assert total == pytest.approx(1.0)

    def test_paper_grouping_read_intensive(self):
        """§VI-D: B, C, D, E are read-intensive; A, F are mixed."""
        for name in "BCDE":
            assert YCSB_WORKLOADS[name].is_read_intensive, name
        for name in "AF":
            assert not YCSB_WORKLOADS[name].is_read_intensive, name

    def test_workload_a_empirical_mix(self):
        generator = YcsbGenerator(YCSB_WORKLOADS["A"], record_count=1000)
        mix = generator.sample_mix(20_000)
        assert mix[YcsbOperationType.READ] == pytest.approx(0.5, abs=0.02)
        assert mix[YcsbOperationType.UPDATE] == pytest.approx(0.5, abs=0.02)

    def test_workload_c_is_pure_reads(self):
        generator = YcsbGenerator(YCSB_WORKLOADS["C"], record_count=1000)
        mix = generator.sample_mix(5_000)
        assert mix == {YcsbOperationType.READ: 1.0}

    def test_workload_e_scan_lengths_bounded(self):
        generator = YcsbGenerator(YCSB_WORKLOADS["E"], record_count=1000)
        for op in generator.operations(2000):
            if op.op_type is YcsbOperationType.SCAN:
                assert 1 <= op.scan_length <= 100

    def test_inserts_extend_keyspace(self):
        generator = YcsbGenerator(YCSB_WORKLOADS["D"], record_count=100)
        inserted = [
            op.key
            for op in generator.operations(2000)
            if op.op_type is YcsbOperationType.INSERT
        ]
        assert inserted == sorted(inserted)
        assert inserted[0] == 100  # first insert goes after the load keys

    def test_zipfian_keys_are_skewed(self):
        generator = YcsbGenerator(YCSB_WORKLOADS["C"], record_count=10_000)
        keys = [op.key for op in generator.operations(20_000)]
        head_fraction = sum(1 for key in keys if key < 100) / len(keys)
        assert head_fraction > 0.3  # heavy head under zipf(0.99)

    def test_latest_distribution_prefers_recent(self):
        generator = YcsbGenerator(YCSB_WORKLOADS["D"], record_count=10_000)
        reads = [
            op.key
            for op in generator.operations(5_000)
            if op.op_type is YcsbOperationType.READ
        ]
        recent = sum(1 for key in reads if key > 9_000) / len(reads)
        assert recent > 0.5

    def test_bad_mix_rejected(self):
        from repro.workloads.ycsb import YcsbWorkload

        with pytest.raises(ValueError):
            YcsbWorkload("bogus", read=0.5, update=0.2)

    def test_deterministic_stream(self):
        ops_a = list(
            YcsbGenerator(YCSB_WORKLOADS["A"], seed=3).operations(50)
        )
        ops_b = list(
            YcsbGenerator(YCSB_WORKLOADS["A"], seed=3).operations(50)
        )
        assert ops_a == ops_b


class TestEtc:
    def small_config(self):
        return EtcConfig(
            cache_bytes=1 << 20,
            keyspace_bytes=(3 << 20) // 2,
            requests_per_thread=100,
        )

    def test_get_set_ratio(self):
        generator = EtcGenerator(self.small_config())
        ops = list(generator.operations(20_000))
        gets = sum(1 for op in ops if op.op_type is CacheOpType.GET)
        sets = len(ops) - gets
        assert gets / sets == pytest.approx(30.0, rel=0.15)

    def test_warmup_fills_cache(self):
        config = self.small_config()
        generator = EtcGenerator(config)
        total = sum(op.value_bytes + 64 for op in generator.warmup_operations())
        assert total >= config.cache_bytes

    def test_warmup_keys_unique(self):
        generator = EtcGenerator(self.small_config())
        keys = [op.key for op in generator.warmup_operations()]
        assert len(keys) == len(set(keys))

    def test_value_sizes_long_tailed_but_bounded(self):
        generator = EtcGenerator(self.small_config())
        sizes = [generator.value_size() for _ in range(2000)]
        assert min(sizes) >= 16
        assert max(sizes) <= 64 * 1024
        assert 100 <= float(np.median(sizes)) <= 400  # ETC-like body

    def test_expected_hit_ratio_in_paper_band(self):
        """§VI-E: 'an average hit ratio varying from 80% to 82%'."""
        generator = EtcGenerator()  # paper-default 10/15 GiB config
        ratio = generator.expected_hit_ratio(
            model_keys=50_000, model_requests=200_000
        )
        assert 0.78 <= ratio <= 0.84

    def test_keyspace_must_cover_cache(self):
        with pytest.raises(ValueError):
            EtcConfig(cache_bytes=2, keyspace_bytes=1)

    def test_scaled_preserves_ratio(self):
        config = EtcConfig().scaled(0.001)
        assert config.keyspace_bytes / config.cache_bytes == pytest.approx(
            1.5, rel=0.01
        )


class TestEsrally:
    def test_corpus_deterministic(self):
        a = build_corpus(CorpusConfig(documents=100))
        b = build_corpus(CorpusConfig(documents=100))
        assert a == b

    def test_corpus_shape(self):
        posts = build_corpus(CorpusConfig(documents=500))
        assert len(posts) == 500
        assert all(1 <= len(p.tags) <= 5 for p in posts)
        assert all(p.answer_count == len(p.answer_dates) for p in posts)
        assert all(
            all(d >= p.created for d in p.answer_dates) for p in posts
        )

    def test_answer_counts_long_tailed(self):
        posts = build_corpus(CorpusConfig(documents=3000))
        counts = [p.answer_count for p in posts]
        assert max(counts) > 50          # some heavily-answered questions
        assert float(np.median(counts)) <= 2  # most have very few

    def test_query_stream_per_challenge(self):
        generator = NestedTrackGenerator()
        rtq = list(generator.queries(Challenge.RTQ, 10))
        assert all(q.tag is not None for q in rtq)
        rnq = list(generator.queries(Challenge.RNQIHBS, 10))
        assert all(q.min_answers == 100 for q in rnq)
        assert all(q.before_date is not None for q in rnq)
        rstq = list(generator.queries(Challenge.RSTQ, 10))
        assert all(q.sort_by_date for q in rstq)
        ma = list(generator.queries(Challenge.MA, 3))
        assert all(q.tag is None for q in ma)

    def test_query_tags_skewed(self):
        generator = NestedTrackGenerator()
        tags = [q.tag for q in generator.queries(Challenge.RTQ, 3000)]
        top = max(tags.count(t) for t in set(tags))
        assert top / len(tags) > 0.05  # a popular tag dominates
