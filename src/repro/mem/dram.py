"""DRAM device timing model.

Models a memory controller + DIMM group as a service station with a
fixed access latency, a finite number of banks (parallel in-flight
accesses) and a peak data rate. The memory-stealing endpoint masters
transactions into this device exactly like the local CPU does, so both
sides of a ThymesisFlow link contend for the same banks — one of the
second-order effects the paper's donor nodes experience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from .. import accel
from ..obs import trace as _trace
from ..sim.engine import Simulator
from ..sim.resources import Resource
from ..sim.stats import RunningStats
from .address import CACHELINE_BYTES, AddressRange
from .backing import BackingStore

__all__ = ["DramTiming", "DramDevice"]


@dataclass(frozen=True)
class DramTiming:
    """Timing constants for one DRAM device.

    Defaults approximate a POWER9 AC922 local socket: ~85 ns loaded
    access latency and ~120 GiB/s per-socket sustained bandwidth.
    """

    access_latency_s: float = 85e-9
    bandwidth_bytes_per_s: float = 120 * (1 << 30)
    banks: int = 16

    def __post_init__(self):
        if self.access_latency_s < 0:
            raise ValueError(f"negative latency: {self.access_latency_s}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth must be > 0: {self.bandwidth_bytes_per_s}"
            )
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1: {self.banks}")
        # Precomputed service constants for the burst hot path — the
        # same arithmetic the per-access formulation performs, so every
        # downstream timestamp stays bit-identical.
        object.__setattr__(
            self, "line_transfer_s", self.transfer_time(CACHELINE_BYTES)
        )
        object.__setattr__(
            self,
            "burst_service_s",
            self.access_latency_s + self.transfer_time(CACHELINE_BYTES),
        )

    def transfer_time(self, size: int) -> float:
        return size / self.bandwidth_bytes_per_s

    def service_schedule(
        self, starts_s: Sequence[float], line_counts: Sequence[int]
    ) -> Tuple[List[float], List[int]]:
        """Batch service windows for many bursts at once.

        Returns ``(completion instants, bank slots held)`` computed on
        the active accel backend — the vectorized form of what
        :meth:`DramDevice._access_burst` computes per burst. Used by
        batch analysis and the per-backend kernel benchmarks.
        """
        return accel.ops.bank_service_windows(
            starts_s,
            line_counts,
            self.banks,
            self.access_latency_s,
            self.line_transfer_s,
        )


class DramDevice:
    """A timed, functional DRAM: data really lands in a backing store.

    ``read``/``write`` return simulation processes; model code typically
    does ``data = yield dram.read(addr, size)``.
    """

    def __init__(
        self,
        sim: Simulator,
        window: AddressRange,
        timing: Optional[DramTiming] = None,
        name: str = "dram",
    ):
        self.sim = sim
        self.timing = timing or DramTiming()
        self.name = name
        self.backing = BackingStore(window, name=f"{name}.backing")
        self._banks = Resource(sim, self.timing.banks, name=f"{name}.banks")
        self.read_latency = RunningStats(f"{name}.read_latency")
        self.write_latency = RunningStats(f"{name}.write_latency")
        self.reads = 0
        self.writes = 0
        #: Highest concurrent bank occupancy seen (tracked only while
        #: tracing is enabled; stays 0 on the untraced fast path).
        self.peak_banks_in_use = 0

    @property
    def window(self) -> AddressRange:
        return self.backing.window

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector: access counts, latency, bank occupancy."""

        def collect(reg):
            base = dict(device=self.name, **labels)
            reg.gauge("dram.reads", **base).set(self.reads)
            reg.gauge("dram.writes", **base).set(self.writes)
            reg.gauge("dram.banks_in_use", **base).set(self._banks.in_use)
            reg.gauge("dram.banks_peak", **base).set(self.peak_banks_in_use)
            reg.gauge("dram.banks_total", **base).set(self.timing.banks)
            if self.read_latency.count:
                reg.gauge("dram.read_latency_mean_s", **base).set(
                    self.read_latency.mean
                )
            if self.write_latency.count:
                reg.gauge("dram.write_latency_mean_s", **base).set(
                    self.write_latency.mean
                )

        registry.add_collector(collect)

    # -- timed access -----------------------------------------------------------
    def read(self, address: int, size: int = CACHELINE_BYTES):
        """Timed read process: yields, then returns the bytes."""
        return self.sim.process(
            self._access(address, size, None), name=f"{self.name}.read"
        )

    def write(self, address: int, data: bytes):
        """Timed write process."""
        return self.sim.process(
            self._access(address, len(data), data), name=f"{self.name}.write"
        )

    def read_burst(self, address: int, lines: int):
        """Timed batched read of ``lines`` contiguous cachelines.

        Holds one bank per line (capped at the device's bank count) for a
        single per-line service interval: when the burst fits the bank
        pool and no other traffic contends, this completes at exactly the
        instant ``lines`` concurrent per-line reads would.
        """
        return self.sim.process(
            self._access_burst(address, lines, None),
            name=f"{self.name}.read",
        )

    def write_burst(self, address: int, data: bytes):
        """Timed batched write of contiguous cachelines."""
        lines, remainder = divmod(len(data), CACHELINE_BYTES)
        if remainder:
            raise ValueError(
                f"{self.name}: burst writes need whole cachelines, "
                f"got {len(data)} bytes"
            )
        return self.sim.process(
            self._access_burst(address, lines, data),
            name=f"{self.name}.write",
        )

    def _access(
        self, address: int, size: int, data: Optional[bytes]
    ) -> Generator:
        start = self.sim.now
        yield self._banks.acquire()
        if _trace.ENABLED and self._banks.in_use > self.peak_banks_in_use:
            self.peak_banks_in_use = self._banks.in_use
        try:
            service = self.timing.access_latency_s + self.timing.transfer_time(size)
            yield service
            if data is None:
                result = self.backing.read(address, size)
            else:
                self.backing.write(address, data)
                result = None
        finally:
            self._banks.release()
        elapsed = self.sim.now - start
        if data is None:
            self.reads += 1
            self.read_latency.add(elapsed)
        else:
            self.writes += 1
            self.write_latency.add(elapsed)
        return result

    def _access_burst(
        self, address: int, lines: int, data: Optional[bytes]
    ) -> Generator:
        start = self.sim.now
        size = lines * CACHELINE_BYTES
        slots = min(lines, self.timing.banks)
        yield self._banks.acquire(slots)
        if _trace.ENABLED and self._banks.in_use > self.peak_banks_in_use:
            self.peak_banks_in_use = self._banks.in_use
        try:
            # Lines proceed in parallel across banks, so the burst's
            # service time is one per-line interval, not the sum.
            yield self.timing.burst_service_s
            if data is None:
                result = self.backing.read(address, size)
            else:
                self.backing.write(address, data)
                result = None
        finally:
            self._banks.release(slots)
        elapsed = self.sim.now - start
        if data is None:
            self.reads += lines
            self.read_latency.add_repeated(elapsed, lines)
        else:
            self.writes += lines
            self.write_latency.add_repeated(elapsed, lines)
        return result

    # -- immediate (untimed) access for functional-only paths -------------------
    def read_now(self, address: int, size: int = CACHELINE_BYTES) -> bytes:
        return self.backing.read(address, size)

    def write_now(self, address: int, data: bytes) -> None:
        self.backing.write(address, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DramDevice({self.name!r}, window={self.window!r})"
