"""Unit tests for the accel backend registry and its kernels.

Covers backend selection (environment variable, explicit names, numpy
fallback), kernel-level differential equality on randomized inputs, the
``python -m repro backends`` CLI report, the backend-aware sweep
fingerprint, and the zero-copy plumbing the kernels ride on.
"""

import io
import json
import random
from contextlib import redirect_stdout

import pytest

from repro import accel
from repro.accel import python_backend

HAVE_NUMPY = "numpy" in accel.available_backends()

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy backend unavailable"
)


class TestRegistry:
    def test_python_backend_always_available(self):
        assert "python" in accel.available_backends()

    def test_get_backend_unknown_raises(self):
        with pytest.raises(accel.AccelError) as excinfo:
            accel.get_backend("fortran")
        assert "fortran" in str(excinfo.value)
        assert excinfo.value.code == "accel/bad-backend"

    def test_select_backend_unknown_name_raises(self):
        with pytest.raises(accel.AccelError):
            accel.select_backend("fortran")

    def test_use_backend_restores_previous(self):
        before = accel.ops.NAME
        with accel.use_backend("python"):
            assert accel.ops.NAME == "python"
        assert accel.ops.NAME == before

    def test_use_backend_restores_after_exception(self):
        before = accel.ops.NAME
        with pytest.raises(RuntimeError):
            with accel.use_backend("python"):
                raise RuntimeError("boom")
        assert accel.ops.NAME == before

    def test_backend_info_shape(self):
        info = accel.backend_info()
        assert set(info) == {
            "selected",
            "requested",
            "env_var",
            "env_value",
            "available",
            "numpy_version",
            "numpy_import_error",
            "fallback_reason",
        }
        assert info["selected"] in info["available"]
        assert info["env_var"] == "REPRO_BACKEND"

    def test_accel_error_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(accel.AccelError, ReproError)


class TestKernelDifferential:
    """Randomized exact-equality checks: numpy kernel == reference."""

    @requires_numpy
    def test_serialization_schedule_bit_identical(self):
        from repro.accel import numpy_backend

        rng = random.Random(20260808)
        for count in (0, 1, 7, 8, 9, 100, 5000):
            sizes = [rng.randrange(1, 4096) for _ in range(count)]
            start = rng.random() * 1e-3
            rate = 9.6969696969e10
            assert numpy_backend.serialization_schedule(
                start, sizes, rate
            ) == python_backend.serialization_schedule(start, sizes, rate)

    @requires_numpy
    def test_frame_digest_bit_identical(self):
        from repro.accel import numpy_backend

        rng = random.Random(42)
        for _ in range(50):
            entries = [
                (
                    rng.randrange(1, 1 << 40),
                    rng.randrange(1, 8),
                    rng.choice([1, 1, 1, 2, 4, 16, 64]),
                )
                for _ in range(rng.randrange(0, 24))
            ]
            identity = rng.randrange(-1, 1 << 32)
            assert numpy_backend.frame_digest(
                identity, entries
            ) == python_backend.frame_digest(identity, entries)

    @requires_numpy
    def test_bank_service_windows_bit_identical(self):
        from repro.accel import numpy_backend

        rng = random.Random(7)
        for count in (0, 3, 8, 500):
            starts = [rng.random() * 1e-2 for _ in range(count)]
            lines = [rng.randrange(1, 64) for _ in range(count)]
            assert numpy_backend.bank_service_windows(
                starts, lines, 16, 85e-9, 1e-9
            ) == python_backend.bank_service_windows(
                starts, lines, 16, 85e-9, 1e-9
            )

    def test_reference_schedule_matches_loop_semantics(self):
        bounds = python_backend.serialization_schedule(1.0, [64, 128], 1e9)
        assert bounds[0] == 1.0
        assert bounds[1] == 1.0 + 64 * 8 / 1e9
        assert bounds[2] == bounds[1] + 128 * 8 / 1e9

    def test_reference_digest_matches_legacy_helper(self):
        """The backend kernel must reproduce net.crc.frame_digest_bytes."""
        from repro.net.crc import frame_digest_bytes

        entries = [(5, 1, 1), (6, 2, 4), (100, 1, 1)]
        signature = []
        for txn_id, command_value, burst in entries:
            for line in range(burst):
                signature.append((txn_id + line) * 131 + command_value)
        assert python_backend.frame_digest(77, entries) == (
            frame_digest_bytes(77, signature)
        )


class TestStatsAddRepeated:
    def test_matches_sequential_adds_exactly(self):
        from repro.sim.stats import RunningStats

        loop = RunningStats("loop")
        batch = RunningStats("batch")
        rng = random.Random(3)
        for _ in range(25):
            value = rng.random() * 1e-6
            count = rng.randrange(1, 9)
            for _ in range(count):
                loop.add(value)
            batch.add_repeated(value, count)
        assert batch.count == loop.count
        assert batch.total == loop.total
        assert batch.mean == loop.mean
        assert batch.variance == loop.variance
        assert batch.minimum == loop.minimum
        assert batch.maximum == loop.maximum

    def test_latency_recorder_add_repeated(self):
        from repro.sim.stats import LatencyRecorder

        loop = LatencyRecorder("loop")
        batch = LatencyRecorder("batch")
        for value, count in [(3.0, 4), (1.0, 2), (2.0, 3)]:
            for _ in range(count):
                loop.add(value)
            batch.add_repeated(value, count)
        assert batch.count == loop.count
        assert batch.percentile(50) == loop.percentile(50)
        assert batch.cdf() == loop.cdf()

    def test_zero_and_negative_counts_are_noops(self):
        from repro.sim.stats import RunningStats

        stats = RunningStats()
        stats.add_repeated(5.0, 0)
        stats.add_repeated(5.0, -3)
        assert stats.count == 0


class TestZeroCopyPlumbing:
    def test_split_burst_aliases_parent_payload(self):
        from repro.opencapi.transactions import MemTransaction, split_burst

        blob = bytes(range(256)) * 2  # 4 cachelines
        txn = MemTransaction.write_burst(0x1000, blob)
        view = split_burst(txn, 1, 2)
        assert isinstance(view.data, memoryview)
        assert view.data.obj is blob  # aliases, not a copy
        assert bytes(view.data) == blob[128:384]
        assert view.txn_id == txn.txn_id + 1
        assert view.address == 0x1000 + 128
        assert view.burst == 2
        assert view.burst_offset == 1

    def test_split_burst_of_split_stays_zero_copy(self):
        from repro.opencapi.transactions import MemTransaction, split_burst

        blob = bytes(range(256)) * 4  # 8 lines
        txn = MemTransaction.write_burst(0, blob)
        inner = split_burst(split_burst(txn, 2, 4), 1, 2)
        assert inner.data.obj is blob
        assert bytes(inner.data) == blob[3 * 128 : 5 * 128]
        assert inner.base_txn_id == txn.txn_id

    def test_split_burst_bounds_still_enforced(self):
        from repro.opencapi.transactions import MemTransaction, split_burst

        txn = MemTransaction.read_burst(0, 4)
        with pytest.raises(ValueError):
            split_burst(txn, 3, 2)

    def test_txn_id_reservation_still_consecutive(self):
        from repro.opencapi.transactions import MemTransaction

        single = MemTransaction.read(0)
        burst = MemTransaction.read_burst(0, 5)
        after = MemTransaction.read(0)
        assert burst.txn_id == single.txn_id + 1
        assert after.txn_id == burst.txn_id + 5

    def test_addressed_wire_bytes_buffer_fallback(self):
        from repro.net.packet import Addressed

        assert Addressed(0, b"x" * 200).wire_bytes == 200
        assert Addressed(0, memoryview(b"y" * 64)[:32]).wire_bytes == 32
        assert Addressed(0, object()).wire_bytes == 64

        class Sized:
            wire_bytes = 999

        assert Addressed(0, Sized()).wire_bytes == 999

    def test_backing_read_view_is_zero_copy(self):
        from repro.mem.address import AddressRange
        from repro.mem.backing import BackingStore

        store = BackingStore(AddressRange(0, 1 << 20))
        store.write(0x100, b"\xab" * 64)
        view = store.read_view(0x100, 64)
        assert isinstance(view, memoryview)
        assert view.readonly
        assert bytes(view) == b"\xab" * 64
        # The view aliases the live chunk: a later write shows through.
        store.write(0x100, b"\xcd" * 64)
        assert bytes(view) == b"\xcd" * 64

    def test_backing_read_view_falls_back_across_chunks(self):
        from repro.mem.address import AddressRange
        from repro.mem.backing import BackingStore

        store = BackingStore(AddressRange(0, 1 << 20), chunk_bytes=4096)
        store.write(4096 - 32, b"\x11" * 64)
        view = store.read_view(4096 - 32, 64)
        assert bytes(view) == b"\x11" * 64

    def test_backing_straddling_read_matches_writes(self):
        from repro.mem.address import AddressRange
        from repro.mem.backing import BackingStore

        store = BackingStore(AddressRange(0, 1 << 20), chunk_bytes=4096)
        blob = bytes(range(256)) * 48  # 12 KiB: spans 4 chunks
        store.write(1000, blob)
        assert store.read(1000, len(blob)) == blob
        # Untouched tail still reads as zeros.
        assert store.read(1000 + len(blob), 64) == bytes(64)

    def test_backing_copy_range_across_stores(self):
        from repro.mem.address import AddressRange
        from repro.mem.backing import BackingStore

        src = BackingStore(AddressRange(0, 1 << 20))
        dst = BackingStore(AddressRange(0, 1 << 20))
        src.write(0x40, b"\x5a" * 256)
        src.copy_range(0x40, 0x80, 256, other=dst)
        assert dst.read(0x80, 256) == b"\x5a" * 256


class TestSweepFingerprint:
    def test_fingerprint_differs_across_backends(self):
        from repro.sweep import make_spec

        with accel.use_backend("python"):
            spec_py = make_spec("slice:fig8.config", samples=10)
        spec_active = make_spec("slice:fig8.config", samples=10)
        if HAVE_NUMPY and accel.ops.NAME == "numpy":
            assert spec_py.fingerprint != spec_active.fingerprint
            assert spec_py.key != spec_active.key
        # Same backend twice -> identical key (cache still coheres).
        with accel.use_backend("python"):
            assert make_spec(
                "slice:fig8.config", samples=10
            ).key == spec_py.key

    def test_explicit_fingerprint_untouched(self):
        from repro.sweep import make_spec

        spec = make_spec("slice:fig8.config", fingerprint="pinned")
        assert spec.fingerprint == "pinned"


class TestBackendsCli:
    def _run(self, argv):
        from repro.__main__ import main

        stream = io.StringIO()
        with redirect_stdout(stream):
            code = main(argv)
        return code, stream.getvalue()

    def test_text_report(self):
        code, out = self._run(["backends"])
        assert code == 0
        assert "selected backend : " + accel.ops.NAME in out
        assert "REPRO_BACKEND" in out
        assert "available" in out

    def test_json_report_round_trips(self):
        code, out = self._run(["backends", "--json"])
        assert code == 0
        info = json.loads(out)
        assert info == json.loads(json.dumps(accel.backend_info()))

    def test_listed_in_help(self):
        from repro.__main__ import _build_parser

        stream = io.StringIO()
        with redirect_stdout(stream):
            _build_parser().print_help()
        assert "backends" in stream.getvalue()
