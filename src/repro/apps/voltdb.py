"""VoltDB-like in-memory RDBMS model — paper §VI-D, Figs. 6 and 7.

Two layers, like the other application models:

* :class:`VoltDb` — a **functional** partitioned store in the H-Store
  mould: SQL-table rows hashed across partitions, each partition owned
  by one single-threaded executor (serializable per partition by
  construction). Used to run real YCSB operation streams in tests.
* :class:`VoltDbModel` — the **performance** model regenerating the
  paper's profiling (IPC / utilized cores / stall fractions, Fig. 6)
  and throughput (Fig. 7). Throughput is the soft-min of three
  capacity bounds (partition executors, the server response path, the
  shared YCSB client node); UCC follows H-Store's busy-polling
  executors; IPC weights executor, response-path and polling threads by
  their busy time. Back-end stall fractions come straight from the
  CPI stack (§VI-D reports 55.5 % local vs 80.9 % single-disaggregated;
  the model's VoltDB profile is calibrated to land there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..mem.cache import AccessProfile
from ..perf.cpi import CpiModel
from ..testbed.configurations import (
    AccessEnvironment,
    MemoryConfigKind,
    make_environment,
)
from ..workloads.ycsb import (
    YCSB_WORKLOADS,
    YcsbOperation,
    YcsbOperationType,
    YcsbWorkload,
)

__all__ = ["VoltDb", "VoltDbModel", "VoltDbMetrics", "WORKLOAD_PROFILES"]


# --------------------------------------------------------------------------- #
# Functional layer                                                            #
# --------------------------------------------------------------------------- #
class VoltDb:
    """Partitioned, serializable in-memory store (H-Store execution model).

    Rows are dictionaries keyed by integer primary key; the partition of
    a key is ``hash(key) % partitions``. Each partition executes its
    transactions serially (we model that by bumping a per-partition
    logical clock); single-key YCSB operations are single-partition
    transactions by construction.
    """

    def __init__(self, partitions: int = 8):
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1: {partitions}")
        self.partitions = partitions
        self._data: List[Dict[int, Dict[str, str]]] = [
            {} for _ in range(partitions)
        ]
        self._partition_clock = [0] * partitions
        self.committed = 0

    def partition_of(self, key: int) -> int:
        return key % self.partitions

    # -- transactional operations -----------------------------------------------------
    def read(self, key: int) -> Optional[Dict[str, str]]:
        row = self._data[self._touch(key)].get(key)
        return dict(row) if row is not None else None

    def insert(self, key: int, row: Dict[str, str]) -> None:
        self._data[self._touch(key)][key] = dict(row)

    def update(self, key: int, fields: Dict[str, str]) -> bool:
        partition = self._touch(key)
        row = self._data[partition].get(key)
        if row is None:
            return False
        row.update(fields)
        return True

    def read_modify_write(self, key: int, field_name: str,
                          value: str) -> bool:
        partition = self._touch(key)
        row = self._data[partition].get(key)
        if row is None:
            return False
        _ = row.get(field_name)
        row[field_name] = value
        return True

    def scan(self, start_key: int, length: int) -> List[Dict[str, str]]:
        """Ordered scan across partitions (multi-partition transaction)."""
        for partition in range(self.partitions):
            self._partition_clock[partition] += 1
        self.committed += 1
        rows = []
        key = start_key
        scanned = 0
        limit = start_key + length * 50  # bounded probe window
        while scanned < length and key < limit:
            row = self._data[self.partition_of(key)].get(key)
            if row is not None:
                rows.append(dict(row))
                scanned += 1
            key += 1
        return rows

    def execute(self, operation: YcsbOperation) -> object:
        """Run one YCSB operation against the store."""
        op = operation.op_type
        if op is YcsbOperationType.READ:
            return self.read(operation.key)
        if op is YcsbOperationType.UPDATE:
            return self.update(operation.key, {"field0": "updated"})
        if op is YcsbOperationType.INSERT:
            self.insert(operation.key, {"field0": f"value{operation.key}"})
            return True
        if op is YcsbOperationType.SCAN:
            return self.scan(operation.key, operation.scan_length)
        if op is YcsbOperationType.READ_MODIFY_WRITE:
            return self.read_modify_write(operation.key, "field0", "rmw")
        raise ValueError(f"unknown operation {operation!r}")

    def _touch(self, key: int) -> int:
        partition = self.partition_of(key)
        self._partition_clock[partition] += 1
        self.committed += 1
        return partition

    @property
    def rows(self) -> int:
        return sum(len(p) for p in self._data)

    def partition_sizes(self) -> List[int]:
        return [len(p) for p in self._data]

    def partition_clocks(self) -> List[int]:
        return list(self._partition_clock)


# --------------------------------------------------------------------------- #
# Performance layer                                                           #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class VoltDbWorkloadProfile:
    """Calibrated per-workload execution characteristics.

    ``executor_profile`` drives the CPI stack of partition executors
    (the component the §VI-D campaign is about: calibrated so the
    back-end stall fraction is ≈55 % local and ≈81 % single-remote).
    ``client_cap_ops`` is the shared YCSB client node's processing
    bound — the reason throughput saturates long before executors do
    ("we measured the network … not saturated; with 500 clients VoltDB
    exhibits the same behavior").
    """

    executor_instructions: float
    executor_profile: AccessProfile
    response_instructions: float
    client_cap_ops: float
    #: Share of the client-bound pipeline executed by server threads
    #: (and therefore sensitive to the memory configuration). Workload E
    #: is client-dominated (large scan results), so its share is small.
    client_server_share: float = 0.15


#: The executor memory profile shared by key-value workloads: tuned so
#: the CPI stack reproduces the measured 55.5 % → 80.9 % stall growth.
_KV_EXECUTOR_PROFILE = AccessProfile(
    memory_instruction_fraction=0.35,
    llc_miss_ratio=0.019,
    write_fraction=0.40,
    write_stall_factor=0.25,
)

#: Scans stream rows sequentially — hardware prefetch keeps the miss
#: ratio very low, which is why workload E barely feels disaggregation
#: at any partition count (Fig. 7: "throughput is similar for all
#: configurations").
_SCAN_EXECUTOR_PROFILE = AccessProfile(
    memory_instruction_fraction=0.40,
    llc_miss_ratio=0.0015,
    write_fraction=0.05,
    write_stall_factor=0.25,
)

WORKLOAD_PROFILES: Dict[str, VoltDbWorkloadProfile] = {
    "A": VoltDbWorkloadProfile(62_000, _KV_EXECUTOR_PROFILE, 24_000, 150_000),
    "B": VoltDbWorkloadProfile(55_000, _KV_EXECUTOR_PROFILE, 24_000, 160_000),
    "C": VoltDbWorkloadProfile(52_000, _KV_EXECUTOR_PROFILE, 24_000, 165_000),
    "D": VoltDbWorkloadProfile(55_000, _KV_EXECUTOR_PROFILE, 24_000, 160_000),
    "E": VoltDbWorkloadProfile(1_500_000, _SCAN_EXECUTOR_PROFILE, 180_000,
                               11_000, client_server_share=0.05),
    "F": VoltDbWorkloadProfile(70_000, _KV_EXECUTOR_PROFILE, 24_000, 140_000),
}

#: The response path (network handlers, txn init) is cache-friendly.
_RESPONSE_PROFILE = AccessProfile(
    memory_instruction_fraction=0.30,
    llc_miss_ratio=0.006,
    write_fraction=0.30,
    write_stall_factor=0.25,
)

#: H-Store executors busy-poll their work queues before yielding; the
#: polling floor keeps idle executors partially "utilized" in task-clock
#: terms, which is why UCC grows with the partition count (Fig. 6).
_SPIN_FLOOR = 0.25
_SPIN_IPC = 0.35
_BASE_SERVICE_CORES = 1.5
_RESPONSE_THREADS = 8
#: Inter-node coordination overhead of the two-node cluster (scale-out).
_SCALE_OUT_COORDINATION = 0.06

#: Reference environment for configuration-relative CPI ratios.
_LOCAL_ENV = make_environment(MemoryConfigKind.LOCAL)


@dataclass(frozen=True)
class VoltDbMetrics:
    """Everything Figs. 6 and 7 plot for one (workload, config, P)."""

    workload: str
    kind: MemoryConfigKind
    partitions: int
    throughput_ops: float
    thread_ipc: float
    utilized_cores: float
    backend_stall_fraction: float
    executor_ipc: float

    @property
    def package_ipc(self) -> float:
        """§VI-D: package IPC = single-thread IPC × UCC."""
        return self.thread_ipc * self.utilized_cores

    def to_perf_sample(
        self, wall_clock_s: float = 1.0, frequency_hz: float = 3.8e9
    ):
        """Express these metrics as raw perf counters (§VI-D methodology).

        Produces exactly the events the paper's campaign collected:
        cycles from busy-core-seconds, instructions from the thread IPC,
        task-clock from UCC, back-end stalls from the executor stack.
        """
        from ..perf.counters import PerfSample

        task_clock = self.utilized_cores * wall_clock_s
        cycles = task_clock * frequency_hz
        return PerfSample(
            instructions=self.thread_ipc * cycles,
            cycles=cycles,
            task_clock_s=task_clock,
            wall_clock_s=wall_clock_s,
            stalled_cycles_backend=self.backend_stall_fraction * cycles,
        )


def _softmin(values: Iterable[float], sharpness: float = 4.0) -> float:
    """Smooth minimum of capacity bounds (p-norm in inverse space)."""
    total = sum(value ** (-sharpness) for value in values if value > 0)
    return total ** (-1.0 / sharpness)


class VoltDbModel:
    """Analytic VoltDB under one §VI-A memory configuration."""

    def __init__(
        self,
        environment: AccessEnvironment,
        partitions: int,
        cpi: Optional[CpiModel] = None,
    ):
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1: {partitions}")
        self.environment = environment
        self.partitions = partitions
        self.cpi = cpi or CpiModel()

    # -- component times -----------------------------------------------------------------
    def _executor(self, profile: VoltDbWorkloadProfile):
        breakdown = self.cpi.evaluate(
            profile.executor_profile, self.environment
        )
        service = profile.executor_instructions / (
            breakdown.ipc * self.cpi.frequency_hz
        )
        return breakdown, service

    def _response(self, profile: VoltDbWorkloadProfile):
        breakdown = self.cpi.evaluate(_RESPONSE_PROFILE, self.environment)
        service = profile.response_instructions / (
            breakdown.ipc * self.cpi.frequency_hz
        )
        return breakdown, service

    # -- evaluation -----------------------------------------------------------------------
    def evaluate(self, workload_name: str) -> VoltDbMetrics:
        if workload_name not in WORKLOAD_PROFILES:
            raise KeyError(f"unknown YCSB workload {workload_name!r}")
        profile = WORKLOAD_PROFILES[workload_name]
        env = self.environment
        exec_breakdown, exec_service = self._executor(profile)
        resp_breakdown, resp_service = self._response(profile)

        instances = env.instances
        partitions_per_instance = max(1, self.partitions // instances)
        executor_cap = instances * partitions_per_instance / exec_service
        response_cap = instances * _RESPONSE_THREADS / resp_service
        # The client bound is a pipeline shared by every configuration
        # (one YCSB node), but a slice of it runs on server threads whose
        # speed tracks the memory configuration via the response-path CPI.
        local_resp = self.cpi.evaluate(_RESPONSE_PROFILE, _LOCAL_ENV)
        cpi_ratio = resp_breakdown.total_cpi / local_resp.total_cpi
        share = profile.client_server_share
        client_cap = profile.client_cap_ops / (
            (1.0 - share) + share * cpi_ratio
        )
        if env.kind is MemoryConfigKind.SCALE_OUT:
            # The shared client node also funnels through cluster
            # routing; coordination skims a few percent (§VI-D).
            client_cap = client_cap / (1.0 + _SCALE_OUT_COORDINATION)
        throughput = _softmin([executor_cap, response_cap, client_cap])

        # Utilized cores: executors (work + polling floor) + response
        # path + background service threads.
        per_executor_work = throughput * exec_service / self.partitions
        executor_utilization = min(1.0, per_executor_work + _SPIN_FLOOR)
        executor_cores = self.partitions * executor_utilization
        response_cores = throughput * resp_service
        utilized = min(
            env.total_cores,
            executor_cores + response_cores + _BASE_SERVICE_CORES * instances,
        )

        # Busy-time-weighted thread IPC across the three thread classes.
        work_share = self.partitions * min(1.0, per_executor_work)
        spin_share = executor_cores - work_share
        shares_and_ipcs = [
            (max(work_share, 0.0), exec_breakdown.ipc),
            (max(spin_share, 0.0), _SPIN_IPC),
            (response_cores, resp_breakdown.ipc),
            (_BASE_SERVICE_CORES * instances, 1.0),
        ]
        total_share = sum(share for share, _ipc in shares_and_ipcs)
        thread_ipc = (
            sum(share * ipc for share, ipc in shares_and_ipcs) / total_share
        )

        return VoltDbMetrics(
            workload=workload_name,
            kind=env.kind,
            partitions=self.partitions,
            throughput_ops=throughput,
            thread_ipc=thread_ipc,
            utilized_cores=utilized,
            backend_stall_fraction=exec_breakdown.backend_stall_fraction,
            executor_ipc=exec_breakdown.ipc,
        )
