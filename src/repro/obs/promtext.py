"""Prometheus text-format exposition for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the standard
`text exposition format`__ (version 0.0.4) that every Prometheus-style
scraper understands, and provides a **strict** parser of the same
format used by the test suite to prove the rendering round-trips.

__ https://prometheus.io/docs/instrumenting/exposition_formats/

Name mapping: the registry's dotted hierarchy (``endpoint.rtt_s``)
becomes the Prometheus-legal ``endpoint_rtt_s`` — every character
outside ``[a-zA-Z0-9_:]`` maps to ``_`` — and the original dotted name
is preserved on the ``# HELP`` line so a scrape stays traceable to the
registry. Labels keep their keys (sanitized the same way) and carry
their values quoted with the standard ``\\``/``\"``/``\\n`` escapes.

Histograms render the full conventional family: cumulative
``_bucket{le="..."}`` series (underflow folds into the first bucket,
overflow into ``+Inf``), plus ``_sum`` and ``_count``. The parser
checks the invariants scrapers rely on: one ``# TYPE`` per family,
declared before its samples; legal metric/label names; no duplicate
series; bucket cumulativity; and ``_count`` equal to the ``+Inf``
bucket.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

from .metrics import HistogramMetric, MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "PromParseError",
    "metric_name",
    "render_prometheus",
    "parse_prometheus",
]

#: The content type a real HTTP exposition endpoint must answer with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)(?:\s+(-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class PromParseError(ValueError):
    """Strict-parser rejection; message carries the offending line."""


def metric_name(dotted: str) -> str:
    """Sanitize a dotted registry name into a legal Prometheus name."""
    name = _NAME_BAD.sub("_", dotted)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _label_name(key: str) -> str:
    key = _LABEL_BAD.sub("_", key)
    if not key or key[0].isdigit():
        key = "_" + key
    return key


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\":
            if index + 1 >= len(value):
                raise PromParseError(f"dangling escape in label {value!r}")
            nxt = value[index + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise PromParseError(
                    f"illegal escape \\{nxt} in label {value!r}"
                )
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{_label_name(k)}="{_escape_label(v)}"' for k, v in pairs
    )
    return "{" + inner + "}"


# -- rendering --------------------------------------------------------------------


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the full registry in the text exposition format.

    Runs every registered collector first (the pull side), so the
    output reflects live component counters exactly like
    ``registry.snapshot()`` does. An empty registry renders as the
    empty string — a valid (sample-free) exposition.
    """
    registry.collect()
    # Group metrics into families keyed by the sanitized name; a family
    # has exactly one kind (TYPE) — a dotted-name collision that maps
    # two kinds onto one family is a registry bug worth failing loudly.
    families: Dict[str, Dict[str, Any]] = {}
    for metric in registry.metrics():
        name = metric_name(metric.name)
        family = families.get(name)
        if family is None:
            families[name] = family = {
                "kind": metric.kind,
                "dotted": metric.name,
                "metrics": [],
            }
        elif family["kind"] != metric.kind:
            raise ValueError(
                f"metrics {family['dotted']!r} and {metric.name!r} both "
                f"render as {name!r} but have kinds "
                f"{family['kind']}/{metric.kind}"
            )
        family["metrics"].append(metric)

    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        kind = family["kind"]
        lines.append(f"# HELP {name} repro metric {family['dotted']!r}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in family["metrics"]:
            labels = list(metric.labels)
            if kind == "histogram":
                lines.extend(_render_histogram(name, labels, metric))
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(metric.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _render_histogram(
    name: str, labels: List[Tuple[str, str]], metric: HistogramMetric
) -> List[str]:
    lines = []
    cumulative = metric.underflow
    for index, bucket in enumerate(metric.counts):
        cumulative += bucket
        edge = metric.low + (index + 1) * metric._width
        pairs = labels + [("le", _format_value(edge))]
        lines.append(f"{name}_bucket{_format_labels(pairs)} {cumulative}")
    pairs = labels + [("le", "+Inf")]
    lines.append(
        f"{name}_bucket{_format_labels(pairs)} "
        f"{cumulative + metric.overflow}"
    )
    lines.append(
        f"{name}_sum{_format_labels(labels)} {_format_value(metric.total)}"
    )
    lines.append(f"{name}_count{_format_labels(labels)} {metric.count}")
    return lines


# -- strict parsing ---------------------------------------------------------------


def _parse_value(text: str, line: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PromParseError(f"bad sample value {text!r} in: {line}")


def _parse_labels(block: str, line: str) -> Tuple[Tuple[str, str], ...]:
    inner = block[1:-1]
    if not inner:
        return ()
    pairs: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(inner):
        match = _LABEL_PAIR_RE.match(inner, pos)
        if match is None:
            raise PromParseError(f"bad label syntax in: {line}")
        pairs.append((match.group(1), _unescape_label(match.group(2))))
        pos = match.end()
        if pos < len(inner):
            if inner[pos] != ",":
                raise PromParseError(f"bad label separator in: {line}")
            pos += 1
    names = [k for k, _v in pairs]
    if len(set(names)) != len(names):
        raise PromParseError(f"duplicate label name in: {line}")
    return tuple(pairs)


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    """Resolve a sample name to its declared family, if any."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Strictly parse a text exposition; raises :class:`PromParseError`.

    Enforced invariants:

    * legal metric and label names, legal quoting/escapes, parseable
      float values (``+Inf``/``-Inf``/``NaN`` included);
    * exactly one ``# TYPE`` per family, declared **before** any of the
      family's samples; every sample belongs to a declared family;
    * no duplicate ``(name, labelset)`` series;
    * per histogram labelset: ``le`` edges strictly increasing with
      cumulative non-decreasing bucket values, a ``+Inf`` bucket, and
      ``_count`` equal to it, plus a ``_sum`` series.

    Returns ``{"types": {family: type}, "helps": {family: text},
    "samples": {(name, labelset): value}}`` with labelsets as sorted
    tuples of ``(key, value)`` pairs.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    sampled_families = set()

    for raw in text.splitlines():
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise PromParseError(f"malformed TYPE line: {line}")
            _h, _t, name, kind = parts
            if not _NAME_RE.match(name):
                raise PromParseError(f"illegal family name in: {line}")
            if kind not in _TYPES:
                raise PromParseError(f"unknown type {kind!r} in: {line}")
            if name in types:
                raise PromParseError(f"duplicate TYPE for family {name!r}")
            if name in sampled_families:
                raise PromParseError(
                    f"TYPE for {name!r} declared after its samples"
                )
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise PromParseError(f"malformed HELP line: {line}")
            helps[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PromParseError(f"malformed sample line: {line}")
        name, label_block, value_text, _timestamp = match.groups()
        labels = (
            _parse_labels(label_block, line) if label_block else ()
        )
        value = _parse_value(value_text, line)
        family = _family_of(name, types)
        if family is None:
            raise PromParseError(
                f"sample {name!r} has no preceding TYPE declaration"
            )
        sampled_families.add(family)
        key = (name, tuple(sorted(labels)))
        if key in samples:
            raise PromParseError(
                f"duplicate series {name}{dict(labels)!r}"
            )
        samples[key] = value

    _check_histograms(types, samples)
    return {"types": types, "helps": helps, "samples": samples}


def _check_histograms(
    types: Dict[str, str],
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float],
) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        # Group this family's bucket series by their non-le labelset.
        buckets: Dict[Tuple, List[Tuple[float, float]]] = {}
        for (name, labels), value in samples.items():
            if name != family + "_bucket":
                continue
            le = [v for k, v in labels if k == "le"]
            if len(le) != 1:
                raise PromParseError(
                    f"histogram {family!r} bucket without le label"
                )
            rest = tuple(p for p in labels if p[0] != "le")
            edge = _parse_value(le[0], f"{name}{dict(labels)!r}")
            buckets.setdefault(rest, []).append((edge, value))
        for rest, series in buckets.items():
            series.sort(key=lambda pair: pair[0])
            edges = [edge for edge, _v in series]
            if len(set(edges)) != len(edges):
                raise PromParseError(
                    f"histogram {family!r} has duplicate le edges"
                )
            if not math.isinf(edges[-1]):
                raise PromParseError(
                    f"histogram {family!r} is missing its +Inf bucket"
                )
            values = [value for _e, value in series]
            if any(b < a for a, b in zip(values, values[1:])):
                raise PromParseError(
                    f"histogram {family!r} buckets are not cumulative"
                )
            count = samples.get((family + "_count", rest))
            if count is None:
                raise PromParseError(
                    f"histogram {family!r} is missing _count"
                )
            if count != values[-1]:
                raise PromParseError(
                    f"histogram {family!r}: _count {count} != +Inf "
                    f"bucket {values[-1]}"
                )
            if (family + "_sum", rest) not in samples:
                raise PromParseError(
                    f"histogram {family!r} is missing _sum"
                )
