"""End-to-end chaos scenarios: seeded, deterministic, self-checking.

Each scenario builds a rack, attaches disaggregated memory, arms a
fault campaign against the lender's fault domain, drives a STREAM-like
write/read workload through the failure, and (where the fault is fatal)
executes a monitored failover. Scenarios return a JSON-able result
dict whose ``metrics`` block is a sorted snapshot of the metrics
registry — two runs with the same seed produce byte-identical JSON,
which the chaos-smoke CI job diffs.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from ..control.health import HealthMonitor
from ..core.endpoints import RetryPolicy
from ..errors import RemoteMemoryError, ReproError
from ..obs import events as _events
from ..obs.metrics import MetricsRegistry
from ..obs.slo import SloEngine, parse_slo_specs
from ..opencapi.transactions import reset_txn_ids
from ..sim.rng import SeededRNG
from ..testbed.rack import RackTestbed
from .campaigns import Brownout, LinkFlap, LinkKill, ensure_injector
from .journal import ResilientBuffer

__all__ = ["SCENARIOS", "SCENARIO_SLOS", "run_scenario"]

KIB = 1024

#: Endpoint recovery knobs shared by the scenarios: three attempts with
#: a tight timeout keeps failure detection inside a few hundred µs.
_TIMEOUT_S = 20e-6
_POLICY = RetryPolicy(
    max_attempts=3, backoff_base_s=2e-6, multiplier=2.0,
    backoff_max_s=20e-6,
)

#: Per-scenario service-level objectives, evaluated against the final
#: registry snapshot. ``zero-faults`` in the kill scenario is the CI
#: canary: a link kill *must* record at least one datapath failure, so
#: that objective deterministically breaches — proving breach
#: detection and its correlated event-log entry end to end. The other
#: objectives are real invariants: exactly one failover heals the
#: attachment, the journal replays the buffer, and recovery stays
#: inside a generous 5 ms ceiling.
SCENARIO_SLOS: Dict[str, tuple] = {
    "link-kill-failover": (
        "zero-faults: health.failures_observed{component=health} == 0",
        "single-failover: health.failovers{component=health} <= 1",
        "journal-replayed: health.replayed_bytes{component=health} >= 1",
        "failover-recovery:"
        " health.last_recovery_time_s{component=health} <= 5e-3",
    ),
    "link-flap": (
        "no-failover: health.failovers{component=health} == 0",
        "no-dead-attachments:"
        " health.attachments_dead{component=health} == 0",
    ),
    "brownout": (
        "no-failover: health.failovers{component=health} == 0",
        "no-dead-attachments:"
        " health.attachments_dead{component=health} == 0",
    ),
}


def _finish(scenario: str, rack, attachment, registry,
            result: Dict) -> Dict:
    """Evaluate the scenario's SLOs and attach telemetry to the result.

    SLO evaluation runs while the event log is still open, so breach
    events land in the journal with the scenario and attachment as
    correlation context; the journal is then closed and embedded. Both
    blocks are pure sim-time artifacts — seeded runs stay
    byte-identical, which the chaos-smoke CI job diffs.
    """
    engine = SloEngine(parse_slo_specs(SCENARIO_SLOS[scenario]))
    report = engine.evaluate(
        registry,
        now=rack.sim.now,
        context={
            "scenario": scenario,
            "attachment": attachment.attachment_id,
        },
    )
    log = _events.disable_events()
    result["slo"] = report.describe()
    result["events"] = log.to_dicts() if log is not None else []
    return result


def _build_rack(seed: int):
    """3-node rack with a monitored, journaled attachment 1 -> 0."""
    # The event journal embeds transaction ids (its correlation link to
    # trace spans); rewinding the global counter here makes a seeded
    # scenario's artifact byte-identical no matter what ran earlier in
    # the same process.
    reset_txn_ids()
    rack = RackTestbed(nodes=3, channels_per_node=2)
    attachment = rack.attach("node0", 2 * 1024 * KIB,
                             memory_host="node1")
    endpoint = rack.node("node0").device.compute
    endpoint.transaction_timeout_s = _TIMEOUT_S
    endpoint.retry_policy = _POLICY
    buffer = ResilientBuffer.attach_buffer(rack, attachment,
                                           size=64 * KIB)
    monitor = HealthMonitor(rack)
    monitor.watch(attachment, buffer=buffer)
    registry = MetricsRegistry()
    rack.register_observability(registry)
    monitor.register_metrics(registry)
    return rack, attachment, buffer, monitor, registry


def _payload(seed: int, size: int) -> bytes:
    return random.Random(seed).randbytes(size)


def _arm(rack, campaign, hostname: str, seed: int) -> None:
    rng = SeededRNG(seed).derive("chaos")
    injectors = [
        ensure_injector(link, rng.derive(link.name))
        for link in rack.links_of(hostname)
    ]
    campaign.arm(rack.sim, injectors,
                 agent=rack.node(hostname).agent)


def run_link_kill_failover(seed: int = 7) -> Dict:
    """Permanent lender link death mid-workload, healed by failover.

    Acceptance-criteria scenario: after the kill, writes exhaust the
    retry budget and raise; the monitor fails the attachment over to
    the surviving lender; the journal replay makes the new lender's
    bytes identical; a final drain proves nothing is left hanging.
    """
    # The journal opens before the rack is built so the initial
    # control.steal/control.attach events are captured too; _finish
    # closes it (the finally is exception-path cleanup only).
    _events.enable_events()
    try:
        rack, attachment, buffer, monitor, registry = _build_rack(seed)
        data = _payload(seed, buffer.size)
        chunk = 8 * KIB
        half = buffer.size // 2

        for offset in range(0, half, chunk):
            buffer.write(offset, data[offset : offset + chunk])

        _arm(rack, LinkKill(at_s=10e-6), "node1", seed)

        failed_at = None
        report = None
        offset = half
        while offset < buffer.size:
            try:
                buffer.write(offset, data[offset : offset + chunk])
                offset += chunk
            except RemoteMemoryError:
                if report is not None:
                    raise  # a second failure after failover is a real bug
                failed_at = offset
                # Rebinds `buffer` in place onto the surviving lender.
                report = monitor.failover(attachment.attachment_id)

        if report is None:
            raise ReproError("link kill never surfaced as a failure")

        readback = buffer.read(0, buffer.size)
        verified = readback == data
        drained_at = rack.run()  # proves no hung processes / stuck timers

        return _finish("link-kill-failover", rack, attachment, registry, {
            "scenario": "link-kill-failover",
            "seed": seed,
            "verified": verified,
            "failed_at_offset": failed_at,
            "report": report.describe(),
            "health": monitor.describe(),
            "drained_at_s": drained_at,
            "metrics": registry.snapshot(),
        })
    finally:
        _events.disable_events()


def run_link_flap(seed: int = 7) -> Dict:
    """Transient outage shorter than the retry budget: no failover.

    The link dies for 30 µs mid-write; endpoint retries (fresh txn ids)
    plus LLC replay ride it out, and the attachment stays put.
    """
    _events.enable_events()
    try:
        rack, attachment, buffer, monitor, registry = _build_rack(seed)
        data = _payload(seed, buffer.size)

        buffer.write(0, data[: buffer.size // 2])
        _arm(rack, LinkFlap(at_s=5e-6, duration_s=30e-6), "node1", seed)
        buffer.write(buffer.size // 2, data[buffer.size // 2 :])

        readback = buffer.read(0, buffer.size)
        endpoint = rack.node("node0").device.compute
        drained_at = rack.run()

        return _finish("link-flap", rack, attachment, registry, {
            "scenario": "link-flap",
            "seed": seed,
            "verified": readback == data,
            "failovers": monitor.failovers,
            "endpoint_retries": endpoint.retries,
            "endpoint_timeouts": endpoint.timeouts,
            "health": monitor.describe(),
            "drained_at_s": drained_at,
            "metrics": registry.snapshot(),
        })
    finally:
        _events.disable_events()


def run_brownout(seed: int = 7) -> Dict:
    """Degraded-bandwidth window: Bernoulli loss absorbed by replay."""
    _events.enable_events()
    try:
        rack, attachment, buffer, monitor, registry = _build_rack(seed)
        data = _payload(seed, buffer.size)

        _arm(
            rack,
            Brownout(at_s=5e-6, duration_s=500e-6, drop_probability=0.15),
            "node1",
            seed,
        )
        chunk = 8 * KIB
        for offset in range(0, buffer.size, chunk):
            buffer.write(offset, data[offset : offset + chunk])

        readback = buffer.read(0, buffer.size)
        dropped = sum(
            link.faults.frames_dropped
            for link in rack.links_of("node1")
            if link.faults is not None
        )
        drained_at = rack.run()

        return _finish("brownout", rack, attachment, registry, {
            "scenario": "brownout",
            "seed": seed,
            "verified": readback == data,
            "failovers": monitor.failovers,
            "frames_dropped": dropped,
            "health": monitor.describe(),
            "drained_at_s": drained_at,
            "metrics": registry.snapshot(),
        })
    finally:
        _events.disable_events()


SCENARIOS: Dict[str, Callable[[int], Dict]] = {
    "link-kill-failover": run_link_kill_failover,
    "link-flap": run_link_flap,
    "brownout": run_brownout,
}


def run_scenario(name: str, seed: int = 7) -> Dict:
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r} "
            f"(have: {', '.join(sorted(SCENARIOS))})",
            code="resilience/unknown-campaign",
        ) from None
    return scenario(seed)
