"""Cluster replay engine: rack domains under the domain coordinator.

Glue between :mod:`repro.cluster.topology` (what one rack does) and
:mod:`repro.sim.domains` (how racks advance together): build one
domain per rack, hand the coordinator the trace horizon and the
inter-rack latency as the conservative lookahead, then assemble the
per-rack artifacts into one deterministic cluster artifact.

The artifact contract is the headline of this subsystem: everything in
:func:`run_cluster`'s first return value derives from ``(config,
seed)`` alone — no wall-clock, no job count, no pid — so a parallel
run is byte-identical to a serial one and CI can ``cmp`` the files.
Runtime provenance (jobs, wall/busy seconds) travels in the *second*
return value, never in the artifact.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Tuple

from ..obs import MetricsRegistry
from ..obs.events import merge_event_streams
from ..sim.domains import DomainCoordinator
from .topology import TASK_CLASSES, ClusterConfig, cluster_trace_events

__all__ = ["BUILDER_TARGET", "run_cluster", "write_artifacts"]

#: Importable-by-name builder the pool workers resolve.
BUILDER_TARGET = "py:repro.cluster.topology:build_rack_domain"


def run_cluster(
    config: ClusterConfig,
    jobs: int = 1,
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Replay the cluster trace across ``config.racks`` rack domains.

    Returns ``(artifact, runtime)``. ``artifact`` is deterministic and
    byte-comparable across job counts; ``runtime`` carries the
    non-deterministic provenance (``jobs``, ``wall_s``, ``busy_s``,
    speedup inputs). When ``registry`` is given, every rack's metric
    snapshot is merged into it with a ``domain="rackN"`` label.
    """
    builders = [
        (BUILDER_TARGET, {"rack_index": rack, "config": config})
        for rack in range(config.racks)
    ]
    _, horizon = cluster_trace_events(config)
    coordinator = DomainCoordinator(
        builders,
        lookahead=config.inter_rack_latency,
        horizon=horizon,
        jobs=jobs,
    )
    result = coordinator.run()
    racks = result["artifacts"]

    journal = merge_event_streams(
        {f"rack{artifact['rack']}": artifact["events"] for artifact in racks}
    )
    if registry is not None:
        for artifact in racks:
            registry.merge_flat(
                artifact["metrics"], domain=f"rack{artifact['rack']}"
            )

    classes = {name: 0 for name in TASK_CLASSES}
    counters: Dict[str, int] = {}
    tasks = 0
    for artifact in racks:
        stats = artifact["stats"]
        tasks += stats["tasks"]
        for name, value in stats["classes"].items():
            classes[name] += value
        for name, value in stats["counters"].items():
            counters[name] = counters.get(name, 0) + value

    artifact = {
        "config": config.describe(),
        "horizon": horizon,
        "rounds": result["rounds"],
        "messages": result["messages"],
        "summary": {
            "tasks": tasks,
            "classes": classes,
            "counters": dict(sorted(counters.items())),
            "journal_events": len(journal),
        },
        "racks": [
            {
                "rack": rack["rack"],
                "sim_now": rack["sim_now"],
                "stats": rack["stats"],
                "metrics": rack["metrics"],
                "events_total": rack["events_total"],
                "events_evicted": rack["events_evicted"],
            }
            for rack in racks
        ],
        "journal": journal,
    }
    runtime = {
        "jobs": result["jobs"],
        "wall_s": result["wall_s"],
        "busy_s": result["busy_s"],
    }
    return artifact, runtime


def write_artifacts(artifact: Dict[str, Any], out_dir: str) -> Dict[str, str]:
    """Write ``cluster-summary.json`` + ``cluster-journal.jsonl``.

    Canonical serialization (sorted keys, fixed indent, trailing
    newline) so two runs of the same config produce files ``cmp`` can
    diff byte-for-byte — the CI determinism gate.
    """
    os.makedirs(out_dir, exist_ok=True)
    summary = {key: value for key, value in artifact.items()
               if key != "journal"}
    summary_path = os.path.join(out_dir, "cluster-summary.json")
    with open(summary_path, "w") as fh:
        fh.write(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    journal_path = os.path.join(out_dir, "cluster-journal.jsonl")
    lines = [json.dumps(record, sort_keys=True)
             for record in artifact["journal"]]
    with open(journal_path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return {"summary": summary_path, "journal": journal_path}
