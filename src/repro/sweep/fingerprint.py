"""Code fingerprinting for cache invalidation.

A cached sweep result is only valid for the exact source tree that
produced it. :func:`source_fingerprint` hashes every ``*.py`` file under
the installed ``repro`` package (path + content), so any edit anywhere
in the simulation stack changes every :class:`~repro.sweep.RunSpec` key
and cold-runs the whole sweep — conservative by design: a stale number
is worse than a recomputed one.

Targets that live outside the package (``py:module:function`` specs,
e.g. benchmark drivers) extend the fingerprint with their own source
file via :func:`combine_fingerprints`.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache

__all__ = ["source_fingerprint", "file_digest", "combine_fingerprints"]

#: Directory of the ``repro`` package itself (``.../src/repro``).
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def file_digest(path: str) -> str:
    """sha256 hex digest of one file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """One hex digest covering every ``repro/**/*.py`` source file.

    Cached per process: the tree cannot change underneath a running
    sweep without also invalidating the process's imported modules.
    """
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(_PACKAGE_ROOT)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, _PACKAGE_ROOT).replace(os.sep, "/")
            digest.update(rel.encode("utf-8"))
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
    return digest.hexdigest()


def combine_fingerprints(*parts: str) -> str:
    """Fold several digests into one (order-sensitive)."""
    return hashlib.sha256(":".join(parts).encode("utf-8")).hexdigest()
