"""OpenCAPI transaction-layer datatypes.

The POWER9 core emits 128-byte ld/st transactions (one cache line); the
ThymesisFlow datapath moves them as sequences of 32-byte **flits** over a
32 B-wide LLC pipeline (paper §IV-A4/§V). This module defines those wire
units plus the command vocabulary the endpoints speak — a minimal but
faithful subset of the OpenCAPI TL/TLx command set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, auto
from typing import Optional

from ..mem.address import CACHELINE_BYTES

__all__ = [
    "TLCommand",
    "ResponseCode",
    "MemTransaction",
    "FLIT_BYTES",
    "flits_for_payload",
    "transaction_flits",
    "split_burst",
]

#: Width of the LLC datapath: "features a 32B wide datapath" (§IV-A4).
FLIT_BYTES = 32


class TLCommand(Enum):
    """Transaction-layer commands crossing a ThymesisFlow link."""

    RD_MEM = auto()        #: read one cacheline (request carries no data)
    WRITE_MEM = auto()     #: write one cacheline (request carries data)
    MEM_RD_RESPONSE = auto()   #: read response (carries data)
    MEM_WR_RESPONSE = auto()   #: write acknowledgement (no data)
    NOP = auto()           #: single-flit padding inside incomplete frames
    REPLAY_REQUEST = auto()    #: in-band Rx→Tx frame-replay message
    LINK_SYNC = auto()     #: link bring-up: agree on starting frame id


class ResponseCode(Enum):
    """Completion status carried by response transactions."""

    OK = auto()
    ADDRESS_ERROR = auto()     #: outside any configured section
    ACCESS_DENIED = auto()     #: PASID / legal-destination check failed
    RETRY = auto()             #: transient (e.g. endpoint quiescing)


class _TxnIdCounter:
    """Monotonic transaction-id source.

    A plain integer bump: reserving an N-line run is one addition
    instead of N ``next()`` calls on an ``itertools.count``, and the
    allocated ids are identical.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 1):
        self.value = start

    def take(self, count: int = 1) -> int:
        base = self.value
        self.value = base + count
        return base


_txn_ids = _TxnIdCounter(1)


def reset_txn_ids(start: int = 1) -> None:
    """Rewind the global transaction-id counter.

    For deterministic harnesses (chaos scenarios, differential tests)
    that embed transaction ids in their artifacts: rewinding at
    scenario setup makes a seeded run's ids independent of whatever
    ran earlier in the same process. Only safe when no transactions
    from a previous testbed are still in flight — i.e. call it before
    building the testbed, never mid-run.
    """
    _txn_ids.value = start


def _next_txn_id() -> int:
    return _txn_ids.take()


def _reserve_txn_ids(count: int) -> int:
    """Allocate ``count`` consecutive transaction ids; return the first.

    A burst transaction stands for ``count`` per-cacheline transactions;
    reserving the whole id run keeps the wire identifiers (and hence
    frame CRC signatures) identical to the per-line formulation.
    """
    return _txn_ids.take(count)


@dataclass
class MemTransaction:
    """One memory transaction in flight through the stack.

    The ``address`` field is rewritten as the transaction crosses
    translation stages (real → device-internal → donor effective); the
    ``network_id`` is stamped by the RMMU and consumed by the routing
    layer; responses echo the request's ``txn_id`` and travel back over
    the channel the request arrived on (§IV-A2).
    """

    command: TLCommand
    address: int = 0
    size: int = CACHELINE_BYTES
    #: Payload bytes; any buffer type (``bytes``, ``bytearray``,
    #: ``memoryview``) is accepted so split views and reassembly can
    #: stay zero-copy. Consumers materialize only at the backing store.
    data: Optional[bytes] = None
    txn_id: int = field(default_factory=_next_txn_id)
    network_id: Optional[int] = None
    pasid: Optional[int] = None
    response_code: ResponseCode = ResponseCode.OK
    #: channel index the request arrived on (memory side responds in kind)
    arrival_channel: Optional[int] = None
    #: credits piggy-backed on this header (LLC backpressure, §IV-A4)
    piggyback_credits: int = 0
    issued_at: float = 0.0
    #: Number of contiguous cachelines this transaction stands for. A
    #: burst of N lines owns the consecutive ids txn_id..txn_id+N-1 and
    #: goes on the wire as N per-line flit groups — one header flit per
    #: line — so frame boundaries, padding and CRC coverage are exactly
    #: those of the N-transaction formulation it replaces.
    burst: int = 1
    #: Line offset of this (possibly split) burst within the burst it
    #: was carved from; ``txn_id - burst_offset`` recovers the base id.
    burst_offset: int = 0

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"transaction size must be > 0: {self.size}")
        if self.data is not None and len(self.data) != self.size:
            raise ValueError(
                f"data length {len(self.data)} != size {self.size}"
            )
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1: {self.burst}")
        if self.burst > 1 and self.size != self.burst * CACHELINE_BYTES:
            raise ValueError(
                f"burst of {self.burst} lines must span "
                f"{self.burst * CACHELINE_BYTES} bytes, got {self.size}"
            )

    # -- classification ---------------------------------------------------------
    @property
    def base_txn_id(self) -> int:
        """Id of the burst this (possibly split) transaction came from.

        Split views and their responses keep per-line ids; the tracer
        keys every mark on this base id so all segments of one burst
        land on one record.
        """
        return self.txn_id - self.burst_offset

    @property
    def is_request(self) -> bool:
        return self.command in (TLCommand.RD_MEM, TLCommand.WRITE_MEM)

    @property
    def is_response(self) -> bool:
        return self.command in (
            TLCommand.MEM_RD_RESPONSE,
            TLCommand.MEM_WR_RESPONSE,
        )

    @property
    def carries_data(self) -> bool:
        return self.command in (TLCommand.WRITE_MEM, TLCommand.MEM_RD_RESPONSE)

    @property
    def flit_count(self) -> int:
        return transaction_flits(self)

    # -- factories ----------------------------------------------------------------
    @classmethod
    def read(cls, address: int, size: int = CACHELINE_BYTES) -> "MemTransaction":
        return cls(TLCommand.RD_MEM, address=address, size=size)

    @classmethod
    def write(cls, address: int, data: bytes) -> "MemTransaction":
        return cls(
            TLCommand.WRITE_MEM, address=address, size=len(data), data=data
        )

    @classmethod
    def nop(cls) -> "MemTransaction":
        return cls(TLCommand.NOP, size=FLIT_BYTES)

    @classmethod
    def read_burst(cls, address: int, lines: int) -> "MemTransaction":
        """Batched read of ``lines`` contiguous cachelines."""
        if lines == 1:
            return cls.read(address)
        return cls(
            TLCommand.RD_MEM,
            address=address,
            size=lines * CACHELINE_BYTES,
            txn_id=_reserve_txn_ids(lines),
            burst=lines,
        )

    @classmethod
    def write_burst(cls, address: int, data: bytes) -> "MemTransaction":
        """Batched write of contiguous cachelines (len(data) % 128 == 0)."""
        lines, remainder = divmod(len(data), CACHELINE_BYTES)
        if remainder or lines < 1:
            raise ValueError(
                f"burst writes need whole cachelines, got {len(data)} bytes"
            )
        if lines == 1:
            return cls.write(address, data)
        return cls(
            TLCommand.WRITE_MEM,
            address=address,
            size=len(data),
            data=data,
            txn_id=_reserve_txn_ids(lines),
            burst=lines,
        )

    def make_response(
        self,
        data: Optional[bytes] = None,
        code: ResponseCode = ResponseCode.OK,
    ) -> "MemTransaction":
        """Build the matching response, echoing id/network/channel."""
        if self.command == TLCommand.RD_MEM:
            command = TLCommand.MEM_RD_RESPONSE
            size = self.size if data is None else len(data)
        elif self.command == TLCommand.WRITE_MEM:
            command = TLCommand.MEM_WR_RESPONSE
            data = None
            size = CACHELINE_BYTES * self.burst
        else:
            raise ValueError(f"no response defined for {self.command}")
        return MemTransaction(
            command,
            address=self.address,
            size=size,
            data=data,
            txn_id=self.txn_id,
            network_id=self.network_id,
            arrival_channel=self.arrival_channel,
            response_code=code,
            burst=self.burst,
            burst_offset=self.burst_offset,
        )

    def with_address(self, address: int) -> "MemTransaction":
        """Copy with a translated address (RMMU stages)."""
        return replace(self, address=address)

    def reissue(self) -> "MemTransaction":
        """Fresh-id copy of a request, for an endpoint-level retry.

        Re-sending under the *same* id is unsafe on a slow-but-alive
        link: both the original and the retried response could arrive,
        and for bursts duplicate segments would double-decrement the
        reassembly counter. A fresh id (a fresh consecutive run for
        bursts) makes any straggler response to the old attempt an
        unmatched id, which the endpoint already drops.
        """
        new_id = (
            _reserve_txn_ids(self.burst)
            if self.burst > 1
            else _next_txn_id()
        )
        return replace(self, txn_id=new_id, burst_offset=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemTransaction({self.command.name}, id={self.txn_id}, "
            f"addr={self.address:#x}, net={self.network_id})"
        )


def flits_for_payload(payload_bytes: int) -> int:
    """Number of 32 B flits needed for ``payload_bytes`` of data."""
    if payload_bytes < 0:
        raise ValueError(f"negative payload: {payload_bytes}")
    return -(-payload_bytes // FLIT_BYTES)


def transaction_flits(txn: MemTransaction) -> int:
    """Flits on the wire: one header flit plus data flits if any.

    A 128 B write is 1 + 4 = 5 flits; a read request is a single header
    flit; NOP padding is one flit by definition (§IV-A4). A burst of N
    cachelines serializes as N per-line flit groups, so its footprint is
    exactly N times the per-line count.
    """
    if txn.command == TLCommand.NOP:
        return 1
    if txn.carries_data:
        per_line_payload = flits_for_payload(txn.size // txn.burst)
        return txn.burst * (1 + per_line_payload)
    return txn.burst


def split_burst(
    txn: MemTransaction, line_start: int, lines: int
) -> MemTransaction:
    """Carve a ``lines``-cacheline view out of a burst transaction.

    The view keeps per-line identity: its ``txn_id`` is the parent's id
    plus ``line_start`` (the reserved consecutive run), its address and
    data window advance accordingly, and ``burst_offset`` accumulates so
    responses can be matched back to the original burst's base id.
    """
    if line_start < 0 or lines < 1 or line_start + lines > txn.burst:
        raise ValueError(
            f"split [{line_start}, {line_start + lines}) outside burst "
            f"of {txn.burst} lines"
        )
    data = txn.data
    if data is not None:
        # Zero-copy window: a memoryview slice aliases the parent
        # payload instead of copying it. Payload sources are immutable
        # user buffers, so aliasing is safe.
        if type(data) is not memoryview:
            data = memoryview(data)
        data = data[
            line_start * CACHELINE_BYTES : (line_start + lines)
            * CACHELINE_BYTES
        ]
    # Hand-rolled copy: ``dataclasses.replace`` re-runs field discovery
    # and __post_init__ validation on every call, which dominated the
    # frame-packing profile. The split's bounds are validated above.
    view = object.__new__(MemTransaction)
    view.command = txn.command
    view.address = txn.address + line_start * CACHELINE_BYTES
    view.size = lines * CACHELINE_BYTES
    view.data = data
    view.txn_id = txn.txn_id + line_start
    view.network_id = txn.network_id
    view.pasid = txn.pasid
    view.response_code = txn.response_code
    view.arrival_channel = txn.arrival_channel
    view.piggyback_credits = txn.piggyback_credits
    view.issued_at = txn.issued_at
    view.burst = lines
    view.burst_offset = txn.burst_offset + line_start
    return view
