"""``run_cell``: the sweep target that simulates one design point.

One *cell* = one configuration (a design point over the DSE factor
space) + one seed. The runner builds a 3-node rack with the cell's LLC
geometry, attaches journaled disaggregated memory under the cell's
failover policy, drives a chunked write workload, arms the cell's fault
campaign mid-workload against the lender's fault domain, recovers as
the policy allows, and returns a JSON-able record: validated factors,
raw progress counters, the response vector, the (fault/health) event
journal slice and a filtered metrics snapshot.

Everything inside is a pure function of the kwargs + seed — sim-time
only, seeded RNG streams, txn-id counter rewound — so the cell is
sound to cache under its :class:`~repro.sweep.RunSpec` content address
and bit-stable across in-process and pool-worker execution.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from ...control.health import HealthMonitor, HealthState
from ...core.endpoints import RetryPolicy
from ...core.llc import LlcConfig
from ...errors import RemoteMemoryError, ReproError
from ...obs import events as _events
from ...obs.metrics import MetricsRegistry
from ...opencapi.transactions import reset_txn_ids
from ...sim.rng import SeededRNG
from ...testbed.rack import RackTestbed
from ..campaigns import (
    ensure_injector,
    make_campaign,
    validate_campaign_params,
)
from ..journal import ResilientBuffer
from .factors import FAILOVER_POLICIES, DseDesignError, default_space

__all__ = ["CELL_TARGET", "DEFAULT_FAULT_AT_S", "run_cell"]

KIB = 1024

#: Spec target string for building cell RunSpecs.
CELL_TARGET = "py:repro.resilience.dse.runner:run_cell"

#: Sim delay from arming (mid-workload) to the fault taking effect,
#: unless the cell overrides ``at_s`` in ``campaign_params``.
DEFAULT_FAULT_AT_S = 10e-6

#: Workload chunk size; the failure/recovery loop advances chunkwise.
CHUNK = 8 * KIB

#: Event kinds preserved in the cell record (response extraction reads
#: these; control-plane chatter is dropped to keep cells small).
_EVENT_PREFIXES = ("fault.", "health.")

#: Metric families preserved in the cell's snapshot.
_METRIC_PREFIXES = (
    "dse.", "health.", "endpoint.", "llc.", "link.", "net.faults.",
)


def _filter_events(log) -> list:
    if log is None:
        return []
    return [
        event.as_dict()
        for event in log
        if event.kind.startswith(_EVENT_PREFIXES)
    ]


def _filter_snapshot(snapshot: Dict[str, float]) -> Dict[str, float]:
    return {
        key: value
        for key, value in snapshot.items()
        if key.startswith(_METRIC_PREFIXES)
    }


def run_cell(
    frame_flits: int = 16,
    credit_depth: int = 256,
    bonding: bool = False,
    loss_rate: float = 0.0,
    campaign: str = "link-kill",
    failover_policy: str = "fast",
    campaign_params: Optional[Dict[str, Any]] = None,
    payload_kib: int = 64,
    seed: int = 0,
) -> Dict[str, Any]:
    """Simulate one design point through its fault; return the record.

    Raises :class:`~repro.resilience.dse.factors.DseDesignError` for
    out-of-range factor levels and the campaign errors for unknown
    campaigns/parameters — *before* any simulator is built, so a bad
    cell never pollutes the result cache.
    """
    point = default_space().validate_point({
        "frame_flits": frame_flits,
        "credit_depth": credit_depth,
        "bonding": bonding,
        "loss_rate": loss_rate,
        "campaign": campaign,
        "failover_policy": failover_policy,
    })
    if payload_kib < 1:
        raise DseDesignError(
            f"payload_kib must be >= 1, got {payload_kib}"
        )
    if point["campaign"] == "none":
        if campaign_params:
            raise DseDesignError(
                "campaign_params given but campaign is 'none'"
            )
        fault_params: Dict[str, float] = {}
    else:
        fault_params = {
            "at_s": DEFAULT_FAULT_AT_S,
            **validate_campaign_params(
                point["campaign"], dict(campaign_params or {})
            ),
        }
    policy = FAILOVER_POLICIES[point["failover_policy"]]

    # Rewind the global txn-id counter: the journal embeds txn ids, and
    # a cached cell must hash identically no matter what ran earlier in
    # this process.
    reset_txn_ids()
    _events.enable_events()
    try:
        rack = RackTestbed(
            nodes=3,
            channels_per_node=2,
            llc_config=LlcConfig(
                flits_per_frame=point["frame_flits"],
                rx_queue_slots=point["credit_depth"],
            ),
        )
        attachment = rack.attach(
            "node0", 2 * 1024 * KIB,
            memory_host="node1", bonded=point["bonding"],
        )
        endpoint = rack.node("node0").device.compute
        endpoint.transaction_timeout_s = policy.timeout_s
        endpoint.retry_policy = RetryPolicy(
            max_attempts=policy.max_attempts,
            backoff_base_s=policy.backoff_base_s,
            multiplier=2.0,
            backoff_max_s=policy.backoff_max_s,
        )
        size = payload_kib * KIB
        buffer = ResilientBuffer.attach_buffer(rack, attachment, size=size)
        monitor = HealthMonitor(
            rack, dead_after_failures=policy.dead_after_failures
        )
        monitor.watch(attachment, buffer=buffer)
        registry = MetricsRegistry()
        rack.register_observability(registry)
        monitor.register_metrics(registry)

        rng = SeededRNG(seed).derive("dse-cell")
        if point["loss_rate"] > 0.0:
            # Ambient degradation: every lender link drops frames at
            # the cell's Bernoulli rate for the whole run (absorbed by
            # LLC replay; the cost shows up as bandwidth, not loss).
            for link in rack.links_of("node1"):
                injector = ensure_injector(
                    link, rng.derive(f"ambient/{link.name}")
                )
                injector.set_drop_probability(point["loss_rate"])

        data = random.Random(seed).randbytes(size)
        state = {
            "acked": 0,
            "failed": False,
            "attachment": attachment,
            "report": None,
        }

        def drive(start: int, end: int) -> None:
            """Write [start, end) chunkwise, recovering per policy."""
            offset = start
            retries_here = 0
            errors = 0
            while offset < end and not state["failed"]:
                try:
                    buffer.write(offset, data[offset : offset + CHUNK])
                except RemoteMemoryError:
                    errors += 1
                    if errors > 8:  # termination backstop
                        state["failed"] = True
                        break
                    current = state["attachment"].attachment_id
                    health = monitor.state_of(current)
                    if (
                        health is HealthState.DEAD
                        and policy.failover
                        and state["report"] is None
                    ):
                        try:
                            report = monitor.failover(current)
                        except ReproError:
                            state["failed"] = True
                            break
                        state["report"] = report
                        state["attachment"] = report.new_attachment
                        continue  # journal replayed; retry this chunk
                    if (
                        health is HealthState.DEGRADED
                        and retries_here < 2
                    ):
                        retries_here += 1
                        continue  # transient; the endpoint retries
                    state["failed"] = True
                    break
                state["acked"] = min(offset + CHUNK, end)
                offset += CHUNK
                retries_here = 0

        half = (size // 2 // CHUNK) * CHUNK
        drive(0, half)
        if point["campaign"] != "none" and not state["failed"]:
            fault = make_campaign(point["campaign"], **fault_params)
            chaos = rng.derive("campaign")
            injectors = [
                ensure_injector(link, chaos.derive(link.name))
                for link in rack.links_of("node1")
            ]
            fault.arm(rack.sim, injectors,
                      agent=rack.node("node1").agent)
        if not state["failed"]:
            drive(half, size)

        readable = True
        readback = b""
        try:
            readback = buffer.read(0, size)
        except RemoteMemoryError:
            readable = False
        verified = readable and readback == data

        if state["report"] is None:
            # No failover healed the attachment; if it is dead, force
            # the window offline so the LLC stops replaying into a dark
            # link and the drain below terminates.
            current = state["attachment"].attachment_id
            if monitor.state_of(current) is HealthState.DEAD:
                buffer.quarantine()  # unmap pages so offlining succeeds
                rack.detach(state["attachment"], force=True)

        drained_at = rack.run()

        from .responses import compute_responses

        log = _events.active_event_log()
        events = _filter_events(log)
        responses = compute_responses(
            size_bytes=size,
            bytes_acked=state["acked"],
            drained_at_s=drained_at,
            events=events,
            metrics=registry.snapshot(),
            replayed_bytes=monitor.replayed_bytes,
        )
        for name, value in sorted(responses.items()):
            registry.gauge(f"dse.{name}", component="dse").set(value)

        report = state["report"]
        return {
            "factors": point,
            "seed": seed,
            "payload_kib": payload_kib,
            "campaign_params": fault_params,
            "policy": policy.describe(),
            "responses": responses,
            "bytes_acked": state["acked"],
            "write_failed": state["failed"],
            "readable": readable,
            "verified": verified,
            "failover": report.describe() if report is not None else None,
            "events": events,
            "metrics": _filter_snapshot(registry.snapshot()),
            "drained_at_s": drained_at,
        }
    finally:
        _events.disable_events()
