"""Automatic NUMA balancing (page migration).

"Thanks to this support, the kernel can optimize the access to
frequently used memory areas by reusing existing NUMA page migration
algorithms that move pages from distant to closer (including local)
memory nodes" (§IV-B, citing Van Riel's Automatic NUMA Balancing).

The model follows the AutoNUMA shape: accesses are *sampled*; per page
we keep an exponential moving count per accessing CPU node; a balancing
pass migrates pages whose dominant accessor is strictly closer than the
page's current node, subject to capacity on the target and a migration
budget per pass (rate limiting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .kernel import LinuxKernel, Mapping

__all__ = ["NumaBalancer", "MigrationStats"]


@dataclass
class MigrationStats:
    """Outcome of balancing passes."""

    samples: int = 0
    migrations: int = 0
    refused_capacity: int = 0
    refused_distance: int = 0


class NumaBalancer:
    """Sampled access tracking + distance-driven page migration."""

    def __init__(
        self,
        kernel: LinuxKernel,
        sample_period: int = 16,
        decay: float = 0.5,
        min_samples: int = 4,
    ):
        if sample_period < 1:
            raise ValueError(f"sample_period must be >= 1: {sample_period}")
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1): {decay}")
        self.kernel = kernel
        self.sample_period = sample_period
        self.decay = decay
        self.min_samples = min_samples
        self.stats = MigrationStats()
        # (mapping_id, page_index) -> {cpu_node: weighted access count}
        self._heat: Dict[Tuple[int, int], Dict[int, float]] = {}
        self._access_counter = 0

    # -- access sampling ---------------------------------------------------------------
    def record_access(
        self, mapping: Mapping, page_index: int, cpu_node: int
    ) -> None:
        """Note one access; only every ``sample_period``-th is sampled.

        Mirrors the kernel's NUMA hinting faults, which observe a small
        fraction of accesses rather than all of them.
        """
        self._access_counter += 1
        if self._access_counter % self.sample_period:
            return
        self.stats.samples += 1
        key = (mapping.mapping_id, page_index)
        heat = self._heat.setdefault(key, {})
        heat[cpu_node] = heat.get(cpu_node, 0.0) + 1.0

    # -- balancing pass ----------------------------------------------------------------
    def balance(
        self, mapping: Mapping, max_migrations: Optional[int] = None
    ) -> int:
        """One balancing pass over ``mapping``; returns pages migrated."""
        migrated = 0
        topology = self.kernel.topology
        for page_index, page in enumerate(mapping.pages):
            if max_migrations is not None and migrated >= max_migrations:
                break
            key = (mapping.mapping_id, page_index)
            heat = self._heat.get(key)
            if not heat or sum(heat.values()) < self.min_samples:
                continue
            dominant = max(heat, key=lambda node: heat[node])
            if dominant == page.node_id:
                continue
            current_distance = topology.distance(dominant, page.node_id)
            target_distance = topology.distance(dominant, dominant)
            if target_distance >= current_distance:
                self.stats.refused_distance += 1
                continue
            if self.kernel.migrate_page(mapping, page_index, dominant):
                migrated += 1
                self.stats.migrations += 1
                self._heat.pop(key, None)
            else:
                self.stats.refused_capacity += 1
        self._decay_heat()
        return migrated

    def _decay_heat(self) -> None:
        for heat in self._heat.values():
            for node in list(heat):
                heat[node] *= self.decay
                if heat[node] < 1e-3:
                    del heat[node]

    def page_heat(self, mapping: Mapping, page_index: int) -> Dict[int, float]:
        return dict(self._heat.get((mapping.mapping_id, page_index), {}))
