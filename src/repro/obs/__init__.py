"""repro.obs — end-to-end observability for the simulated stack.

The cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — a span-based transaction tracer. Every
  instrumented component marks the stage boundaries a transaction
  crosses (bus issue, RMMU translate, routing, LLC framing, wire,
  DRAM service, completion); the tracer derives contiguous per-layer
  spans from those marks, so one transaction's child spans tile its
  end-to-end latency exactly.
* :mod:`repro.obs.metrics` — a hierarchical registry of counters,
  gauges and histograms with label sets. Components expose their
  counters through ``register_metrics`` hooks; the registry pulls them
  at snapshot time, so the hot path pays nothing.
* :mod:`repro.obs.export` — exporters: Chrome ``trace_event`` JSON
  (loadable in Perfetto / chrome://tracing), a flat metrics snapshot
  dict/JSON, and a human-readable end-of-run summary table built on
  :mod:`repro.obs.summary`.
* :mod:`repro.obs.promtext` — Prometheus text-format exposition of the
  registry plus the strict parser the tests round-trip through.
* :mod:`repro.obs.events` — a bounded structured event journal
  (JSON-lines) of control/resilience/endpoint happenings, with
  sim-time and correlation ids linking events to trace spans.
* :mod:`repro.obs.profiler` — a sampling profiler over the
  discrete-event kernel attributing sim-time and host-time to
  component/phase, exported as folded stacks for flame graphs.
* :mod:`repro.obs.slo` — declarative service-level objectives
  evaluated against the registry, with breach events and a CI exit
  mode.

Instrumentation is **off by default**: every call site is guarded by
the module-level :data:`repro.obs.trace.ENABLED` flag, checked before
any allocation, so the fast-path wins of the simulation kernel are
preserved when observability is not requested. When on, 1-in-N
transaction sampling (``sample_every``) bounds tracing volume further.

This package deliberately imports nothing from the rest of ``repro``
(stdlib only): the simulation kernel itself hooks into it, and a
dependency back into :mod:`repro.sim` would be circular.
"""

from .trace import (
    ENABLED,
    Tracer,
    TxnRecord,
    active_tracer,
    disable_tracing,
    enable_tracing,
    tracing,
)
from .metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    parse_qualified,
)
from .summary import RunSummary, summary_from_snapshot
from .export import (
    chrome_trace,
    render_metrics_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from .promtext import (
    CONTENT_TYPE,
    PromParseError,
    parse_prometheus,
    render_prometheus,
)
from .events import (
    Event,
    EventLog,
    active_event_log,
    capture_into,
    disable_events,
    enable_events,
    event_logging,
    merge_event_streams,
    validate_event_jsonl,
)
from .profiler import (
    SimProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profiling,
)
from .slo import (
    SloEngine,
    SloReport,
    SloSpec,
    parse_slo_specs,
)

__all__ = [
    "ENABLED",
    "Tracer",
    "TxnRecord",
    "active_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "parse_qualified",
    "RunSummary",
    "summary_from_snapshot",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_json",
    "render_metrics_summary",
    "CONTENT_TYPE",
    "PromParseError",
    "render_prometheus",
    "parse_prometheus",
    "Event",
    "EventLog",
    "enable_events",
    "disable_events",
    "active_event_log",
    "event_logging",
    "capture_into",
    "merge_event_streams",
    "validate_event_jsonl",
    "SimProfiler",
    "enable_profiling",
    "disable_profiling",
    "active_profiler",
    "profiling",
    "SloSpec",
    "SloEngine",
    "SloReport",
    "parse_slo_specs",
]
