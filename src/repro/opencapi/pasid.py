"""Process Address Space ID registry.

The memory-stealing process pins donor memory and registers its PASID
with the endpoint hardware so the device may master cache-coherent
transactions into that (and only that) address range — OpenCAPI C1 mode
(paper §IV-A2). This module models the registry and its access checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mem.address import AddressRange

__all__ = ["PasidEntry", "PasidRegistry", "PasidError"]


class PasidError(PermissionError):
    """Raised when a device access fails the PASID window check."""


@dataclass
class PasidEntry:
    """One registered process address space: PASID + pinned windows."""

    pasid: int
    owner: str
    windows: List[AddressRange] = field(default_factory=list)

    def permits(self, address: int, size: int) -> bool:
        access = AddressRange(address, size)
        return any(window.contains_range(access) for window in self.windows)


class PasidRegistry:
    """Allocates PASIDs and validates device-mastered accesses."""

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self._entries: Dict[int, PasidEntry] = {}
        self._next = itertools.count(1)

    def register(self, owner: str) -> PasidEntry:
        if len(self._entries) >= self.max_entries:
            raise PasidError(
                f"PASID table full ({self.max_entries} entries)"
            )
        pasid = next(self._next)
        entry = PasidEntry(pasid=pasid, owner=owner)
        self._entries[pasid] = entry
        return entry

    def add_window(self, pasid: int, window: AddressRange) -> None:
        """Pin a memory window under a PASID (donor reservation)."""
        self.lookup(pasid).windows.append(window)

    def remove_window(self, pasid: int, window: AddressRange) -> None:
        entry = self.lookup(pasid)
        try:
            entry.windows.remove(window)
        except ValueError:
            raise PasidError(
                f"window {window!r} not pinned under PASID {pasid}"
            ) from None

    def unregister(self, pasid: int) -> None:
        if pasid not in self._entries:
            raise PasidError(f"unknown PASID {pasid}")
        del self._entries[pasid]

    def lookup(self, pasid: int) -> PasidEntry:
        try:
            return self._entries[pasid]
        except KeyError:
            raise PasidError(f"unknown PASID {pasid}") from None

    def check_access(self, pasid: Optional[int], address: int, size: int) -> None:
        """Raise :class:`PasidError` unless the access is authorized."""
        if pasid is None:
            raise PasidError("device access without a PASID")
        entry = self.lookup(pasid)
        if not entry.permits(address, size):
            raise PasidError(
                f"PASID {pasid} ({entry.owner}) may not access "
                f"[{address:#x}, {address + size:#x})"
            )

    def __len__(self) -> int:
        return len(self._entries)
