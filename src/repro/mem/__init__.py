"""Physical memory substrate: addresses, backing store, DRAM, caches, NUMA."""

from .address import (
    CACHELINE_BYTES,
    DEFAULT_SECTION_BYTES,
    GIB,
    KIB,
    MIB,
    AddressError,
    AddressRange,
    AddressSpaceAllocator,
)
from .backing import BackingStore
from .cache import (
    AccessProfile,
    AmatModel,
    CacheConfig,
    CacheHierarchy,
    SetAssociativeCache,
    power9_hierarchy,
)
from .dram import DramDevice, DramTiming
from .numa import LOCAL_DISTANCE, NumaNode, NumaTopology

__all__ = [
    "CACHELINE_BYTES",
    "DEFAULT_SECTION_BYTES",
    "KIB",
    "MIB",
    "GIB",
    "AddressError",
    "AddressRange",
    "AddressSpaceAllocator",
    "BackingStore",
    "DramDevice",
    "DramTiming",
    "CacheConfig",
    "SetAssociativeCache",
    "CacheHierarchy",
    "AccessProfile",
    "AmatModel",
    "power9_hierarchy",
    "NumaNode",
    "NumaTopology",
    "LOCAL_DISTANCE",
]
