"""Unit tests for the OpenCAPI layer (bus, ports, PASID, MMIO) and the
network substrate (links, faults, CRC, circuit switch)."""

import pytest

from repro.mem import AddressRange, DramDevice, DramTiming, MIB
from repro.net import (
    AURORA_OVERHEAD,
    CircuitSwitch,
    DuplexChannel,
    FaultInjector,
    LinkConfig,
    SerialLink,
    SwitchError,
    check,
    crc32,
    frame_digest_bytes,
)
from repro.opencapi import (
    BusError,
    MemTransaction,
    MmioError,
    MmioRegisterFile,
    OpenCapiC1Port,
    OpenCapiM1Port,
    PasidError,
    PasidRegistry,
    ResponseCode,
    SystemBus,
)
from repro.sim import Simulator


def make_bus_with_dram(sim, size=4 * MIB):
    bus = SystemBus(sim)
    dram = DramDevice(sim, AddressRange(0, size), timing=DramTiming())
    bus.attach_dram(dram)
    return bus, dram


class TestSystemBus:
    def test_load_store_roundtrip(self):
        sim = Simulator()
        bus, _dram = make_bus_with_dram(sim)

        def proc():
            yield bus.store(0x100, b"\x11" * 128)
            data = yield bus.load(0x100, 128)
            return data

        assert sim.run_process(proc()) == b"\x11" * 128

    def test_unmapped_address_raises(self):
        sim = Simulator()
        bus, _dram = make_bus_with_dram(sim)
        with pytest.raises(BusError, match="no target"):
            bus.target_for(0x1000_0000, 128)

    def test_straddling_access_rejected(self):
        sim = Simulator()
        bus = SystemBus(sim)
        dram = DramDevice(sim, AddressRange(0, 1 * MIB))
        bus.attach_dram(dram)
        with pytest.raises(BusError, match="straddles"):
            bus.target_for(1 * MIB - 64, 128)

    def test_overlapping_windows_rejected(self):
        sim = Simulator()
        bus, _dram = make_bus_with_dram(sim)
        other = DramDevice(sim, AddressRange(2 * MIB, 4 * MIB))
        with pytest.raises(BusError, match="overlaps"):
            bus.attach_dram(other)

    def test_detach_window(self):
        sim = Simulator()
        bus, dram = make_bus_with_dram(sim)
        bus.detach(dram.window)
        with pytest.raises(BusError):
            bus.target_for(0x0, 128)
        with pytest.raises(BusError):
            bus.detach(dram.window)

    def test_counters(self):
        sim = Simulator()
        bus, _dram = make_bus_with_dram(sim)

        def proc():
            yield bus.store(0, bytes(128))
            yield bus.load(0, 128)

        sim.run_process(proc())
        assert bus.loads == 1 and bus.stores == 1


class TestPasidRegistry:
    def test_register_and_check(self):
        registry = PasidRegistry()
        entry = registry.register("proc")
        registry.add_window(entry.pasid, AddressRange(0x1000, 0x1000))
        registry.check_access(entry.pasid, 0x1800, 128)  # no raise

    def test_access_outside_window_denied(self):
        registry = PasidRegistry()
        entry = registry.register("proc")
        registry.add_window(entry.pasid, AddressRange(0x1000, 0x1000))
        with pytest.raises(PasidError):
            registry.check_access(entry.pasid, 0x2000, 128)

    def test_access_without_pasid_denied(self):
        registry = PasidRegistry()
        with pytest.raises(PasidError):
            registry.check_access(None, 0x0, 128)

    def test_unknown_pasid_denied(self):
        with pytest.raises(PasidError):
            PasidRegistry().check_access(99, 0x0, 128)

    def test_multiple_windows(self):
        registry = PasidRegistry()
        entry = registry.register("proc")
        registry.add_window(entry.pasid, AddressRange(0x0, 0x100))
        registry.add_window(entry.pasid, AddressRange(0x1000, 0x100))
        registry.check_access(entry.pasid, 0x1000, 64)
        registry.remove_window(entry.pasid, AddressRange(0x1000, 0x100))
        with pytest.raises(PasidError):
            registry.check_access(entry.pasid, 0x1000, 64)

    def test_unregister(self):
        registry = PasidRegistry()
        entry = registry.register("proc")
        registry.unregister(entry.pasid)
        assert len(registry) == 0
        with pytest.raises(PasidError):
            registry.lookup(entry.pasid)

    def test_table_capacity(self):
        registry = PasidRegistry(max_entries=1)
        registry.register("a")
        with pytest.raises(PasidError):
            registry.register("b")


class TestC1Port:
    def test_master_into_authorized_window(self):
        sim = Simulator()
        bus, dram = make_bus_with_dram(sim)
        registry = PasidRegistry()
        entry = registry.register("stealer")
        registry.add_window(entry.pasid, AddressRange(0x0, 1 * MIB))
        port = OpenCapiC1Port(sim, bus, registry)
        txn = MemTransaction.write(0x100, b"\x22" * 128)
        txn.pasid = entry.pasid

        def proc():
            response = yield port.master(txn)
            return response

        response = sim.run_process(proc())
        assert response.response_code is ResponseCode.OK
        assert dram.read_now(0x100, 128) == b"\x22" * 128

    def test_master_denied_becomes_bus_response(self):
        sim = Simulator()
        bus, _dram = make_bus_with_dram(sim)
        registry = PasidRegistry()
        entry = registry.register("stealer")  # no window pinned
        port = OpenCapiC1Port(sim, bus, registry)
        txn = MemTransaction.read(0x0)
        txn.pasid = entry.pasid

        def proc():
            response = yield port.master(txn)
            return response

        response = sim.run_process(proc())
        assert response.response_code is ResponseCode.ACCESS_DENIED
        assert port.denied == 1 and port.mastered == 0


class TestMmio:
    def test_define_read_write(self):
        mmio = MmioRegisterFile()
        mmio.define("CTRL", 0x0, initial=5)
        assert mmio.read(0x0) == 5
        mmio.write(0x0, 9)
        assert mmio.read_named("CTRL") == 9

    def test_readonly_register(self):
        mmio = MmioRegisterFile()
        mmio.define("STATUS", 0x8, readonly=True, on_read=lambda: 42)
        assert mmio.read(0x8) == 42
        with pytest.raises(MmioError):
            mmio.write(0x8, 1)

    def test_write_side_effect(self):
        seen = []
        mmio = MmioRegisterFile()
        mmio.define("DOORBELL", 0x0, on_write=seen.append)
        mmio.write_named("DOORBELL", 7)
        assert seen == [7]

    def test_value_masked_to_64_bits(self):
        mmio = MmioRegisterFile()
        mmio.define("REG", 0x0)
        mmio.write(0x0, 1 << 70)
        assert mmio.read(0x0) == 0

    def test_unaligned_access_rejected(self):
        mmio = MmioRegisterFile()
        mmio.define("REG", 0x0)
        with pytest.raises(MmioError):
            mmio.read(0x4)

    def test_duplicate_definitions_rejected(self):
        mmio = MmioRegisterFile()
        mmio.define("A", 0x0)
        with pytest.raises(MmioError):
            mmio.define("B", 0x0)
        with pytest.raises(MmioError):
            mmio.define("A", 0x8)

    def test_unknown_offset_and_name(self):
        mmio = MmioRegisterFile()
        with pytest.raises(MmioError):
            mmio.read(0x10)
        with pytest.raises(MmioError):
            mmio.read_named("NOPE")

    def test_registers_snapshot(self):
        mmio = MmioRegisterFile()
        mmio.define("A", 0x0, initial=1)
        mmio.define("B", 0x8, initial=2)
        assert mmio.registers() == {"A": 1, "B": 2}


class TestSerialLink:
    def test_in_order_delivery(self):
        sim = Simulator()
        link = SerialLink(sim, LinkConfig())
        for index in range(5):
            link.try_send(index, 64)
        sim.run()
        received = [link.rx.try_get()[0] for _ in range(5)]
        assert received == [0, 1, 2, 3, 4]

    def test_serialization_paces_throughput(self):
        sim = Simulator()
        config = LinkConfig(lanes=1, lane_gbps=1.0)  # 1 Gb/s slow link
        link = SerialLink(sim, config)
        link.try_send("a", 1250)  # 10000 bits ≈ 10.3 µs at 64/66 coding
        sim.run()
        expected = config.serialization_time(1250) + config.flight_latency_s
        assert sim.now == pytest.approx(expected)

    def test_payload_rate_accounts_for_coding(self):
        config = LinkConfig(lanes=4, lane_gbps=25.0)
        assert config.raw_bits_per_s == pytest.approx(100e9)
        assert config.payload_bits_per_s == pytest.approx(
            100e9 / AURORA_OVERHEAD
        )

    def test_dropped_frame_never_arrives(self):
        sim = Simulator()
        faults = FaultInjector()
        faults.force_drop_next()
        link = SerialLink(sim, LinkConfig(), faults=faults)
        link.try_send("gone", 64)
        link.try_send("kept", 64)
        sim.run()
        assert len(link.rx) == 1
        assert link.rx.try_get() == ("kept", False)

    def test_corrupted_frame_flagged(self):
        sim = Simulator()
        faults = FaultInjector()
        faults.force_corrupt_next()
        link = SerialLink(sim, LinkConfig(), faults=faults)
        link.try_send("payload", 64)
        sim.run()
        assert link.rx.try_get() == ("payload", True)

    def test_utilization_accounting(self):
        sim = Simulator()
        link = SerialLink(sim, LinkConfig())
        link.try_send("x", 1250)
        sim.run()
        assert 0.0 < link.utilization(sim.now) <= 1.0

    def test_duplex_channel_views(self):
        sim = Simulator()
        channel = DuplexChannel(sim)
        a = channel.endpoint_view("a")
        b = channel.endpoint_view("b")
        a.send("to-b", 64)
        b.send("to-a", 64)
        sim.run()
        assert b.rx.try_get()[0] == "to-b"
        assert a.rx.try_get()[0] == "to-a"
        with pytest.raises(ValueError):
            channel.endpoint_view("c")


class TestFaultInjector:
    def test_probability_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_probability=1.5)

    def test_statistical_drop_rate(self):
        faults = FaultInjector(drop_probability=0.3)
        drops = sum(1 for _ in range(5000) if faults.decide().drop)
        assert 0.25 <= drops / 5000 <= 0.35

    def test_forced_faults_take_priority(self):
        faults = FaultInjector(drop_probability=0.0)
        faults.force_corrupt_next(2)
        assert faults.decide().corrupt
        assert faults.decide().corrupt
        assert faults.decide().clean


class TestCrc:
    def test_crc_roundtrip(self):
        data = frame_digest_bytes(7, [1, 2, 3])
        assert check(crc32(data), data)

    def test_crc_detects_change(self):
        a = frame_digest_bytes(7, [1, 2, 3])
        b = frame_digest_bytes(7, [1, 2, 4])
        assert crc32(a) != crc32(b)

    def test_crc_covers_frame_id(self):
        a = frame_digest_bytes(7, [1])
        b = frame_digest_bytes(8, [1])
        assert crc32(a) != crc32(b)


class TestCircuitSwitch:
    def wire(self, sim, switch):
        """Attach egress links to ports 0 and 1, return their rx stores."""
        out0 = SerialLink(sim, LinkConfig(), name="out0")
        out1 = SerialLink(sim, LinkConfig(), name="out1")
        switch.attach_egress(0, out0)
        switch.attach_egress(1, out1)
        return out0, out1

    def test_forwarding_over_circuit(self):
        sim = Simulator()
        switch = CircuitSwitch(sim, ports=2, reconfiguration_s=0.0)
        _out0, out1 = self.wire(sim, switch)
        switch.connect(0, 1)
        switch.ingress_store(0).try_put(("frame", False))
        sim.run()
        assert out1.rx.try_get()[0] == "frame"
        assert switch.frames_forwarded == 1

    def test_no_circuit_discards(self):
        sim = Simulator()
        switch = CircuitSwitch(sim, ports=2)
        self.wire(sim, switch)
        switch.ingress_store(0).try_put(("dark", False))
        sim.run()
        assert switch.frames_discarded == 1

    def test_reconfiguration_blackout(self):
        sim = Simulator()
        switch = CircuitSwitch(sim, ports=2, reconfiguration_s=1e-3)
        _out0, out1 = self.wire(sim, switch)
        switch.connect(0, 1)
        switch.ingress_store(0).try_put(("too-early", False))
        sim.run(until=1e-4)
        assert switch.frames_discarded == 1
        # Advance past the blackout; the circuit then carries traffic.
        sim.run(until=2e-3)
        switch.ingress_store(0).try_put(("after", False))
        sim.run()
        assert out1.rx.try_get()[0] == "after"

    def test_egress_conflict_rejected(self):
        sim = Simulator()
        switch = CircuitSwitch(sim, ports=3)
        switch.connect(0, 2)
        with pytest.raises(SwitchError):
            switch.connect(1, 2)

    def test_disconnect(self):
        sim = Simulator()
        switch = CircuitSwitch(sim, ports=2)
        switch.connect(0, 1)
        switch.disconnect(0)
        assert switch.circuit_for(0) is None

    def test_minimum_ports(self):
        with pytest.raises(SwitchError):
            CircuitSwitch(Simulator(), ports=1)
