"""The ThymesisFlow datapath: RMMU, LLC, routing, endpoints, device."""

from .device import ThymesisFlowDevice
from .endpoints import (
    ComputeEndpoint,
    EndpointError,
    MemoryStealingEndpoint,
    RetryPolicy,
)
from .hbm import HbmCache, HbmCacheConfig
from .flow import (
    BONDING_FLAG,
    ActiveFlow,
    FlowError,
    FlowTable,
    base_network_id,
    is_bonded_wire_id,
)
from .llc import Frame, LlcConfig, LlcEndpoint, LlcError
from .rmmu import Rmmu, RmmuFault, SectionEntry
from .routing import RoutingError, RoutingLayer

__all__ = [
    "ThymesisFlowDevice",
    "ComputeEndpoint",
    "HbmCache",
    "HbmCacheConfig",
    "MemoryStealingEndpoint",
    "EndpointError",
    "RetryPolicy",
    "ActiveFlow",
    "FlowTable",
    "FlowError",
    "BONDING_FLAG",
    "base_network_id",
    "is_bonded_wire_id",
    "LlcEndpoint",
    "LlcConfig",
    "Frame",
    "LlcError",
    "Rmmu",
    "RmmuFault",
    "SectionEntry",
    "RoutingLayer",
    "RoutingError",
]
