"""Decision support: aggregate, judge, rank, and explain a design.

:func:`build_report` turns evaluated cells into the artifact behind
``python -m repro dse``: per-configuration response means, per-cell SLO
verdicts, a ranking of the configurations that meet every objective
(cheapest wire spend first), the breaching configurations with the
objectives they violate, and fitted sensitivity models naming the
factors that dominate each response.

Determinism: the report is a pure function of the cells (which are
pure functions of their specs), every collection is explicitly sorted,
and nothing wall-clock enters the artifact — the same design at the
same seed renders byte-identical text/JSON/markdown, which the CI
smoke job diffs across a cold and a warm (all-cache-hits) run.
"""

from __future__ import annotations

import json
from itertools import combinations
from typing import Any, Dict, List, Optional, Sequence

from ...obs.slo import parse_slo_specs
from .factors import DseDesignError
from .model import fit_effects
from .responses import DEFAULT_SLOS, evaluate_cell_slo

__all__ = [
    "RANKED_RESPONSES",
    "build_report",
    "render_text",
    "render_markdown",
]

#: Responses the sensitivity section models, in display order.
RANKED_RESPONSES = (
    "availability",
    "bandwidth_cost",
    "goodput_bytes_per_s",
    "downtime_s",
)


def _point_key(point: Dict[str, Any]) -> str:
    return json.dumps(point, sort_keys=True, separators=(",", ":"))


def _point_text(point: Dict[str, Any]) -> str:
    return " ".join(
        f"{name}={json.dumps(value)}" for name, value in point.items()
    )


def _num(value: float) -> str:
    return format(value, ".6g")


def build_report(
    *,
    design: Dict[str, Any],
    cells: Sequence[Dict[str, Any]],
    levels: Dict[str, List[Any]],
    slo_lines: Sequence[str] = DEFAULT_SLOS,
    objective: str = "bandwidth_cost",
) -> Dict[str, Any]:
    """Judge and rank an evaluated design.

    ``cells`` carry ``point``/``seed``/``replicate`` plus the
    ``value`` returned by ``run_cell``. ``levels`` is the design's
    per-factor level table (the coding for sensitivity models).
    ``objective`` names the response minimized among SLO-passing
    configurations.
    """
    if not cells:
        raise DseDesignError("cannot report on an empty design")
    if objective not in RANKED_RESPONSES:
        raise DseDesignError(
            f"unknown objective {objective!r} "
            f"(choose from {', '.join(RANKED_RESPONSES)})"
        )
    specs = parse_slo_specs(list(slo_lines))

    judged = []
    for cell in cells:
        verdict = evaluate_cell_slo(cell["value"], specs)
        judged.append({
            "point": dict(cell["point"]),
            "seed": cell["seed"],
            "replicate": cell["replicate"],
            "responses": dict(cell["value"]["responses"]),
            "verified": cell["value"]["verified"],
            "slo_ok": verdict["ok"],
            "breached": sorted(
                result["name"]
                for result in verdict["results"]
                if not result["ok"]
            ),
            "slo": verdict,
        })
    judged.sort(key=lambda c: (_point_key(c["point"]), c["seed"]))

    # Aggregate per configuration: response means over replicates; a
    # configuration passes only if every replicate passed.
    configs: Dict[str, Dict[str, Any]] = {}
    for cell in judged:
        key = _point_key(cell["point"])
        entry = configs.setdefault(key, {
            "point": cell["point"],
            "cells": 0,
            "seeds": [],
            "responses": {},
            "slo_ok": True,
            "breached": set(),
        })
        entry["cells"] += 1
        entry["seeds"].append(cell["seed"])
        entry["slo_ok"] = entry["slo_ok"] and cell["slo_ok"]
        entry["breached"].update(cell["breached"])
        for name, value in cell["responses"].items():
            entry["responses"].setdefault(name, []).append(value)
    config_rows = []
    for key in sorted(configs):
        entry = configs[key]
        config_rows.append({
            "point": entry["point"],
            "cells": entry["cells"],
            "seeds": sorted(entry["seeds"]),
            "responses": {
                name: sum(samples) / len(samples)
                for name, samples in sorted(entry["responses"].items())
            },
            "slo_ok": entry["slo_ok"],
            "breached": sorted(entry["breached"]),
        })

    passing = sorted(
        (row for row in config_rows if row["slo_ok"]),
        key=lambda row: (
            row["responses"].get(objective, 0.0), _point_key(row["point"])
        ),
    )
    breaching = sorted(
        (row for row in config_rows if not row["slo_ok"]),
        key=lambda row: (
            -len(row["breached"]), _point_key(row["point"])
        ),
    )

    # Sensitivity models over every cell (replicates included).
    points = [cell["point"] for cell in judged]
    varying = {
        name: vals for name, vals in levels.items() if len(vals) > 1
    }
    main_width = 1 + sum(len(vals) - 1 for vals in varying.values())
    pairs = list(combinations(varying, 2))
    pair_width = sum(
        (len(varying[a]) - 1) * (len(varying[b]) - 1) for a, b in pairs
    )
    # Pairwise interactions only when the design can support them.
    interactions = pairs if len(points) > main_width + pair_width else ()
    sensitivity = {}
    if varying:
        for response in RANKED_RESPONSES:
            model = fit_effects(
                points,
                [cell["responses"][response] for cell in judged],
                levels,
                response=response,
                interactions=interactions,
            )
            sensitivity[response] = model.describe()

    return {
        "design": dict(design),
        "levels": {name: list(vals) for name, vals in levels.items()},
        "objective": objective,
        "slo": list(slo_lines),
        "configs": config_rows,
        "ranking": {
            "passing": [
                _point_key(row["point"]) for row in passing
            ],
            "breaching": [
                _point_key(row["point"]) for row in breaching
            ],
        },
        "recommendation": (
            dict(passing[0]["point"]) if passing else None
        ),
        "sensitivity": sensitivity,
        "cells": judged,
    }


def _dominant_factors(
    report: Dict[str, Any], response: str, top: int = 2
) -> List[str]:
    model = report["sensitivity"].get(response)
    if model is None:
        return []
    return [
        f"{entry['factor']} (swing {_num(entry['importance'])})"
        for entry in model["factors"][:top]
        if entry["importance"] > 0.0
    ]


def render_text(report: Dict[str, Any]) -> str:
    """Terminal rendering of the decision-support report."""
    design = report["design"]
    configs = report["configs"]
    total_cells = sum(row["cells"] for row in configs)
    lines = [
        f"DSE decision support — {design.get('kind', 'design')}: "
        f"{len(configs)} configurations, {total_cells} cells",
        f"objective: minimize {report['objective']} subject to "
        f"{len(report['slo'])} SLO(s)",
    ]
    for spec in report["slo"]:
        lines.append(f"  slo  {spec}")

    by_key = {_point_key(row["point"]): row for row in configs}
    lines.append("")
    passing = report["ranking"]["passing"]
    if passing:
        lines.append(
            f"configurations meeting every SLO "
            f"(cheapest {report['objective']} first):"
        )
        for rank, key in enumerate(passing, start=1):
            row = by_key[key]
            lines.append(
                f"  {rank}. {_point_text(row['point'])}  "
                f"{report['objective']}={_num(row['responses'][report['objective']])}"
                f"  availability={_num(row['responses']['availability'])}"
            )
    else:
        lines.append("no configuration meets every SLO")

    breaching = report["ranking"]["breaching"]
    if breaching:
        lines.append("")
        lines.append("configurations breaching SLOs:")
        for key in breaching:
            row = by_key[key]
            lines.append(
                f"  x  {_point_text(row['point'])}  "
                f"breaches: {', '.join(row['breached'])}"
            )

    if report["sensitivity"]:
        lines.append("")
        lines.append("sensitivity (dominant factors per response):")
        for response in RANKED_RESPONSES:
            model = report["sensitivity"].get(response)
            if model is None:
                continue
            dominant = _dominant_factors(report, response)
            shown = ", ".join(dominant) if dominant else "none (flat)"
            lines.append(
                f"  {response}: {shown}  "
                f"[r2={_num(model['r_squared'])}]"
            )

    lines.append("")
    if report["recommendation"] is not None:
        lines.append(
            f"recommendation: {_point_text(report['recommendation'])}"
        )
    else:
        lines.append(
            "recommendation: none — relax the SLOs or widen the design"
        )
    return "\n".join(lines)


def render_markdown(report: Dict[str, Any]) -> str:
    """Markdown rendering (committed as the CI artifact)."""
    design = report["design"]
    configs = report["configs"]
    by_key = {_point_key(row["point"]): row for row in configs}
    factor_names = list(report["levels"])

    lines = [
        "# DSE decision support",
        "",
        f"- design: `{design.get('kind', 'design')}`",
        f"- configurations: {len(configs)} "
        f"({sum(row['cells'] for row in configs)} cells)",
        f"- objective: minimize `{report['objective']}` "
        f"subject to the SLOs below",
        "",
        "## Objectives",
        "",
    ]
    for spec in report["slo"]:
        lines.append(f"- `{spec}`")

    lines += ["", "## Ranking", ""]
    header = (
        ["rank"] + factor_names
        + [report["objective"], "availability", "SLO"]
    )
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    rank = 0
    for key in report["ranking"]["passing"]:
        rank += 1
        row = by_key[key]
        cells = [str(rank)]
        cells += [json.dumps(row["point"][name]) for name in factor_names]
        cells += [
            _num(row["responses"][report["objective"]]),
            _num(row["responses"]["availability"]),
            "pass",
        ]
        lines.append("| " + " | ".join(cells) + " |")
    for key in report["ranking"]["breaching"]:
        row = by_key[key]
        cells = ["—"]
        cells += [json.dumps(row["point"][name]) for name in factor_names]
        cells += [
            _num(row["responses"][report["objective"]]),
            _num(row["responses"]["availability"]),
            "BREACH: " + ", ".join(row["breached"]),
        ]
        lines.append("| " + " | ".join(cells) + " |")

    if report["sensitivity"]:
        lines += ["", "## Sensitivity", ""]
        for response in RANKED_RESPONSES:
            model = report["sensitivity"].get(response)
            if model is None:
                continue
            dominant = _dominant_factors(report, response)
            shown = ", ".join(dominant) if dominant else "none (flat)"
            lines.append(
                f"- `{response}`: {shown} (r² = {_num(model['r_squared'])})"
            )

    lines += ["", "## Recommendation", ""]
    if report["recommendation"] is not None:
        lines.append(f"`{_point_text(report['recommendation'])}`")
    else:
        lines.append("No configuration meets every SLO.")
    lines.append("")
    return "\n".join(lines)
