"""Tests for the OS model: sections, hotplug, page policies, migration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import AddressRange, MIB
from repro.osmodel import (
    HotplugError,
    LinuxKernel,
    NumaBalancer,
    OutOfMemory,
    PageAllocator,
    PagePolicy,
    SectionState,
    SparseMemoryModel,
)

SECTION = 1 * MIB
PAGE = 64 * 1024


def make_kernel(local_mb=16, two_sockets=False):
    kernel = LinuxKernel("host", section_bytes=SECTION, page_bytes=PAGE)
    kernel.add_boot_memory(
        0, AddressRange(0x0, local_mb * MIB), cpu_count=16
    )
    if two_sockets:
        kernel.add_boot_memory(
            1,
            AddressRange(0x1000_0000, local_mb * MIB),
            cpu_count=16,
            distances={0: 20},
        )
    return kernel


class TestSparseSections:
    def test_probe_creates_offline_sections(self):
        model = SparseMemoryModel(SECTION)
        sections = model.probe(0, 4 * SECTION)
        assert len(sections) == 4
        assert all(s.state is SectionState.OFFLINE for s in sections)

    def test_probe_unaligned_rejected(self):
        model = SparseMemoryModel(SECTION)
        with pytest.raises(Exception):
            model.probe(100, SECTION)

    def test_double_probe_rejected(self):
        model = SparseMemoryModel(SECTION)
        model.probe(0, SECTION)
        with pytest.raises(Exception):
            model.probe(0, SECTION)

    def test_online_offline_lifecycle(self):
        model = SparseMemoryModel(SECTION)
        model.probe(0, SECTION)
        model.online(0, numa_node=2)
        assert model.section(0).online
        assert model.section(0).numa_node == 2
        model.begin_offline(0)
        model.finish_offline(0)
        assert model.section(0).state is SectionState.OFFLINE
        model.remove(0)
        assert not model.present(0)

    def test_cannot_remove_online_section(self):
        model = SparseMemoryModel(SECTION)
        model.probe(0, SECTION)
        model.online(0, 0)
        with pytest.raises(Exception):
            model.remove(0)

    def test_cannot_online_twice(self):
        model = SparseMemoryModel(SECTION)
        model.probe(0, SECTION)
        model.online(0, 0)
        with pytest.raises(Exception):
            model.online(0, 0)

    def test_section_at_address(self):
        model = SparseMemoryModel(SECTION)
        model.probe(2 * SECTION, 2 * SECTION)
        assert model.section_at(2 * SECTION + 100).index == 2

    def test_total_online_bytes_per_node(self):
        model = SparseMemoryModel(SECTION)
        model.probe(0, 4 * SECTION)
        model.online(0, 0)
        model.online(1, 0)
        model.online(2, 5)
        assert model.total_online_bytes(0) == 2 * SECTION
        assert model.total_online_bytes(5) == SECTION
        assert model.total_online_bytes() == 3 * SECTION


class TestPageAllocator:
    def make(self):
        alloc = PageAllocator(PAGE)
        alloc.add_range(0, AddressRange(0, 64 * PAGE))
        alloc.add_range(1, AddressRange(0x1000_0000, 64 * PAGE))
        return alloc

    def test_local_policy_stays_on_node(self):
        alloc = self.make()
        pages = alloc.allocate(10, PagePolicy.LOCAL, nodes=[0])
        assert all(p.node_id == 0 for p in pages)

    def test_local_falls_back_when_exhausted(self):
        alloc = self.make()
        pages = alloc.allocate(
            100, PagePolicy.LOCAL, nodes=[0], fallback_order=[1]
        )
        nodes = {p.node_id for p in pages}
        assert nodes == {0, 1}
        assert sum(1 for p in pages if p.node_id == 0) == 64

    def test_interleave_is_50_50(self):
        alloc = self.make()
        pages = alloc.allocate(40, PagePolicy.INTERLEAVE, nodes=[0, 1])
        on0 = sum(1 for p in pages if p.node_id == 0)
        assert on0 == 20  # strict round-robin

    def test_interleave_alternates(self):
        alloc = self.make()
        pages = alloc.allocate(6, PagePolicy.INTERLEAVE, nodes=[0, 1])
        assert [p.node_id for p in pages] == [0, 1, 0, 1, 0, 1]

    def test_bind_does_not_fall_back(self):
        alloc = self.make()
        with pytest.raises(OutOfMemory):
            alloc.allocate(65, PagePolicy.BIND, nodes=[0])

    def test_failed_allocation_leaks_nothing(self):
        alloc = self.make()
        before = alloc.free_pages(0)
        with pytest.raises(OutOfMemory):
            alloc.allocate(200, PagePolicy.BIND, nodes=[0])
        assert alloc.free_pages(0) == before

    def test_free_returns_pages(self):
        alloc = self.make()
        pages = alloc.allocate(10, PagePolicy.LOCAL, nodes=[0])
        alloc.free(pages)
        assert alloc.free_pages(0) == 64

    def test_take_contiguous_returns_consecutive_range(self):
        alloc = self.make()
        pinned = alloc.take_contiguous(0, 8)
        assert pinned.size == 8 * PAGE
        assert pinned.start % PAGE == 0

    def test_take_contiguous_skips_fragmentation(self):
        alloc = PageAllocator(PAGE)
        alloc.add_range(0, AddressRange(0, 16 * PAGE))
        # Punch holes: allocate all, free alternating frames.
        pages = alloc.allocate(16, PagePolicy.BIND, nodes=[0])
        alloc.free([p for i, p in enumerate(pages) if i % 2 == 0])
        with pytest.raises(OutOfMemory):
            alloc.take_contiguous(0, 2)

    def test_release_contiguous_roundtrip(self):
        alloc = self.make()
        pinned = alloc.take_contiguous(0, 8)
        alloc.release_contiguous(pinned)
        assert alloc.free_pages(0) == 64
        again = alloc.take_contiguous(0, 64)
        assert again.size == 64 * PAGE

    def test_has_allocated_in(self):
        alloc = self.make()
        pages = alloc.allocate(1, PagePolicy.BIND, nodes=[0])
        assert alloc.has_allocated_in(0, pages[0].range)
        alloc.free(pages)
        assert not alloc.has_allocated_in(0, pages[0].range)

    @settings(max_examples=30, deadline=None)
    @given(
        takes=st.lists(st.integers(min_value=1, max_value=8), max_size=10),
    )
    def test_page_conservation_property(self, takes):
        alloc = PageAllocator(PAGE)
        total = 128
        alloc.add_range(0, AddressRange(0, total * PAGE))
        live = []
        for n in takes:
            try:
                live.extend(alloc.allocate(n, PagePolicy.BIND, nodes=[0]))
            except OutOfMemory:
                pass
        assert alloc.free_pages(0) + len(live) == total
        seen = {p.pfn for p in live}
        assert len(seen) == len(live)  # no double allocation


class TestKernelHotplug:
    def test_boot_memory_is_online(self):
        kernel = make_kernel()
        assert kernel.sparse.total_online_bytes(0) == 16 * MIB
        assert kernel.pages.free_pages(0) == 16 * MIB // PAGE

    def test_hotplug_grows_cpuless_node(self):
        kernel = make_kernel()
        kernel.create_cpuless_node(2, base_latency_s=950e-9,
                                   distances={0: 80})
        sections = kernel.hotplug_probe(0x2000_0000, 4 * SECTION)
        added = kernel.hotplug_online([s.index for s in sections], 2)
        assert added == 4 * MIB
        assert kernel.topology.node(2).memory_bytes == 4 * MIB
        assert kernel.pages.free_pages(2) == 4 * MIB // PAGE

    def test_allocate_from_hotplugged_node(self):
        kernel = make_kernel()
        kernel.create_cpuless_node(2, 950e-9, {0: 80})
        sections = kernel.hotplug_probe(0x2000_0000, 2 * SECTION)
        kernel.hotplug_online([s.index for s in sections], 2)
        mapping = kernel.mmap(1 * MIB, PagePolicy.BIND, nodes=[2])
        assert all(p.node_id == 2 for p in mapping.pages)

    def test_offline_busy_section_fails(self):
        kernel = make_kernel()
        kernel.create_cpuless_node(2, 950e-9, {0: 80})
        sections = kernel.hotplug_probe(0x2000_0000, SECTION)
        kernel.hotplug_online([s.index for s in sections], 2)
        mapping = kernel.mmap(PAGE, PagePolicy.BIND, nodes=[2])
        with pytest.raises(HotplugError, match="busy"):
            kernel.hotplug_offline([sections[0].index])
        kernel.munmap(mapping)
        assert kernel.hotplug_offline([sections[0].index]) == SECTION

    def test_full_attach_detach_cycle(self):
        kernel = make_kernel()
        kernel.create_cpuless_node(2, 950e-9, {0: 80})
        sections = kernel.hotplug_probe(0x2000_0000, 2 * SECTION)
        indices = [s.index for s in sections]
        kernel.hotplug_online(indices, 2)
        kernel.hotplug_offline(indices)
        kernel.hotplug_remove(indices)
        kernel.remove_node(2)
        assert 2 not in kernel.topology
        # Can attach again at the same address.
        kernel.hotplug_probe(0x2000_0000, 2 * SECTION)

    def test_online_into_missing_node_fails(self):
        kernel = make_kernel()
        sections = kernel.hotplug_probe(0x2000_0000, SECTION)
        with pytest.raises(HotplugError):
            kernel.hotplug_online([sections[0].index], 9)

    def test_mapping_offset_math(self):
        kernel = make_kernel()
        mapping = kernel.mmap(4 * PAGE)
        address = mapping.address_for_offset(PAGE + 100)
        assert address == mapping.pages[1].address + 100

    def test_node_histogram(self):
        kernel = make_kernel(two_sockets=True)
        mapping = kernel.mmap(
            8 * PAGE, PagePolicy.INTERLEAVE, nodes=[0, 1]
        )
        histogram = mapping.node_histogram()
        assert histogram == {0: 4, 1: 4}

    def test_pin_contiguous_rounds_to_sections(self):
        kernel = make_kernel()
        pinned = kernel.pin_contiguous(3 * PAGE, node_id=0)
        assert pinned.size == 3 * PAGE
        kernel.unpin(pinned)


class TestNumaBalancer:
    def build(self):
        kernel = make_kernel()
        kernel.create_cpuless_node(2, 950e-9, {0: 80})
        sections = kernel.hotplug_probe(0x2000_0000, 4 * SECTION)
        kernel.hotplug_online([s.index for s in sections], 2)
        balancer = NumaBalancer(kernel, sample_period=1, min_samples=2)
        return kernel, balancer

    def test_hot_remote_page_migrates_local(self):
        kernel, balancer = self.build()
        mapping = kernel.mmap(2 * PAGE, PagePolicy.BIND, nodes=[2])
        for _ in range(8):
            balancer.record_access(mapping, 0, cpu_node=0)
        moved = balancer.balance(mapping)
        assert moved == 1
        assert mapping.pages[0].node_id == 0
        assert mapping.pages[1].node_id == 2  # untouched page stays

    def test_cold_page_not_migrated(self):
        kernel, balancer = self.build()
        mapping = kernel.mmap(PAGE, PagePolicy.BIND, nodes=[2])
        balancer.record_access(mapping, 0, cpu_node=0)  # below min_samples
        assert balancer.balance(mapping) == 0

    def test_local_page_stays(self):
        kernel, balancer = self.build()
        mapping = kernel.mmap(PAGE, PagePolicy.BIND, nodes=[0])
        for _ in range(8):
            balancer.record_access(mapping, 0, cpu_node=0)
        assert balancer.balance(mapping) == 0

    def test_migration_respects_capacity(self):
        kernel, balancer = self.build()
        # Fill node 0 completely so nothing can migrate into it.
        filler = kernel.mmap(16 * MIB, PagePolicy.BIND, nodes=[0])
        mapping = kernel.mmap(PAGE, PagePolicy.BIND, nodes=[2])
        for _ in range(8):
            balancer.record_access(mapping, 0, cpu_node=0)
        assert balancer.balance(mapping) == 0
        assert balancer.stats.refused_capacity == 1
        kernel.munmap(filler)

    def test_migration_budget(self):
        kernel, balancer = self.build()
        mapping = kernel.mmap(4 * PAGE, PagePolicy.BIND, nodes=[2])
        for index in range(4):
            for _ in range(8):
                balancer.record_access(mapping, index, cpu_node=0)
        assert balancer.balance(mapping, max_migrations=2) == 2

    def test_sampling_period(self):
        kernel = make_kernel()
        balancer = NumaBalancer(kernel, sample_period=16)
        mapping = kernel.mmap(PAGE)
        for _ in range(32):
            balancer.record_access(mapping, 0, cpu_node=0)
        assert balancer.stats.samples == 2
