"""Deterministic discrete-event simulation kernel and instrumentation."""

from .domains import DomainCoordinator, DomainMessage, SyncError
from .engine import (
    Interrupt,
    Process,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import CreditPool, Resource, Store
from .rng import SeededRNG, ZipfGenerator
from .stats import (
    Histogram,
    LatencyRecorder,
    RunningStats,
    TimeWeightedValue,
    cdf_points,
    percentile,
)

__all__ = [
    "Simulator",
    "DomainCoordinator",
    "DomainMessage",
    "SyncError",
    "Process",
    "Signal",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
    "CreditPool",
    "SeededRNG",
    "ZipfGenerator",
    "RunningStats",
    "Histogram",
    "LatencyRecorder",
    "TimeWeightedValue",
    "percentile",
    "cdf_points",
]
