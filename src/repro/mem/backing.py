"""Sparse byte-level backing store for simulated DRAM.

The reproduction is *functional*: a load really returns the bytes the
last store wrote, across the whole disaggregated datapath. To keep a
512 GiB address space representable on a laptop, storage is sparse —
fixed-size chunks are materialized on first write, and reads of
untouched memory return zeros (matching freshly-onlined RAM).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .address import AddressError, AddressRange

__all__ = ["BackingStore"]


class BackingStore:
    """Sparse, chunked byte store over an address window.

    ``chunk_bytes`` trades dictionary overhead against allocation
    granularity; 64 KiB is a good default for cacheline-grained traffic.
    """

    def __init__(
        self,
        window: AddressRange,
        chunk_bytes: int = 64 * 1024,
        name: str = "dram",
    ):
        if chunk_bytes <= 0 or (chunk_bytes & (chunk_bytes - 1)) != 0:
            raise AddressError(
                f"chunk_bytes must be a power of two: {chunk_bytes}"
            )
        self.window = window
        self.chunk_bytes = chunk_bytes
        self.name = name
        self._chunks: Dict[int, np.ndarray] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # -- core accessors ---------------------------------------------------------
    def write(self, address: int, data: bytes) -> None:
        """Store ``data`` at ``address`` (may straddle chunks)."""
        size = len(data)
        self._check(address, size)
        if size == 0:
            return
        chunk_bytes = self.chunk_bytes
        chunk_index, chunk_offset = divmod(address, chunk_bytes)
        if chunk_offset + size <= chunk_bytes:
            # Fast path: the write lands in a single chunk — assign the
            # bytes straight through the array's memoryview, no
            # np.frombuffer copy.
            chunk = self._chunks.get(chunk_index)
            if chunk is None:
                chunk = np.zeros(chunk_bytes, dtype=np.uint8)
                self._chunks[chunk_index] = chunk
            memoryview(chunk)[chunk_offset : chunk_offset + size] = data
            self.bytes_written += size
            return
        view = memoryview(data)
        cursor = address
        remaining = size
        offset = 0
        while remaining > 0:
            chunk_index, chunk_offset = divmod(cursor, chunk_bytes)
            span = min(remaining, chunk_bytes - chunk_offset)
            chunk = self._chunks.get(chunk_index)
            if chunk is None:
                chunk = np.zeros(chunk_bytes, dtype=np.uint8)
                self._chunks[chunk_index] = chunk
            memoryview(chunk)[chunk_offset : chunk_offset + span] = view[
                offset : offset + span
            ]
            cursor += span
            offset += span
            remaining -= span
        self.bytes_written += size

    def read(self, address: int, size: int) -> bytes:
        """Load ``size`` bytes; untouched memory reads as zeros."""
        self._check(address, size)
        chunk_bytes = self.chunk_bytes
        chunk_index, chunk_offset = divmod(address, chunk_bytes)
        if chunk_offset + size <= chunk_bytes:
            # Fast path: single-chunk read — slice and serialize without
            # the intermediate zero array.
            self.bytes_read += size
            chunk = self._chunks.get(chunk_index)
            if chunk is None:
                return bytes(size)
            return chunk[chunk_offset : chunk_offset + size].tobytes()
        # Straddling read: assemble into the result buffer directly (a
        # zero-initialized bytearray) instead of a numpy scratch array
        # plus a tobytes copy.
        out = bytearray(size)
        out_view = memoryview(out)
        cursor = address
        remaining = size
        offset = 0
        while remaining > 0:
            chunk_index, chunk_offset = divmod(cursor, chunk_bytes)
            span = min(remaining, chunk_bytes - chunk_offset)
            chunk = self._chunks.get(chunk_index)
            if chunk is not None:
                out_view[offset : offset + span] = memoryview(chunk)[
                    chunk_offset : chunk_offset + span
                ]
            cursor += span
            offset += span
            remaining -= span
        self.bytes_read += size
        out_view.release()
        return bytes(out)

    def read_view(self, address: int, size: int) -> memoryview:
        """Zero-copy read of a range that fits one materialized chunk.

        Returns a read-only view aliasing the live chunk — a later
        ``write`` to the same range changes what the view observes, so
        callers must consume (or copy) it before yielding control.
        Falls back to a view over a fresh ``read`` when the range
        straddles chunks or touches unmaterialized memory.
        """
        self._check(address, size)
        chunk_index, chunk_offset = divmod(address, self.chunk_bytes)
        if chunk_offset + size <= self.chunk_bytes:
            chunk = self._chunks.get(chunk_index)
            if chunk is not None:
                self.bytes_read += size
                return memoryview(chunk).toreadonly()[
                    chunk_offset : chunk_offset + size
                ]
        return memoryview(self.read(address, size))

    def fill(self, address: int, size: int, value: int = 0) -> None:
        """memset-style fill (used for zeroing donated sections)."""
        self._check(address, size)
        if not 0 <= value <= 255:
            raise AddressError(f"fill value must be a byte: {value}")
        cursor = address
        remaining = size
        while remaining > 0:
            chunk_index, chunk_offset = divmod(cursor, self.chunk_bytes)
            span = min(remaining, self.chunk_bytes - chunk_offset)
            if value == 0 and chunk_index not in self._chunks:
                pass  # zero-fill of unmaterialized memory is a no-op
            else:
                chunk = self._chunks.get(chunk_index)
                if chunk is None:
                    chunk = np.zeros(self.chunk_bytes, dtype=np.uint8)
                    self._chunks[chunk_index] = chunk
                chunk[chunk_offset : chunk_offset + span] = value
            cursor += span
            remaining -= span

    def copy_range(
        self,
        source: int,
        destination: int,
        size: int,
        other: Optional["BackingStore"] = None,
    ) -> None:
        """Copy bytes, possibly across stores (page-migration support)."""
        target = other if other is not None else self
        if target is not self:
            # Cross-store copy consumes the view immediately, so the
            # zero-copy chunk alias is safe and skips the bytes round
            # trip entirely on single-chunk ranges.
            target.write(destination, self.read_view(source, size))
            return
        target.write(destination, self.read(source, size))

    # -- introspection ------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Host memory actually materialized by the sparse store."""
        return len(self._chunks) * self.chunk_bytes

    def discard(self, address: int, size: int) -> None:
        """Drop whole chunks fully inside the range (hot-unplug teardown)."""
        self._check(address, size)
        first_full = -(-address // self.chunk_bytes)
        last_full = (address + size) // self.chunk_bytes
        for chunk_index in range(first_full, last_full):
            self._chunks.pop(chunk_index, None)

    def _check(self, address: int, size: int) -> None:
        if size < 0:
            raise AddressError(f"negative size: {size}")
        if size == 0:
            return
        access = AddressRange(address, size)
        if not self.window.contains_range(access):
            raise AddressError(
                f"{self.name}: access [{address:#x}, {address + size:#x}) "
                f"outside window [{self.window.start:#x}, "
                f"{self.window.end:#x})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BackingStore({self.name!r}, resident="
            f"{self.resident_bytes // 1024} KiB)"
        )
