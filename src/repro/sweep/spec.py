"""Declarative, hashable description of one simulation run.

A :class:`RunSpec` names *what* to run (a target in one of three
addressable namespaces), *how* (JSON-canonical keyword arguments and an
optional seed) and *against which code* (a fingerprint of the source
tree). Two specs with the same :attr:`RunSpec.key` are guaranteed to
describe the same computation on the same code, which is what makes the
content-addressed result cache sound.

Target namespaces (resolved by :mod:`repro.sweep.engine`):

* ``slice:<name>``  — a figure slice from ``repro.figures.SLICES``
  (the unit of parallelism when regenerating paper figures);
* ``figure:<name>`` — a whole figure function from
  ``repro.figures.FIGURES``;
* ``py:<module>:<function>`` — any importable function returning a
  JSON-serializable value (used by the benchmark drivers).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from .. import accel
from .fingerprint import combine_fingerprints, file_digest, source_fingerprint

__all__ = ["RunSpec", "make_spec"]


def _canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(frozen=True)
class RunSpec:
    """One hashable unit of sweep work. Build via :func:`make_spec`."""

    target: str
    kwargs_json: str
    seed: Optional[int]
    fingerprint: str

    @property
    def kwargs(self) -> Dict[str, Any]:
        return json.loads(self.kwargs_json)

    @property
    def key(self) -> str:
        """Content address: sha256 over the canonical spec envelope."""
        envelope = _canonical_json(
            {
                "target": self.target,
                "kwargs": json.loads(self.kwargs_json),
                "seed": self.seed,
                "fingerprint": self.fingerprint,
            }
        )
        return hashlib.sha256(envelope.encode("utf-8")).hexdigest()

    def payload(self) -> Dict[str, Any]:
        """Picklable dict shipped to worker processes."""
        return {
            "target": self.target,
            "kwargs": self.kwargs,
            "seed": self.seed,
            "key": self.key,
        }

    def describe(self) -> str:
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return f"{self.target} {self.kwargs_json}{seed}"


def make_spec(
    target: str,
    *,
    seed: Optional[int] = None,
    fingerprint: Optional[str] = None,
    extra_files: Iterable[str] = (),
    **kwargs: Any,
) -> RunSpec:
    """Build a :class:`RunSpec` with a canonicalized kwargs payload.

    ``extra_files`` extends the default source fingerprint with files
    outside the ``repro`` package that the target's behaviour depends
    on (e.g. the benchmark module defining a ``py:`` target). Kwargs
    must be JSON-serializable — tuples become lists, and the target
    sees the round-tripped values, so in-process and subprocess
    execution receive identical arguments.

    The default fingerprint also folds in the active accel backend
    (``REPRO_BACKEND``): backends are differentially tested to be
    bit-identical, but the cache must not *assume* that property — a
    result produced under one backend is never served for a run
    requested under the other.
    """
    kwargs_json = _canonical_json(kwargs)
    if fingerprint is None:
        fingerprint = combine_fingerprints(
            source_fingerprint(),
            "backend:" + accel.ops.NAME,
            *[file_digest(path) for path in extra_files],
        )
    return RunSpec(
        target=target,
        kwargs_json=kwargs_json,
        seed=seed,
        fingerprint=fingerprint,
    )
