"""Hierarchical metrics registry: counters, gauges, histograms, labels.

Naming scheme (see ``docs/observability.md``): metric names are dotted
hierarchies rooted at the owning component (``llc.replays_requested``,
``dram.banks_in_use``, ``net.faults.frames_dropped``); **labels**
identify the instance (``node=node0``, ``endpoint=tf.llc0``). The
qualified form rendered in snapshots is ``name{k=v,...}`` with labels
sorted by key.

Two usage styles:

* **Push** — new instrumentation creates a metric once and updates it
  inline (``registry.counter("x").inc()``).
* **Pull (collectors)** — existing components keep their cheap private
  counters on the hot path and register a *collector* callback that
  copies them into registry gauges at snapshot time. This is how the
  scattered per-component counters (LLC replay counts, fault-injector
  drops, link byte counts, RMMU translations...) surface through one
  audited path with zero steady-state overhead.

Stdlib-only on purpose: the simulation kernel hooks into ``repro.obs``
and must not import back into ``repro.sim``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "parse_qualified",
]

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def qualified_name(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_qualified(qualified: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`qualified_name`: ``name{k=v,...}`` -> (name, labels).

    Label values containing ``,`` or ``}`` are not representable in the
    qualified form and therefore not parseable back; the components
    (link names, config kinds, targets) never use them.
    """
    if qualified.endswith("}") and "{" in qualified:
        name, _, inner = qualified.partition("{")
        labels = dict(
            item.split("=", 1) for item in inner[:-1].split(",") if item
        )
        return name, labels
    return qualified, {}


class _Metric:
    __slots__ = ("name", "labels")

    kind = "metric"

    def __init__(self, name: str, labels: LabelSet):
        self.name = name
        self.labels = labels

    @property
    def qualified(self) -> str:
        return qualified_name(self.name, self.labels)

    def sample(self) -> Dict[str, float]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        self.value += amount

    def sample(self) -> Dict[str, float]:
        return {self.qualified: self.value}


class Gauge(_Metric):
    """A value that can go up and down (or mirror a pulled counter)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def adjust(self, delta: float) -> None:
        self.value += delta

    def sample(self) -> Dict[str, float]:
        return {self.qualified: self.value}


class HistogramMetric(_Metric):
    """Fixed-bin histogram over ``[low, high)`` with outlier bins.

    Snapshot exposes count / total / mean plus per-bucket cumulative
    counts (``_bucket_le`` keys, Prometheus-style).
    """

    __slots__ = ("low", "high", "bins", "counts", "underflow", "overflow",
                 "count", "total", "_width")

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelSet, low: float, high: float, bins: int
    ):
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        if bins < 1:
            raise ValueError(f"need bins >= 1, got {bins}")
        super().__init__(name, labels)
        self.low = low
        self.high = high
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self._width = (high - low) / bins

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            self.counts[int((value - self.low) / self._width)] += 1

    def quantile(self, q: float) -> float:
        """Estimate the q-th percentile (``q`` in [0, 100]).

        Linear interpolation within the bucket holding the rank, with
        every boundary case pinned to a defined value: an empty
        histogram returns 0.0; ranks landing in the underflow region
        return ``low``; ranks landing in the overflow region return
        ``high`` (the histogram genuinely does not know more than the
        bound the outlier crossed); a single-sample histogram
        interpolates inside that sample's bucket for every q, so
        p50/p99/p99.9 are all well-defined and lie within the bucket.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        if rank <= self.underflow:
            return self.low
        cumulative = self.underflow
        for index, bucket in enumerate(self.counts):
            if bucket and rank <= cumulative + bucket:
                left = self.low + index * self._width
                return left + (rank - cumulative) / bucket * self._width
            cumulative += bucket
        return self.high

    def sample(self) -> Dict[str, float]:
        base = self.qualified
        out = {
            f"{base}.count": self.count,
            f"{base}.total": self.total,
            f"{base}.mean": self.total / self.count if self.count else 0.0,
            f"{base}.p50": self.quantile(50.0),
            f"{base}.p99": self.quantile(99.0),
            f"{base}.p999": self.quantile(99.9),
        }
        cumulative = self.underflow
        for index, bucket in enumerate(self.counts):
            cumulative += bucket
            edge = self.low + (index + 1) * self._width
            out[f"{base}.bucket_le_{edge:g}"] = cumulative
        out[f"{base}.bucket_le_inf"] = cumulative + self.overflow
        return out


class MetricsRegistry:
    """Get-or-create registry keyed by ``(name, labelset)``.

    ``snapshot()`` first runs every registered collector (the pull
    side), then flattens all metrics into one ``{qualified: value}``
    dict — the exchange format for JSON export and summary rendering.
    """

    def __init__(self, name: str = "repro"):
        self.name = name
        self._metrics: Dict[Tuple[str, LabelSet], _Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- get-or-create ---------------------------------------------------------
    def _get(self, cls, name: str, labels: Dict[str, Any], *args) -> _Metric:
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], *args)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {qualified_name(name, key[1])!r} already "
                f"registered as {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        low: float = 0.0,
        high: float = 1.0,
        bins: int = 20,
        **labels: Any,
    ) -> HistogramMetric:
        metric = self._get(HistogramMetric, name, labels, low, high, bins)
        return metric

    # -- pull side -------------------------------------------------------------
    def add_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a callback run at every snapshot (pull-model)."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    def merge_flat(self, flat: Dict[str, Any], **extra_labels: Any) -> None:
        """Merge a flattened snapshot by summation.

        This is how per-worker counters from a parallel sweep fold into
        the parent registry: each ``{qualified: value}`` series is
        parsed back into (name, labels) and accumulated into a gauge,
        so N workers' ``sweep.worker.busy_s`` sum into one series.
        Summation is exact for counter-style series; derived series
        (means, percentiles) should not be merged this way.

        ``extra_labels`` are stamped onto every merged series (without
        overriding a label the series already carries) — the cluster
        replay uses it to keep each rack domain's series distinct
        (``domain="rack0"``) in one parent registry.
        """
        for qualified, value in flat.items():
            name, labels = parse_qualified(qualified)
            for key, extra in extra_labels.items():
                labels.setdefault(key, extra)
            self.gauge(name, **labels).adjust(float(value))

    # -- output ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Collect, then flatten every metric into one sorted dict."""
        self.collect()
        flat: Dict[str, float] = {}
        for metric in self._metrics.values():
            flat.update(metric.sample())
        return dict(sorted(flat.items()))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: one metric's snapshot value (collects first)."""
        self.collect()
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            raise KeyError(qualified_name(name, _labelset(labels)))
        sample = metric.sample()
        return sample[metric.qualified] if metric.qualified in sample else sample

    def metrics(self) -> List[_Metric]:
        """Every registered metric object, in registration order.

        This is the typed view exporters use (e.g. the Prometheus
        text renderer, which needs kind and bucket structure rather
        than the flattened snapshot).
        """
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry({self.name!r}, metrics={len(self._metrics)}, "
            f"collectors={len(self._collectors)})"
        )
