"""Control-plane self-healing: health tracking and failover execution.

The datapath reports failures upward (a
:class:`~repro.core.endpoints.ComputeEndpoint` that exhausts its retry
budget raises :class:`~repro.errors.RemoteMemoryError` and notifies its
failure listeners); the :class:`HealthMonitor` turns those signals into
attachment health state and, on request, executes a **failover**: force
detach from the dead lender, re-plan onto a surviving one, re-attach,
and replay the borrower-side journal so the remote buffer's contents
survive the lender byte-for-byte.

Failover is deliberately *not* run from inside the failure listener:
listeners fire while the simulation loop is executing the failing
transaction, and a failover drives the simulator itself (settle windows
after re-attach). The driving code catches ``RemoteMemoryError`` outside
``sim.run`` and then calls :meth:`HealthMonitor.failover`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.flow import base_network_id
from ..errors import RemoteMemoryError
from ..obs import events as _events
from ..obs import trace as _trace
from .orchestrator import Attachment, UnknownAttachmentError

__all__ = ["HealthState", "FailoverReport", "HealthMonitor"]


class HealthState(enum.Enum):
    """Per-attachment health, as reported on ``GET /v1/health``."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"


@dataclass(frozen=True)
class FailoverReport:
    """Outcome of one executed failover."""

    old_attachment_id: int
    new_attachment: Attachment
    old_memory_host: str
    new_memory_host: str
    recovery_time_s: float
    replayed_bytes: int

    def describe(self) -> Dict:
        return {
            "old_attachment": self.old_attachment_id,
            "new_attachment": self.new_attachment.attachment_id,
            "old_memory_host": self.old_memory_host,
            "new_memory_host": self.new_memory_host,
            "recovery_time_s": self.recovery_time_s,
            "replayed_bytes": self.replayed_bytes,
        }


@dataclass
class _Watch:
    attachment: Attachment
    buffer: Optional[object] = None  # ResilientBuffer, if journaled
    state: HealthState = HealthState.HEALTHY
    failures: int = 0
    last_error: Optional[str] = None

    def describe(self) -> Dict:
        return {
            "id": self.attachment.attachment_id,
            "state": self.state.value,
            "failures": self.failures,
            "compute_host": self.attachment.compute_host,
            "memory_host": self.attachment.memory_host,
            "last_error": self.last_error,
        }


class HealthMonitor:
    """Watches attachments for datapath failures and heals them.

    ``dead_after_failures`` is the escalation threshold: below it a
    failing attachment is DEGRADED (transient loss still being retried);
    at or above it the attachment is DEAD and eligible for failover.
    """

    def __init__(self, testbed, dead_after_failures: int = 1):
        self.testbed = testbed
        self.dead_after_failures = max(1, int(dead_after_failures))
        self._watches: Dict[int, _Watch] = {}
        self._wired_endpoints: set = set()
        self.reports: List[FailoverReport] = []
        # counters (registered via register_metrics)
        self.failures_observed = 0
        self.failovers = 0
        self.last_recovery_time_s = 0.0
        self.replayed_bytes = 0

    # -- wiring --------------------------------------------------------------------
    def watch(self, attachment: Attachment, buffer=None) -> None:
        """Track an attachment; ``buffer`` enables journal replay."""
        self._watches[attachment.attachment_id] = _Watch(
            attachment=attachment, buffer=buffer
        )
        endpoint = self.testbed.node(attachment.compute_host).device.compute
        if id(endpoint) not in self._wired_endpoints:
            endpoint.add_failure_listener(self._on_endpoint_failure)
            self._wired_endpoints.add(id(endpoint))

    def unwatch(self, attachment_id: int) -> None:
        self._watches.pop(attachment_id, None)

    # -- failure intake ------------------------------------------------------------
    def _on_endpoint_failure(
        self, endpoint, error: RemoteMemoryError
    ) -> None:
        failed_network = error.details.get("network_id")
        if failed_network is None:
            return
        flow_id = base_network_id(failed_network)
        for watch in self._watches.values():
            if base_network_id(watch.attachment.flow.wire_network_id) == flow_id:
                self._record_failure(watch, str(error))
                return

    def report_failure(
        self, attachment_id: int, reason: str = "reported"
    ) -> None:
        """Out-of-band failure report (e.g. from an operator or probe)."""
        watch = self._watch(attachment_id)
        self._record_failure(watch, reason)

    def _record_failure(self, watch: _Watch, reason: str) -> None:
        watch.failures += 1
        watch.last_error = reason
        self.failures_observed += 1
        watch.state = (
            HealthState.DEAD
            if watch.failures >= self.dead_after_failures
            else HealthState.DEGRADED
        )
        if _trace.ENABLED:
            _trace.instant(
                f"health.{watch.state.value}",
                self.testbed.sim.now,
                "control",
                attachment=watch.attachment.attachment_id,
            )
        if _events.ENABLED:
            _events.emit(
                self.testbed.sim.now,
                "health.fault",
                attachment=watch.attachment.attachment_id,
                state=watch.state.value,
                failures=watch.failures,
                reason=reason,
            )

    # -- queries --------------------------------------------------------------------
    def _watch(self, attachment_id: int) -> _Watch:
        try:
            return self._watches[attachment_id]
        except KeyError:
            raise UnknownAttachmentError(
                f"attachment {attachment_id} is not monitored",
                attachment_id=attachment_id,
            ) from None

    def state_of(self, attachment_id: int) -> HealthState:
        return self._watch(attachment_id).state

    def describe(self) -> Dict:
        states = [w.state for w in self._watches.values()]
        overall = (
            "ok"
            if all(s is HealthState.HEALTHY for s in states)
            else "degraded"
        )
        return {
            "status": overall,
            "attachments": [w.describe() for w in self._watches.values()],
            "failovers": [r.describe() for r in self.reports],
        }

    # -- recovery -------------------------------------------------------------------
    def failover(self, attachment_id: int) -> FailoverReport:
        """Move a dead attachment to a surviving lender.

        Quarantines the journaled buffer (unmaps its pages so the donor
        can be force-offlined), force-detaches through the control
        plane, re-plans excluding the failed lender, re-attaches, and
        replays the write journal into the new lender's memory.
        """
        watch = self._watch(attachment_id)
        old = watch.attachment
        sim = self.testbed.sim
        started = sim.now

        buffer = watch.buffer
        if buffer is not None:
            buffer.quarantine()
        self.testbed.detach(old, force=True)

        plane = self.testbed.plane
        donor = plane.planner.pick_donor(
            old.compute_host, old.size, exclude=(old.memory_host,)
        )
        new = self.testbed.attach(
            old.compute_host, old.size, memory_host=donor
        )

        replayed = 0
        if buffer is not None:
            replayed = buffer.rebind(self.testbed, new)

        recovery = sim.now - started
        report = FailoverReport(
            old_attachment_id=attachment_id,
            new_attachment=new,
            old_memory_host=old.memory_host,
            new_memory_host=donor,
            recovery_time_s=recovery,
            replayed_bytes=replayed,
        )
        self.reports.append(report)
        self.failovers += 1
        self.last_recovery_time_s = recovery
        self.replayed_bytes += replayed

        # The new attachment starts a fresh health history.
        del self._watches[attachment_id]
        self.watch(new, buffer=buffer)

        if _trace.ENABLED:
            _trace.span(
                "health.failover",
                started,
                sim.now,
                "control",
                old=attachment_id,
                new=new.attachment_id,
                donor=donor,
            )
        if _events.ENABLED:
            _events.emit(
                sim.now,
                "health.failover",
                attachment=attachment_id,
                new_attachment=new.attachment_id,
                old_memory_host=old.memory_host,
                new_memory_host=donor,
                recovery_time_s=recovery,
                replayed_bytes=replayed,
            )
        return report

    # -- observability ---------------------------------------------------------------
    def register_metrics(self, registry, **labels) -> None:
        def collect(reg):
            base = dict(component="health", **labels)
            reg.gauge("health.failures_observed", **base).set(
                self.failures_observed
            )
            reg.gauge("health.failovers", **base).set(self.failovers)
            reg.gauge("health.last_recovery_time_s", **base).set(
                self.last_recovery_time_s
            )
            reg.gauge("health.replayed_bytes", **base).set(
                self.replayed_bytes
            )
            dead = sum(
                1
                for w in self._watches.values()
                if w.state is HealthState.DEAD
            )
            reg.gauge("health.attachments_dead", **base).set(dead)
            reg.gauge("health.attachments_watched", **base).set(
                len(self._watches)
            )

        registry.add_collector(collect)
