"""SLO engine: spec grammar, evaluation semantics, breach events, and
the chaos-scenario integration that CI's breach canary relies on.
"""

import pytest

from repro.obs import (
    MetricsRegistry,
    SloEngine,
    SloSpec,
    event_logging,
    parse_slo_specs,
)
from repro.resilience import run_scenario
from repro.sim import Simulator


class TestSpecGrammar:
    def test_parse_full_spec(self):
        spec = SloSpec.parse(
            "remote-read-p99: endpoint.rtt_p99_s{endpoint=cpu0} <= 2.5e-6"
        )
        assert spec.name == "remote-read-p99"
        assert spec.metric == "endpoint.rtt_p99_s"
        assert spec.labels == (("endpoint", "cpu0"),)
        assert spec.op == "<="
        assert spec.threshold == 2.5e-6
        assert spec.qualified == "endpoint.rtt_p99_s{endpoint=cpu0}"

    def test_labels_are_optional_and_sorted(self):
        spec = SloSpec.parse("x: m{b=2,a=1} > 0")
        assert spec.labels == (("a", "1"), ("b", "2"))
        assert SloSpec.parse("y: m >= 1").labels == ()

    def test_quoted_label_values_are_stripped(self):
        spec = SloSpec.parse('x: m{node="node0"} == 0')
        assert spec.labels == (("node", "node0"),)

    @pytest.mark.parametrize("op", ["<=", "<", ">=", ">", "=="])
    def test_all_operators_parse(self, op):
        assert SloSpec.parse(f"x: m {op} 1").op == op

    @pytest.mark.parametrize(
        "bad",
        [
            "no-colon m <= 1",
            "x: m != 1",          # unsupported operator
            "x: m <= not-a-number",
            "x: m{oops} <= 1",    # label without '='
            "x: <= 1",            # missing metric
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            SloSpec.parse(bad)

    def test_parse_slo_specs_skips_blanks_and_comments(self):
        specs = parse_slo_specs(
            ["# header", "", "a: m <= 1", "   ", "b: n > 0"]
        )
        assert [spec.name for spec in specs] == ["a", "b"]

    def test_check_applies_operator(self):
        spec = SloSpec.parse("x: m < 5")
        assert spec.check(4.9) and not spec.check(5.0)


class TestEvaluation:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("health.failovers", component="health").inc(1)
        registry.gauge(
            "health.last_recovery_time_s", component="health"
        ).set(2e-4)
        return registry

    def test_objectives_hold(self):
        engine = SloEngine(parse_slo_specs([
            "single: health.failovers{component=health} <= 1",
            "fast: health.last_recovery_time_s{component=health} < 1e-3",
        ]))
        report = engine.evaluate(self._registry(), now=1.0)
        assert report.ok and report.exit_code() == 0
        assert report.breaches == []

    def test_breach_is_reported_with_reason(self):
        engine = SloEngine(parse_slo_specs(
            ["none: health.failovers{component=health} == 0"]
        ))
        report = engine.evaluate(self._registry(), now=2.0)
        assert not report.ok and report.exit_code() == 1
        breach = report.breaches[0]
        assert breach.value == 1
        assert "violates" in breach.reason
        assert "BREACH" in report.render()

    def test_missing_metric_is_a_breach(self):
        engine = SloEngine(parse_slo_specs(["ghost: no.such_metric >= 0"]))
        report = engine.evaluate(MetricsRegistry(), now=0.0)
        assert not report.ok
        assert report.breaches[0].value is None
        assert "absent" in report.breaches[0].reason

    def test_describe_is_json_shaped(self):
        import json

        engine = SloEngine(parse_slo_specs(
            ["none: health.failovers{component=health} == 0"]
        ))
        described = engine.evaluate(self._registry(), now=3.0).describe()
        json.dumps(described)
        assert described["breached"] == 1 and described["total"] == 1
        assert described["results"][0]["name"] == "none"

    def test_breach_emits_correlated_event(self):
        engine = SloEngine(parse_slo_specs(
            ["none: health.failovers{component=health} == 0"]
        ))
        with event_logging() as log:
            engine.evaluate(
                self._registry(), now=4.5e-6,
                context={"scenario": "unit", "attachment": 9},
            )
        breaches = log.find("slo.breach", slo="none")
        assert len(breaches) == 1
        event = breaches[0]
        assert event.t == 4.5e-6
        assert event.fields["scenario"] == "unit"
        assert event.fields["attachment"] == 9
        assert event.fields["value"] == 1

    def test_no_event_when_logging_disabled(self):
        engine = SloEngine(parse_slo_specs(
            ["none: health.failovers{component=health} == 0"]
        ))
        report = engine.evaluate(self._registry())  # must not raise
        assert not report.ok


class TestLiveWatch:
    def test_watch_evaluates_on_cadence_and_stays_bounded(self):
        sim = Simulator()
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        engine = SloEngine(parse_slo_specs(["shallow: queue.depth <= 2"]))

        gauge.set(1)
        sim.schedule(2.5e-6, lambda: gauge.set(5))  # breach mid-run

        reports = engine.watch(
            sim, registry, period_s=1e-6, ticks=4
        )
        drained_at = sim.run()  # bounded ticks: the sim still drains
        assert len(reports) == 4
        assert drained_at == pytest.approx(4e-6)
        verdicts = [report.ok for report in reports]
        assert verdicts == [True, True, False, False]
        assert reports[2].now == pytest.approx(3e-6)

    def test_watch_rejects_bad_parameters(self):
        engine = SloEngine([])
        with pytest.raises(ValueError):
            engine.watch(Simulator(), MetricsRegistry(), 0.0, 1)
        with pytest.raises(ValueError):
            engine.watch(Simulator(), MetricsRegistry(), 1e-6, 0)


class TestScenarioIntegration:
    def test_chaos_breach_canary_is_correlated(self):
        """Acceptance: the link-kill scenario's deliberate ``zero-faults``
        breach is detected and journaled with scenario/attachment
        correlation fields."""
        result = run_scenario("link-kill-failover", seed=7)
        slo = result["slo"]
        assert slo["breached"] == 1
        breached = [r for r in slo["results"] if not r["ok"]]
        assert breached[0]["name"] == "zero-faults"
        assert breached[0]["value"] >= 1  # the kill really was observed

        breach_events = [
            event for event in result["events"]
            if event["kind"] == "slo.breach"
        ]
        assert len(breach_events) == 1
        event = breach_events[0]
        assert event["slo"] == "zero-faults"
        assert event["scenario"] == "link-kill-failover"
        assert event["attachment"] == 1
        # The journal also holds the fault and the failover the breach
        # correlates with, on the same timeline.
        kinds = [e["kind"] for e in result["events"]]
        assert "fault.link_down" in kinds
        assert "health.failover" in kinds
        fault_t = min(
            e["t"] for e in result["events"]
            if e["kind"] == "fault.link_down"
        )
        assert event["t"] >= fault_t

    def test_quiet_scenarios_hold_their_objectives(self):
        result = run_scenario("link-flap", seed=7)
        assert result["slo"]["ok"] is True
        assert result["verified"] is True
