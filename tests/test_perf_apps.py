"""Tests for the perf model and the application models (VoltDB,
Memcached, Twemproxy, Elasticsearch)."""

import pytest

from repro.apps import (
    CHALLENGE_PROFILES,
    Elasticsearch,
    ElasticsearchModel,
    Memcached,
    MemcachedLatencyModel,
    Twemproxy,
    VoltDb,
    VoltDbModel,
)
from repro.mem import AccessProfile
from repro.perf import CpiModel, PerfAggregator, PerfSample
from repro.testbed import MemoryConfigKind, make_environment
from repro.workloads import (
    CacheOpType,
    Challenge,
    CorpusConfig,
    EtcConfig,
    EtcGenerator,
    NestedQuery,
    NestedTrackGenerator,
    YCSB_WORKLOADS,
    YcsbGenerator,
    build_corpus,
)

ENVS = {kind: make_environment(kind) for kind in MemoryConfigKind}


class TestCpiModel:
    def test_remote_latency_raises_cpi(self):
        cpi = CpiModel()
        profile = AccessProfile(llc_miss_ratio=0.02)
        local = cpi.evaluate(profile, ENVS[MemoryConfigKind.LOCAL])
        remote = cpi.evaluate(
            profile, ENVS[MemoryConfigKind.SINGLE_DISAGGREGATED]
        )
        assert remote.total_cpi > local.total_cpi
        assert remote.ipc < local.ipc

    def test_mlp_grows_with_latency_but_saturates(self):
        cpi = CpiModel()
        local = cpi.mlp_for_latency(85e-9, 85e-9)
        remote = cpi.mlp_for_latency(950e-9, 85e-9)
        huge = cpi.mlp_for_latency(1e-3, 85e-9)
        assert local < remote <= cpi.mlp_max
        assert huge == cpi.mlp_max

    def test_stall_fraction_bounds(self):
        cpi = CpiModel()
        profile = AccessProfile(llc_miss_ratio=0.05)
        for env in ENVS.values():
            breakdown = cpi.evaluate(profile, env)
            assert 0.0 <= breakdown.backend_stall_fraction < 1.0

    def test_zero_miss_profile_immune_to_disaggregation(self):
        cpi = CpiModel()
        profile = AccessProfile(llc_miss_ratio=0.0)
        local = cpi.evaluate(profile, ENVS[MemoryConfigKind.LOCAL])
        remote = cpi.evaluate(
            profile, ENVS[MemoryConfigKind.SINGLE_DISAGGREGATED]
        )
        assert remote.total_cpi == pytest.approx(local.total_cpi)

    def test_writes_stall_less_than_reads(self):
        cpi = CpiModel()
        env = ENVS[MemoryConfigKind.SINGLE_DISAGGREGATED]
        read_heavy = AccessProfile(llc_miss_ratio=0.02, write_fraction=0.0)
        write_heavy = AccessProfile(llc_miss_ratio=0.02, write_fraction=1.0)
        assert (
            cpi.evaluate(write_heavy, env).backend_stall_cpi
            < cpi.evaluate(read_heavy, env).backend_stall_cpi
        )

    def test_perf_sample_arithmetic(self):
        sample = PerfSample(
            instructions=8e9,
            cycles=10e9,
            task_clock_s=20.0,
            wall_clock_s=2.0,
            stalled_cycles_backend=5e9,
        )
        assert sample.thread_ipc == pytest.approx(0.8)
        assert sample.utilized_cores == pytest.approx(10.0)
        assert sample.package_ipc == pytest.approx(8.0)
        assert sample.backend_stall_fraction == pytest.approx(0.5)

    def test_aggregator_combines(self):
        agg = PerfAggregator()
        agg.add(PerfSample(1e9, 2e9, 1.0, 1.0))
        agg.add(PerfSample(3e9, 2e9, 1.0, 1.0))
        combined = agg.combined()
        assert combined.thread_ipc == pytest.approx(1.0)
        with pytest.raises(ValueError):
            PerfAggregator().combined()


class TestVoltDbFunctional:
    def test_partitioning_is_stable(self):
        db = VoltDb(partitions=8)
        assert db.partition_of(42) == db.partition_of(42)

    def test_insert_read_roundtrip(self):
        db = VoltDb(partitions=4)
        db.insert(7, {"field0": "hello"})
        assert db.read(7) == {"field0": "hello"}
        assert db.read(8) is None

    def test_update_requires_existing_row(self):
        db = VoltDb(partitions=4)
        assert db.update(1, {"field0": "x"}) is False
        db.insert(1, {"field0": "x"})
        assert db.update(1, {"field0": "y"}) is True
        assert db.read(1)["field0"] == "y"

    def test_scan_returns_ordered_rows(self):
        db = VoltDb(partitions=4)
        for key in range(20):
            db.insert(key, {"field0": str(key)})
        rows = db.scan(5, 4)
        assert [r["field0"] for r in rows] == ["5", "6", "7", "8"]

    def test_rows_spread_across_partitions(self):
        db = VoltDb(partitions=4)
        for key in range(100):
            db.insert(key, {})
        assert db.partition_sizes() == [25, 25, 25, 25]

    def test_ycsb_stream_executes(self):
        db = VoltDb(partitions=8)
        for key in range(1000):
            db.insert(key, {"field0": f"v{key}"})
        generator = YcsbGenerator(YCSB_WORKLOADS["A"], record_count=1000)
        for op in generator.operations(2000):
            db.execute(op)
        assert db.committed > 2000

    def test_read_returns_copy(self):
        db = VoltDb(partitions=2)
        db.insert(1, {"field0": "orig"})
        row = db.read(1)
        row["field0"] = "mutated"
        assert db.read(1)["field0"] == "orig"


class TestVoltDbModel:
    def test_paper_stall_fractions(self):
        """§VI-D: 55.5% back-end stalls local, 80.9% single-remote."""
        local = VoltDbModel(ENVS[MemoryConfigKind.LOCAL], 32).evaluate("A")
        single = VoltDbModel(
            ENVS[MemoryConfigKind.SINGLE_DISAGGREGATED], 32
        ).evaluate("A")
        assert local.backend_stall_fraction == pytest.approx(0.555, abs=0.02)
        assert single.backend_stall_fraction == pytest.approx(0.809, abs=0.02)

    def test_local_wins_workload_a(self):
        results = {
            kind: VoltDbModel(ENVS[kind], 32).evaluate("A").throughput_ops
            for kind in MemoryConfigKind
        }
        assert results[MemoryConfigKind.LOCAL] == max(results.values())

    def test_fig7_a32_degradations_in_band(self):
        base = VoltDbModel(ENVS[MemoryConfigKind.LOCAL], 32).evaluate("A")
        degradations = {}
        for kind in MemoryConfigKind:
            metric = VoltDbModel(ENVS[kind], 32).evaluate("A")
            degradations[kind] = 1 - metric.throughput_ops / base.throughput_ops
        # Paper: scale-out 5.95%, interleaved 5.62%, single 7.97%,
        # bonding 10.03% — accept a ±4pp band around each.
        assert degradations[MemoryConfigKind.SCALE_OUT] == pytest.approx(
            0.0595, abs=0.04
        )
        assert degradations[MemoryConfigKind.INTERLEAVED] == pytest.approx(
            0.0562, abs=0.04
        )
        assert degradations[MemoryConfigKind.SINGLE_DISAGGREGATED] == (
            pytest.approx(0.0797, abs=0.04)
        )
        assert degradations[MemoryConfigKind.BONDING_DISAGGREGATED] == (
            pytest.approx(0.1003, abs=0.04)
        )

    def test_low_partition_counts_hurt_disaggregated_most(self):
        """§VI-D: at 4 partitions TF configs are significantly slower."""
        local4 = VoltDbModel(ENVS[MemoryConfigKind.LOCAL], 4).evaluate("A")
        single4 = VoltDbModel(
            ENVS[MemoryConfigKind.SINGLE_DISAGGREGATED], 4
        ).evaluate("A")
        assert single4.throughput_ops < 0.7 * local4.throughput_ops

    def test_workload_e_insensitive_to_configuration(self):
        results = [
            VoltDbModel(ENVS[kind], 32).evaluate("E").throughput_ops
            for kind in MemoryConfigKind
        ]
        assert max(results) / min(results) < 1.10

    def test_ucc_higher_under_disaggregation(self):
        """§VI-D: higher latency → fewer yields → higher UCC."""
        for partitions in (16, 32, 64):
            local = VoltDbModel(
                ENVS[MemoryConfigKind.LOCAL], partitions
            ).evaluate("A")
            single = VoltDbModel(
                ENVS[MemoryConfigKind.SINGLE_DISAGGREGATED], partitions
            ).evaluate("A")
            assert single.utilized_cores > local.utilized_cores

    def test_package_ipc_grows_with_partitions(self):
        values = [
            VoltDbModel(ENVS[MemoryConfigKind.LOCAL], p)
            .evaluate("A")
            .package_ipc
            for p in (4, 16, 32, 64)
        ]
        assert values == sorted(values)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            VoltDbModel(ENVS[MemoryConfigKind.LOCAL], 4).evaluate("Z")


class TestMemcachedFunctional:
    def test_set_get_roundtrip(self):
        cache = Memcached(1 << 16)
        cache.set("k", b"value")
        assert cache.get("k") == b"value"

    def test_miss_returns_none(self):
        cache = Memcached(1 << 16)
        assert cache.get("nope") is None
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = Memcached(3 * (1 + 100 + 64))  # fits 3 items exactly
        for key in "abc":
            cache.set(key, b"x" * 100)
        cache.get("a")             # a becomes MRU
        cache.set("d", b"x" * 100)  # evicts b (LRU)
        assert cache.get("a") is not None
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_overwrite_accounts_bytes(self):
        cache = Memcached(1 << 16)
        cache.set("k", b"a" * 100)
        used = cache.used_bytes
        cache.set("k", b"a" * 50)
        assert cache.used_bytes == used - 50

    def test_capacity_never_exceeded(self):
        cache = Memcached(4096)
        for i in range(200):
            cache.set(f"key{i}", b"v" * 64)
        assert cache.used_bytes <= 4096

    def test_oversized_item_rejected(self):
        cache = Memcached(128)
        with pytest.raises(ValueError):
            cache.set("big", b"x" * 1000)

    def test_delete(self):
        cache = Memcached(1 << 16)
        cache.set("k", b"v")
        assert cache.delete("k") is True
        assert cache.delete("k") is False
        assert cache.get("k") is None

    def test_etc_workload_hit_ratio_band(self):
        """Functional ETC run at small scale: LRU + Zipf + uniform warm-up
        should land in the high-70s..mid-80s hit-ratio band."""
        config = EtcConfig(
            cache_bytes=1 << 21,
            keyspace_bytes=3 << 20,
            mean_item_bytes=330,
        )
        generator = EtcGenerator(config, seed=3)
        cache = Memcached(config.cache_bytes)
        for op in generator.warmup_operations():
            cache.set(op.key, b"x" * op.value_bytes)
        cache.stats.gets = cache.stats.hits = 0
        for op in generator.operations(30_000):
            if op.op_type is CacheOpType.GET:
                cache.get(op.key)
            else:
                cache.set(op.key, b"x" * op.value_bytes)
        assert 0.70 <= cache.stats.hit_ratio <= 0.90


class TestMemcachedLatencyModel:
    def test_paper_mean_latencies(self):
        """§VI-E: 600/614/635/650/713 µs mean GET latency."""
        targets = {
            MemoryConfigKind.LOCAL: 600e-6,
            MemoryConfigKind.INTERLEAVED: 614e-6,
            MemoryConfigKind.SINGLE_DISAGGREGATED: 635e-6,
            MemoryConfigKind.BONDING_DISAGGREGATED: 650e-6,
            MemoryConfigKind.SCALE_OUT: 713e-6,
        }
        for kind, target in targets.items():
            model = MemcachedLatencyModel(ENVS[kind])
            assert model.mean_latency_s() == pytest.approx(target, rel=0.02), kind

    def test_tf_configs_within_7_percent_of_local(self):
        local = MemcachedLatencyModel(ENVS[MemoryConfigKind.LOCAL])
        for kind in (
            MemoryConfigKind.INTERLEAVED,
            MemoryConfigKind.SINGLE_DISAGGREGATED,
            MemoryConfigKind.BONDING_DISAGGREGATED,
        ):
            model = MemcachedLatencyModel(ENVS[kind])
            increase = model.mean_latency_s() / local.mean_latency_s() - 1
            assert increase <= 0.09  # "average increase in latency of up-to 7%"

    def test_sampled_distribution_matches_moments(self):
        model = MemcachedLatencyModel(ENVS[MemoryConfigKind.LOCAL])
        recorder = model.record(40_000)
        assert recorder.mean == pytest.approx(model.mean_latency_s(), rel=0.02)
        assert recorder.percentile(90) == pytest.approx(
            model.p90_latency_s(), rel=0.05
        )

    def test_scale_out_has_heaviest_tail(self):
        degradations = {
            kind: MemcachedLatencyModel(ENVS[kind])
            .record(20_000)
            .degradation_at(90)
            for kind in MemoryConfigKind
        }
        assert degradations[MemoryConfigKind.SCALE_OUT] == max(
            degradations.values()
        )
        assert degradations[MemoryConfigKind.LOCAL] == min(
            degradations.values()
        )


class TestTwemproxy:
    def make_pool(self, servers=2):
        return Twemproxy([Memcached(1 << 20) for _ in range(servers)])

    def test_routing_is_stable(self):
        proxy = self.make_pool()
        assert proxy.server_for("key1") is proxy.server_for("key1")

    def test_get_set_through_proxy(self):
        proxy = self.make_pool()
        proxy.set("hello", b"world")
        assert proxy.get("hello") == b"world"
        assert proxy.forwarded == 2

    def test_keys_spread_across_servers(self):
        proxy = self.make_pool(servers=2)
        keys = [f"key{i}" for i in range(2000)]
        counts = proxy.key_distribution(keys)
        assert all(count > 600 for count in counts)  # roughly balanced

    def test_delete_through_proxy(self):
        proxy = self.make_pool()
        proxy.set("k", b"v")
        assert proxy.delete("k") is True
        assert proxy.get("k") is None

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Twemproxy([])


class TestElasticsearchFunctional:
    @pytest.fixture()
    def engine(self):
        engine = Elasticsearch(shards=4)
        engine.index_many(build_corpus(CorpusConfig(documents=800)))
        return engine

    def test_documents_distributed(self, engine):
        assert engine.document_count() == 800
        sizes = [len(s.documents) for s in engine.shards]
        assert all(size == 200 for size in sizes)

    def test_rtq_finds_tagged_documents(self, engine):
        generator = NestedTrackGenerator()
        query = next(generator.queries(Challenge.RTQ, 1))
        hits = engine.search(query)
        for doc_id in hits:
            assert query.tag in engine.shard_of(doc_id).documents[doc_id].tags

    def test_rtq_results_complete(self, engine):
        query = NestedQuery(Challenge.RTQ, tag="tag0000")
        hits = set(engine.search(query))
        expected = {
            p.doc_id
            for shard in engine.shards
            for p in shard.documents.values()
            if "tag0000" in p.tags
        }
        assert hits == expected

    def test_rnqihbs_filters_answer_history(self, engine):
        query = NestedQuery(Challenge.RNQIHBS, min_answers=5, before_date=2800)
        for doc_id in engine.search(query):
            post = engine.shard_of(doc_id).documents[doc_id]
            assert sum(1 for d in post.answer_dates if d < 2800) >= 5

    def test_rstq_sorts_descending_by_date(self, engine):
        query = NestedQuery(Challenge.RSTQ, tag="tag0000", sort_by_date=True)
        hits = engine.search(query)
        dates = [engine.shard_of(d).documents[d].created for d in hits]
        assert dates == sorted(dates, reverse=True)

    def test_match_all_returns_everything(self, engine):
        hits = engine.search(NestedQuery(Challenge.MA))
        assert len(hits) == 800

    def test_thread_pool_accounting(self, engine):
        engine.search(NestedQuery(Challenge.MA))
        assert engine.thread_pool_completed["search"] == 1
        assert engine.thread_pool_completed["write"] == 800


class TestElasticsearchModel:
    def test_scale_out_wins_rtq(self):
        """§VI-F: for RTQ scale-out outperforms everything incl. local."""
        results = {
            kind: ElasticsearchModel(ENVS[kind], 32).throughput_qps(
                Challenge.RTQ
            )
            for kind in MemoryConfigKind
        }
        assert results[MemoryConfigKind.SCALE_OUT] == max(results.values())
        assert (
            results[MemoryConfigKind.SCALE_OUT]
            > 1.3 * results[MemoryConfigKind.LOCAL]
        )

    def test_scale_out_beats_tf_on_sync_heavy_challenges(self):
        for challenge in (Challenge.RNQIHBS, Challenge.RSTQ):
            results = {
                kind: ElasticsearchModel(ENVS[kind], 32).throughput_qps(
                    challenge
                )
                for kind in MemoryConfigKind
            }
            so = results[MemoryConfigKind.SCALE_OUT]
            for kind in (
                MemoryConfigKind.INTERLEAVED,
                MemoryConfigKind.BONDING_DISAGGREGATED,
                MemoryConfigKind.SINGLE_DISAGGREGATED,
            ):
                assert results[kind] < so, (challenge, kind)

    def test_match_all_converges(self):
        """§VI-F: for MA the TF configs match local and scale-out."""
        results = [
            ElasticsearchModel(ENVS[kind], 5).throughput_qps(Challenge.MA)
            for kind in MemoryConfigKind
        ]
        assert max(results) / min(results) < 1.25

    def test_sync_heavy_challenges_degrade_with_shards(self):
        """§VI-F: 'shards scaling results in a throughput degradation'."""
        env = ENVS[MemoryConfigKind.LOCAL]
        for challenge in (Challenge.RNQIHBS, Challenge.RSTQ):
            at5 = ElasticsearchModel(env, 5).throughput_qps(challenge)
            at32 = ElasticsearchModel(env, 32).throughput_qps(challenge)
            assert at32 < at5, challenge

    def test_single_channel_is_worst_tf_config(self):
        # On the bandwidth-heavy challenges the single channel saturates
        # first; MA is excluded (tiny streamed volume, so bonding's
        # latency penalty dominates there instead).
        for challenge in (Challenge.RTQ, Challenge.RNQIHBS, Challenge.RSTQ):
            results = {
                kind: ElasticsearchModel(ENVS[kind], 32).throughput_qps(
                    challenge
                )
                for kind in (
                    MemoryConfigKind.SINGLE_DISAGGREGATED,
                    MemoryConfigKind.BONDING_DISAGGREGATED,
                    MemoryConfigKind.INTERLEAVED,
                )
            }
            assert results[MemoryConfigKind.SINGLE_DISAGGREGATED] == min(
                results.values()
            ), challenge

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ElasticsearchModel(ENVS[MemoryConfigKind.LOCAL], 0)


class TestPerfSampleGlue:
    def test_metrics_roundtrip_through_perf_counters(self):
        """VoltDbMetrics -> PerfSample must preserve the §VI-D identities."""
        metric = VoltDbModel(ENVS[MemoryConfigKind.LOCAL], 32).evaluate("A")
        sample = metric.to_perf_sample(wall_clock_s=2.0)
        assert sample.utilized_cores == pytest.approx(metric.utilized_cores)
        assert sample.thread_ipc == pytest.approx(metric.thread_ipc)
        assert sample.package_ipc == pytest.approx(metric.package_ipc)
        assert sample.backend_stall_fraction == pytest.approx(
            metric.backend_stall_fraction
        )

    def test_samples_aggregate_across_phases(self):
        agg = PerfAggregator()
        for workload in "AB":
            metric = VoltDbModel(
                ENVS[MemoryConfigKind.LOCAL], 16
            ).evaluate(workload)
            agg.add(metric.to_perf_sample())
        combined = agg.combined()
        assert combined.wall_clock_s == pytest.approx(2.0)
        assert 0.0 < combined.backend_stall_fraction < 1.0
