"""Fault-campaign design-space exploration (DSE), DAVOS-style.

This package turns the seeded fault machinery (campaigns, chaos
scenarios, failover) from a demo into an evaluation instrument. It
joins three existing subsystems:

* :mod:`repro.resilience.campaigns` — what faults to inject (levels of
  the ``campaign`` factor, validated against the typed param-spec
  table);
* :mod:`repro.sweep` — how to run the design: every cell is a
  content-addressed :class:`~repro.sweep.RunSpec`, so large designs
  are parallel, resumable, and cached for free;
* :mod:`repro.obs.slo` — how to judge a cell: availability objectives
  evaluated against the cell's metrics snapshot.

The pieces:

* :mod:`~repro.resilience.dse.factors` — the factor space (frame
  size, credit depth, bonding, loss rate, campaign, failover policy)
  with typed level validation and the failover-policy table;
* :mod:`~repro.resilience.dse.design` — design builders:
  full/fractional factorial grids and a seeded evolutionary search
  (tournament selection + mutation);
* :mod:`~repro.resilience.dse.runner` — ``run_cell``, the ``py:``
  sweep target that simulates one configuration through its fault and
  returns the robustness responses;
* :mod:`~repro.resilience.dse.responses` — response extraction
  (recovery time from the event journal, goodput under faults,
  replayed-vs-lost bytes) and per-cell SLO verdicts;
* :mod:`~repro.resilience.dse.model` — least-squares effects models
  with main-effect/interaction ranking (accel-backed solver);
* :mod:`~repro.resilience.dse.report` — the decision-support report
  (text/JSON/markdown, byte-identical per seed) behind
  ``python -m repro dse``.
"""

from .design import (
    EvolutionResult,
    EvolutionarySearch,
    cells_for,
    fractional_factorial,
    full_factorial,
)
from .factors import (
    DseDesignError,
    EmptyFeasibleSetError,
    FAILOVER_POLICIES,
    Factor,
    FactorSpace,
    FailoverPolicy,
    default_space,
)
from .model import EffectsModel, fit_effects
from .report import build_report, render_markdown, render_text
from .responses import compute_responses, evaluate_cell_slo
from .runner import CELL_TARGET, run_cell

__all__ = [
    "DseDesignError",
    "EmptyFeasibleSetError",
    "Factor",
    "FactorSpace",
    "FailoverPolicy",
    "FAILOVER_POLICIES",
    "default_space",
    "full_factorial",
    "fractional_factorial",
    "cells_for",
    "EvolutionarySearch",
    "EvolutionResult",
    "CELL_TARGET",
    "run_cell",
    "compute_responses",
    "evaluate_cell_slo",
    "EffectsModel",
    "fit_effects",
    "build_report",
    "render_text",
    "render_markdown",
]
