"""Unit tests for the core building blocks: flows, RMMU, routing, LLC
framing — exercised in isolation (the datapath integration lives in
test_core_datapath.py)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BONDING_FLAG,
    ActiveFlow,
    FlowError,
    FlowTable,
    Frame,
    LlcConfig,
    Rmmu,
    RmmuFault,
    RoutingError,
    RoutingLayer,
    base_network_id,
    is_bonded_wire_id,
)
from repro.core.llc import FRAME_HEADER_BYTES
from repro.mem import MIB, AddressError
from repro.opencapi import (
    FLIT_BYTES,
    MemTransaction,
    MmioRegisterFile,
    TLCommand,
    transaction_flits,
)
from repro.sim import Simulator


class TestFlowTable:
    def test_allocate_assigns_unique_ids(self):
        table = FlowTable()
        flows = [
            table.allocate("c", "m", section_index=i) for i in range(10)
        ]
        ids = [flow.network_id for flow in flows]
        assert len(set(ids)) == 10

    def test_wire_id_carries_bonding_flag(self):
        table = FlowTable()
        plain = table.allocate("c", "m", 0)
        bonded = table.allocate("c", "m", 1, channels=(0, 1), bonded=True)
        assert not is_bonded_wire_id(plain.wire_network_id)
        assert is_bonded_wire_id(bonded.wire_network_id)
        assert base_network_id(bonded.wire_network_id) == bonded.network_id

    def test_bonded_flow_needs_two_channels(self):
        with pytest.raises(FlowError):
            ActiveFlow(1, "c", "m", 0, bonded=True, channels=(0,))

    def test_release_frees_id_for_reuse(self):
        table = FlowTable(capacity=2)
        a = table.allocate("c", "m", 0)
        b = table.allocate("c", "m", 1)
        with pytest.raises(FlowError):
            table.allocate("c", "m", 2)
        table.release(a.network_id)
        c = table.allocate("c", "m", 2)
        assert c.network_id == a.network_id

    def test_lookup_strips_bonding_flag(self):
        table = FlowTable()
        flow = table.allocate("c", "m", 0, channels=(0, 1), bonded=True)
        assert table.lookup(flow.wire_network_id) is flow

    def test_lookup_unknown_raises(self):
        with pytest.raises(FlowError):
            FlowTable().lookup(5)

    def test_flows_between(self):
        table = FlowTable()
        table.allocate("a", "b", 0)
        table.allocate("a", "c", 1)
        table.allocate("a", "b", 2)
        assert len(table.flows_between("a", "b")) == 2
        assert len(table.flows_between("b", "a")) == 0

    def test_network_id_range_enforced(self):
        with pytest.raises(FlowError):
            ActiveFlow(BONDING_FLAG, "c", "m", 0)


class TestRmmu:
    def make(self, section_bytes=1 * MIB):
        return Rmmu(section_bytes=section_bytes, table_entries=64)

    def test_translate_applies_offset_and_network_id(self):
        rmmu = self.make()
        rmmu.install(0, donor_effective_base=0x4000_0000, network_id=9)
        address, network_id = rmmu.translate(0x100)
        assert address == 0x4000_0100
        assert network_id == 9

    def test_section_index_from_address_bits(self):
        rmmu = self.make(section_bytes=1 * MIB)
        assert rmmu.section_of(0) == 0
        assert rmmu.section_of(1 * MIB - 1) == 0
        assert rmmu.section_of(1 * MIB) == 1
        assert rmmu.section_of(5 * MIB + 7) == 5

    def test_each_section_translates_independently(self):
        rmmu = self.make()
        rmmu.install(0, 0x1000_0000, 1)
        rmmu.install(1, 0x9000_0000, 2)
        a, net_a = rmmu.translate(0x10)
        b, net_b = rmmu.translate(1 * MIB + 0x10)
        assert a == 0x1000_0010 and net_a == 1
        assert b == 0x9000_0010 and net_b == 2

    def test_unmapped_section_faults(self):
        rmmu = self.make()
        with pytest.raises(RmmuFault):
            rmmu.translate(2 * MIB)
        assert rmmu.faults == 1

    def test_invalidate_then_fault(self):
        rmmu = self.make()
        rmmu.install(0, 0x0, 1)
        rmmu.invalidate(0)
        with pytest.raises(RmmuFault):
            rmmu.translate(0x0)

    def test_invalidate_missing_raises(self):
        with pytest.raises(RmmuFault):
            self.make().invalidate(3)

    def test_table_bounds_checked(self):
        rmmu = self.make()
        with pytest.raises(AddressError):
            rmmu.install(64, 0x0, 1)

    def test_section_size_must_be_power_of_two(self):
        with pytest.raises(AddressError):
            Rmmu(section_bytes=3 * MIB)

    def test_mmio_interface_roundtrip(self):
        rmmu = self.make()
        mmio = MmioRegisterFile()
        rmmu.attach_mmio(mmio, base_offset=0x0)
        mmio.write_named("RMMU_SECTION_INDEX", 2)
        mmio.write_named("RMMU_DONOR_BASE", 0x7000_0000)
        mmio.write_named("RMMU_SECTION_CTRL", 5)
        address, network_id = rmmu.translate(2 * MIB + 4)
        assert address == 0x7000_0004 and network_id == 5
        assert mmio.read_named("RMMU_SECTION_COUNT") == 1
        mmio.write_named("RMMU_SECTION_INDEX", 2)
        mmio.write_named("RMMU_SECTION_CTRL", (1 << 64) - 1)
        assert mmio.read_named("RMMU_SECTION_COUNT") == 0

    @settings(max_examples=50, deadline=None)
    @given(
        section=st.integers(min_value=0, max_value=63),
        offset=st.integers(min_value=0, max_value=MIB - 1),
        donor_base=st.integers(min_value=0, max_value=2**40).map(
            lambda v: v & ~0x7F
        ),
    )
    def test_translation_preserves_section_offset(
        self, section, offset, donor_base
    ):
        rmmu = self.make()
        rmmu.install(section, donor_base, 1)
        internal = section * MIB + offset
        translated, _net = rmmu.translate(internal)
        assert translated - donor_base == offset


class _FakeLlc:
    """Records submissions; stands in for a channel LLC."""

    def __init__(self, sim):
        self.sim = sim
        self.submitted = []

    def submit(self, txn):
        self.submitted.append(txn)
        from repro.sim import Signal

        done = Signal(oneshot=True)
        done.fire()
        return done

    def receive(self):  # pragma: no cover - drain never delivers here
        from repro.sim import Signal

        return Signal()


class TestRoutingLayer:
    def make(self, channels=2):
        sim = Simulator()
        routing = RoutingLayer(sim)
        fakes = [_FakeLlc(sim) for _ in range(channels)]
        for fake in fakes:
            routing._channels.append(fake)  # bypass LlcEndpoint requirement
            routing.per_channel_tx.append(0)
        return sim, routing, fakes

    def test_unbonded_route_uses_first_channel(self):
        sim, routing, fakes = self.make()
        routing.install_route(3, [1])
        txn = MemTransaction.read(0x0)
        txn.network_id = 3
        sim.run_process(self._fwd(routing, txn))
        assert len(fakes[1].submitted) == 1

    def test_bonded_route_round_robins(self):
        sim, routing, fakes = self.make()
        routing.install_route(3, [0, 1])
        for _ in range(6):
            txn = MemTransaction.read(0x0)
            txn.network_id = 3 | BONDING_FLAG
            sim.run_process(self._fwd(routing, txn))
        assert len(fakes[0].submitted) == 3
        assert len(fakes[1].submitted) == 3

    def test_bonding_flag_ignored_for_single_channel_route(self):
        sim, routing, fakes = self.make()
        routing.install_route(3, [0])
        txn = MemTransaction.read(0x0)
        txn.network_id = 3 | BONDING_FLAG
        sim.run_process(self._fwd(routing, txn))
        assert len(fakes[0].submitted) == 1

    def test_unknown_network_id_raises(self):
        _sim, routing, _fakes = self.make()
        with pytest.raises(RoutingError):
            routing.route_for(9)

    def test_missing_network_id_raises(self):
        _sim, routing, _fakes = self.make()
        with pytest.raises(RoutingError):
            routing.forward(MemTransaction.read(0x0))

    def test_response_follows_arrival_channel(self):
        sim, routing, fakes = self.make()
        response = MemTransaction.read(0x0).make_response(data=bytes(128))
        response.arrival_channel = 1
        sim.run_process(self._fwd_response(routing, response))
        assert len(fakes[1].submitted) == 1

    def test_route_to_missing_channel_rejected(self):
        _sim, routing, _fakes = self.make(channels=1)
        with pytest.raises(RoutingError):
            routing.install_route(1, [4])

    def test_remove_route(self):
        _sim, routing, _fakes = self.make()
        routing.install_route(1, [0])
        routing.remove_route(1)
        with pytest.raises(RoutingError):
            routing.route_for(1)

    @staticmethod
    def _fwd(routing, txn):
        yield routing.forward(txn)

    @staticmethod
    def _fwd_response(routing, txn):
        yield routing.forward_response(txn)


class TestTransactionsAndFrames:
    def test_flit_counts_per_command(self):
        read = MemTransaction.read(0x0)
        write = MemTransaction.write(0x0, bytes(128))
        response = read.make_response(data=bytes(128))
        ack = write.make_response()
        assert transaction_flits(read) == 1       # header only
        assert transaction_flits(write) == 5      # header + 4x32B
        assert transaction_flits(response) == 5
        assert transaction_flits(ack) == 1
        assert transaction_flits(MemTransaction.nop()) == 1

    def test_response_echoes_identity(self):
        request = MemTransaction.read(0x1000)
        request.network_id = 7
        request.arrival_channel = 1
        response = request.make_response(data=bytes(128))
        assert response.txn_id == request.txn_id
        assert response.network_id == 7
        assert response.arrival_channel == 1
        assert response.is_response and not response.is_request

    def test_write_response_drops_payload(self):
        write = MemTransaction.write(0x0, bytes(128))
        ack = write.make_response()
        assert ack.data is None

    def test_data_size_consistency_enforced(self):
        with pytest.raises(ValueError):
            MemTransaction(TLCommand.WRITE_MEM, size=128, data=bytes(64))

    def test_nop_has_no_response(self):
        with pytest.raises(ValueError):
            MemTransaction.nop().make_response()

    def test_frame_crc_detects_tampering(self):
        txn = MemTransaction.write(0x0, bytes(128))
        frame = Frame(frame_id=4, transactions=[txn], nop_padding=11)
        frame.seal()
        assert frame.crc_ok()
        frame.transactions.append(MemTransaction.read(0x80))
        assert not frame.crc_ok()

    def test_frame_crc_covers_frame_id(self):
        txn = MemTransaction.read(0x0)
        frame = Frame(frame_id=4, transactions=[txn])
        frame.seal()
        frame.frame_id = 5
        assert not frame.crc_ok()

    def test_frame_wire_size(self):
        config = LlcConfig(flits_per_frame=16)
        assert config.frame_wire_bytes == 16 * FLIT_BYTES + FRAME_HEADER_BYTES

    def test_llc_config_must_fit_a_write(self):
        with pytest.raises(ValueError):
            LlcConfig(flits_per_frame=4)

    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.integers(min_value=0, max_value=3),
        reads=st.integers(min_value=0, max_value=16),
    )
    def test_frame_flit_accounting_property(self, writes, reads):
        config = LlcConfig()
        transactions = [
            MemTransaction.write(i * 128, bytes(128)) for i in range(writes)
        ] + [MemTransaction.read(i * 128) for i in range(reads)]
        used = sum(transaction_flits(t) for t in transactions)
        if used > config.flits_per_frame:
            return  # would span multiple frames
        frame = Frame(
            frame_id=0,
            transactions=transactions,
            nop_padding=config.flits_per_frame - used,
        )
        assert frame.flit_count == config.flits_per_frame


class TestWeightedChannelSharing:
    """§IV-A3 extension: weighted round-robin bandwidth allocation."""

    def _route_n(self, routing, sim, fakes, network_id, count):
        sent = [0] * len(fakes)
        for _ in range(count):
            txn = MemTransaction.read(0x0)
            txn.network_id = network_id | BONDING_FLAG
            index = routing.select_channel(txn.network_id)
            sent[index] += 1
        return sent

    def test_weighted_split_matches_ratio(self):
        sim = Simulator()
        routing = RoutingLayer(sim)
        fakes = [_FakeLlc(sim) for _ in range(2)]
        for fake in fakes:
            routing._channels.append(fake)
            routing.per_channel_tx.append(0)
        routing.install_route(1, [0, 1], weights=[3, 1])
        sent = self._route_n(routing, sim, fakes, 1, 40)
        assert sent == [30, 10]

    def test_equal_weights_are_plain_round_robin(self):
        sim = Simulator()
        routing = RoutingLayer(sim)
        fakes = [_FakeLlc(sim) for _ in range(2)]
        for fake in fakes:
            routing._channels.append(fake)
            routing.per_channel_tx.append(0)
        routing.install_route(1, [0, 1])
        picks = [
            routing.select_channel(1 | BONDING_FLAG) for _ in range(6)
        ]
        assert picks in ([0, 1, 0, 1, 0, 1], [1, 0, 1, 0, 1, 0])

    def test_smooth_wrr_interleaves(self):
        """Smooth WRR spreads the heavy channel's turns, it does not
        burst them (3,1 gives A A B A-style patterns, never A A A B
        repeated from a cold start... precisely: 0,0,1,0)."""
        sim = Simulator()
        routing = RoutingLayer(sim)
        fakes = [_FakeLlc(sim) for _ in range(2)]
        for fake in fakes:
            routing._channels.append(fake)
            routing.per_channel_tx.append(0)
        routing.install_route(1, [0, 1], weights=[3, 1])
        picks = [routing.select_channel(1 | BONDING_FLAG) for _ in range(8)]
        # One channel-1 pick per 4, never two in a row.
        assert picks.count(1) == 2
        assert all(
            not (a == b == 1) for a, b in zip(picks, picks[1:])
        )

    def test_weight_validation(self):
        sim = Simulator()
        routing = RoutingLayer(sim)
        fakes = [_FakeLlc(sim) for _ in range(2)]
        for fake in fakes:
            routing._channels.append(fake)
            routing.per_channel_tx.append(0)
        with pytest.raises(RoutingError):
            routing.install_route(1, [0, 1], weights=[1])
        with pytest.raises(RoutingError):
            routing.install_route(1, [0, 1], weights=[0, 1])


class TestThymesisFlowDevice:
    def make_device(self, channels=1):
        from repro.core import ThymesisFlowDevice
        from repro.net import DuplexChannel

        sim = Simulator()
        device = ThymesisFlowDevice(sim, section_bytes=1 * MIB)
        peers = []
        for _ in range(channels):
            channel = DuplexChannel(sim)
            device.connect_channel(channel.endpoint_view("a"))
            peers.append(channel)
        return sim, device, peers

    def test_channel_limit_enforced(self):
        from repro.core import EndpointError
        from repro.net import DuplexChannel

        sim, device, _peers = self.make_device(channels=2)
        with pytest.raises(EndpointError):
            device.connect_channel(DuplexChannel(sim).endpoint_view("a"))

    def test_route_mmio_roundtrip(self):
        _sim, device, _peers = self.make_device()
        device.mmio.write_named("ROUTE_NETWORK_ID", 5)
        device.mmio.write_named("ROUTE_CHANNEL_MASK", 0b01)
        device.mmio.write_named("ROUTE_CTRL", 1)
        assert device.routing.route_for(5) == (0,)
        device.mmio.write_named("ROUTE_NETWORK_ID", 5)
        device.mmio.write_named("ROUTE_CTRL", 0)
        with pytest.raises(RoutingError):
            device.routing.route_for(5)

    def test_channel_count_register(self):
        _sim, device, _peers = self.make_device()
        assert device.mmio.read_named("CHANNEL_COUNT") == 1

    def test_request_without_memory_role_rejected(self):
        from repro.core import EndpointError

        _sim, device, _peers = self.make_device()
        request = MemTransaction.read(0x0)
        with pytest.raises(EndpointError, match="memory role"):
            device._dispatch(request, 0)

    def test_typed_helpers_match_mmio(self):
        _sim, device, _peers = self.make_device()
        device.program_section(3, 0x5000_0000, 9)
        assert device.rmmu.installed_sections() == [3]
        device.program_route(9, [0])
        assert device.routing.route_for(9) == (0,)
        device.clear_section(3)
        device.clear_route(9)
        assert device.rmmu.installed_sections() == []
