"""Scheduled fault campaigns: macro-faults driven by the sim clock.

A *campaign* is a declarative description of a macro-fault (a cable
dies, a link flaps, a lender browns out or crashes) that, when armed,
schedules deterministic state changes on a set of
:class:`~repro.net.faults.FaultInjector` instances through the
simulator's event queue. Campaigns are plain frozen dataclasses: the
same campaign armed at the same sim time with the same seeded RNG
produces the same event sequence, so chaos runs are reproducible and
cacheable by :mod:`repro.sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Type

from ..errors import ReproError
from ..net.faults import FaultInjector
from ..obs import events as _events
from ..sim.rng import SeededRNG

__all__ = [
    "FaultCampaign",
    "LinkKill",
    "LinkFlap",
    "Brownout",
    "LenderCrash",
    "UnknownCampaignError",
    "CAMPAIGNS",
    "make_campaign",
    "ensure_injector",
    "make_rest_fault_hook",
]


class UnknownCampaignError(ReproError, ValueError):
    """Campaign name not in the catalogue."""

    code = "resilience/unknown-campaign"


def ensure_injector(
    link, rng: Optional[SeededRNG] = None
) -> FaultInjector:
    """Install (or return) the fault injector on a serial link.

    Links are built clean; campaigns graft the injector on after the
    fact so fault domains can be targeted per-host at runtime.
    """
    if getattr(link, "faults", None) is None:
        link.faults = FaultInjector(rng=rng)
    return link.faults


@dataclass(frozen=True)
class FaultCampaign:
    """Base: a fault armed ``at_s`` seconds of *sim delay* from now."""

    at_s: float = 0.0

    #: Catalogue key (subclasses override).
    name = "noop"

    def arm(self, sim, injectors: Iterable[FaultInjector],
            agent=None) -> None:
        raise NotImplementedError

    def describe(self) -> Dict:
        return {"campaign": self.name, "at_s": self.at_s}

    def _fire(self, sim, kind: str, fields: Dict, action, *args):
        """Run a scheduled fault action, journaling it at fire time.

        The event is emitted inside the scheduled call — not at arm
        time — so the journal records the sim-time the fault actually
        took effect, in event order with everything else. Schedule
        order and the action itself are unchanged, so seeded chaos
        runs stay byte-identical. ``fields`` ride along positionally
        because ``sim.schedule`` forwards positional args only.
        """
        action(*args)
        if _events.ENABLED:
            _events.emit(sim.now, kind, campaign=self.name, **fields)


@dataclass(frozen=True)
class LinkKill(FaultCampaign):
    """Permanent link death: every frame drops from ``at_s`` on."""

    name = "link-kill"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            sim.schedule(self.at_s, self._fire, sim, "fault.link_down",
                         {}, injector.set_down, True)


@dataclass(frozen=True)
class LinkFlap(FaultCampaign):
    """Transient outage: down at ``at_s``, back up ``duration_s`` later."""

    duration_s: float = 10e-6
    name = "link-flap"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            sim.schedule(self.at_s, self._fire, sim, "fault.link_down",
                         {}, injector.set_down, True)
            sim.schedule(self.at_s + self.duration_s, self._fire, sim,
                         "fault.link_up", {}, injector.set_down, False)

    def describe(self) -> Dict:
        return {**super().describe(), "duration_s": self.duration_s}


@dataclass(frozen=True)
class Brownout(FaultCampaign):
    """Degraded window: Bernoulli frame loss at ``drop_probability``."""

    duration_s: float = 50e-6
    drop_probability: float = 0.2
    name = "brownout"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            previous = injector.drop_probability
            sim.schedule(self.at_s, self._fire, sim, "fault.brownout",
                         {"drop_probability": self.drop_probability},
                         injector.set_drop_probability,
                         self.drop_probability)
            sim.schedule(self.at_s + self.duration_s, self._fire, sim,
                         "fault.restored",
                         {"drop_probability": previous},
                         injector.set_drop_probability, previous)

    def describe(self) -> Dict:
        return {
            **super().describe(),
            "duration_s": self.duration_s,
            "drop_probability": self.drop_probability,
        }


@dataclass(frozen=True)
class LenderCrash(FaultCampaign):
    """Whole-node death: links go dark and the agent stops granting."""

    name = "lender-crash"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            sim.schedule(self.at_s, self._fire, sim, "fault.link_down",
                         {}, injector.set_down, True)
        if agent is not None:
            def crash():
                agent.crashed = True
            sim.schedule(self.at_s, self._fire, sim, "fault.lender_crash",
                         {"host": agent.hostname}, crash)


CAMPAIGNS: Dict[str, Type[FaultCampaign]] = {
    cls.name: cls for cls in (LinkKill, LinkFlap, Brownout, LenderCrash)
}


def make_campaign(name: str, **params) -> FaultCampaign:
    """Build a campaign from its catalogue name and parameters."""
    try:
        cls = CAMPAIGNS[name]
    except KeyError:
        raise UnknownCampaignError(
            f"unknown campaign {name!r} "
            f"(have: {', '.join(sorted(CAMPAIGNS))})"
        ) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise UnknownCampaignError(
            f"bad parameters for campaign {name!r}: {exc}"
        ) from None


def make_rest_fault_hook(testbed, seed: int = 0):
    """Fault hook for ``POST /v1/faults`` on :class:`RestApi`.

    Resolves the target attachment, arms the named campaign against the
    *lender's* fault domain (its serial links), and returns the
    campaign description for the HTTP response.
    """
    rng = SeededRNG(seed).derive("rest-faults")

    def hook(name: str, attachment_id: int, params: Dict) -> Dict:
        attachment = testbed.plane.attachment(
            attachment_id, token=testbed.admin_token
        )
        campaign = make_campaign(name, **params)
        links = testbed.links_of(attachment.memory_host)
        injectors = [
            ensure_injector(link, rng.derive(link.name)) for link in links
        ]
        agent = testbed.node(attachment.memory_host).agent
        campaign.arm(testbed.sim, injectors, agent=agent)
        return {
            **campaign.describe(),
            "attachment": attachment_id,
            "target_host": attachment.memory_host,
            "links": [link.name for link in links],
        }

    return hook
