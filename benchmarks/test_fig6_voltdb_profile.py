"""Fig. 6 — VoltDB profiling: package IPC and utilized CPU cores.

Series: YCSB workloads A–F × partitions {4, 16, 32, 64} for the local
and single-disaggregated configurations (perf-derived metrics).

Shape claims asserted (§VI-D):
* local, mixed workloads (A, F): IPC rises with partitions, the largest
  jump between 4 and 16;
* read-dominated workloads (B–E): much flatter IPC scaling;
* disaggregated: UCC consistently *higher* than local (stalled threads
  do not yield), IPC lower at small partition counts;
* back-end stall cycles: ≈55.5 % local vs ≈80.9 % single-disaggregated.
"""

import pytest
from conftest import print_table, save_results, sweep_payload

from repro.apps import VoltDbModel
from repro.testbed import MemoryConfigKind, make_environment

WORKLOADS = tuple("ABCDEF")
PARTITIONS = (4, 16, 32, 64)
CONFIGS = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
)


def compute_payload(partitions=PARTITIONS):
    """Sweep target: perf-derived VoltDB metrics for every series point."""
    environments = {kind: make_environment(kind) for kind in CONFIGS}
    metrics = {}
    for kind in CONFIGS:
        for workload in WORKLOADS:
            for count in partitions:
                model = VoltDbModel(environments[kind], count)
                evaluated = model.evaluate(workload)
                metrics[f"{kind.value}/{workload}/{count}"] = {
                    "package_ipc": evaluated.package_ipc,
                    "ucc": evaluated.utilized_cores,
                    "backend_stall": evaluated.backend_stall_fraction,
                }
    return metrics


def test_fig6_voltdb_profile(once):
    metrics = once(sweep_payload, __file__, partitions=PARTITIONS)

    rows = []
    for workload in WORKLOADS:
        for partitions in PARTITIONS:
            local = metrics[f"local/{workload}/{partitions}"]
            single = metrics[f"single-disaggregated/{workload}/{partitions}"]
            rows.append(
                (
                    workload,
                    partitions,
                    f"{local['package_ipc']:.2f}",
                    f"{local['ucc']:.1f}",
                    f"{single['package_ipc']:.2f}",
                    f"{single['ucc']:.1f}",
                )
            )
    print_table(
        "Fig. 6 — VoltDB package IPC / utilized cores",
        ["wl", "parts", "IPC(local)", "UCC(local)",
         "IPC(single)", "UCC(single)"],
        rows,
    )
    save_results("fig6", metrics)

    # Back-end stall calibration (§VI-D text).
    local_a = metrics["local/A/32"]
    single_a = metrics["single-disaggregated/A/32"]
    assert local_a["backend_stall"] == pytest.approx(0.555, abs=0.03)
    assert single_a["backend_stall"] == pytest.approx(0.809, abs=0.03)

    for workload in WORKLOADS:
        local_series = [
            metrics[f"local/{workload}/{p}"]["package_ipc"]
            for p in PARTITIONS
        ]
        # IPC is non-decreasing in partitions for every workload.
        assert local_series == sorted(local_series), workload

    # Mixed workloads gain more from partitions than read-heavy ones.
    gain = lambda w: (
        metrics[f"local/{w}/64"]["package_ipc"]
        / metrics[f"local/{w}/4"]["package_ipc"]
    )
    assert gain("A") > gain("E")

    # Disaggregation raises UCC and lowers IPC at small partition counts.
    for workload in WORKLOADS:
        for partitions in (16, 32, 64):
            local = metrics[f"local/{workload}/{partitions}"]
            single = metrics[f"single-disaggregated/{workload}/{partitions}"]
            assert single["ucc"] >= local["ucc"] * 0.99, (
                workload,
                partitions,
            )
        local4 = metrics[f"local/{workload}/4"]
        single4 = metrics[f"single-disaggregated/{workload}/4"]
        assert single4["package_ipc"] <= local4["package_ipc"]
