"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Interrupt,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)


class TestScheduling:
    def test_starts_at_time_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_callback_runs_at_scheduled_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_priority_breaks_ties_before_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "late", priority=1)
        sim.schedule(1.0, order.append, "early", priority=-1)
        sim.run()
        assert order == ["early", "late"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run()
        assert sim.now == 10.0

    def test_run_until_with_empty_queue_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_event_count_increments(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.event_count == 4

    def test_max_events_guard_trips_on_livelock(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError, match="events"):
            sim.run(max_events=100)


class TestProcesses:
    def test_process_timeout_advances_time(self):
        sim = Simulator()

        def proc():
            yield Timeout(2.5)
            return sim.now

        assert sim.run_process(proc()) == 2.5

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            yield Timeout(2.0)
            return sim.now

        assert sim.run_process(proc()) == 3.0

    def test_timeout_value_is_returned_from_yield(self):
        sim = Simulator()

        def proc():
            value = yield Timeout(1.0, value="payload")
            return value

        assert sim.run_process(proc()) == "payload"

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield Timeout(0.0)
            return 42

        assert sim.run_process(proc()) == 42

    def test_waiting_on_child_process(self):
        sim = Simulator()

        def child():
            yield Timeout(3.0)
            return "done"

        def parent():
            result = yield sim.process(child())
            return (result, sim.now)

        assert sim.run_process(parent()) == ("done", 3.0)

    def test_waiting_on_finished_process_resumes_immediately(self):
        sim = Simulator()

        def empty():
            return
            yield  # pragma: no cover - makes this a generator

        child = sim.process(empty())
        sim.run()

        def parent():
            yield child
            return sim.now

        assert sim.run_process(parent()) == 0.0

    def test_yielding_garbage_raises(self):
        sim = Simulator()

        def proc():
            yield "not a waitable"

        with pytest.raises(SimulationError, match="yielded"):
            sim.run_process(proc())

    def test_crash_in_process_propagates(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            sim.run_process(proc())

    def test_deadlocked_process_detected(self):
        sim = Simulator()

        def proc():
            yield Signal("never-fires")

        with pytest.raises(SimulationError, match="did not finish"):
            sim.run_process(proc())

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_all_of_waits_for_every_child(self):
        sim = Simulator()

        def child(delay, tag):
            yield Timeout(delay)
            return tag

        children = [sim.process(child(d, i)) for i, d in enumerate([3.0, 1.0, 2.0])]

        def parent():
            results = yield sim.all_of(children)
            return (results, sim.now)

        results, when = sim.run_process(parent())
        assert results == [0, 1, 2]
        assert when == 3.0


class TestSignals:
    def test_fire_wakes_waiter_with_value(self):
        sim = Simulator()
        signal = Signal("data")

        def waiter():
            value = yield signal
            return (value, sim.now)

        proc = sim.process(waiter())
        sim.schedule(4.0, signal.fire, "hello")
        sim.run()
        assert proc.result == ("hello", 4.0)

    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        signal = Signal()
        results = []

        def waiter(tag):
            yield signal
            results.append(tag)

        for tag in range(3):
            sim.process(waiter(tag))
        sim.schedule(1.0, signal.fire)
        sim.run()
        assert sorted(results) == [0, 1, 2]

    def test_reusable_signal_resets_after_fire(self):
        sim = Simulator()
        signal = Signal()
        wakeups = []

        def waiter():
            yield signal
            wakeups.append(sim.now)
            yield signal
            wakeups.append(sim.now)

        sim.process(waiter())
        sim.schedule(1.0, signal.fire)
        sim.schedule(2.0, signal.fire)
        sim.run()
        assert wakeups == [1.0, 2.0]

    def test_oneshot_signal_latches(self):
        sim = Simulator()
        signal = Signal(oneshot=True)
        signal.fire("latched")

        def late_waiter():
            value = yield signal
            return value

        assert sim.run_process(late_waiter()) == "latched"

    def test_waiter_count(self):
        sim = Simulator()
        signal = Signal()

        def waiter():
            yield signal

        sim.process(waiter())
        sim.run(until=0.0)
        # The process has started and subscribed.
        sim.step()  # no-op when nothing is pending
        assert signal.waiter_count <= 1


class TestInterrupt:
    def test_interrupt_wakes_blocked_process(self):
        sim = Simulator()

        def sleeper():
            try:
                yield Timeout(100.0)
            except Interrupt as exc:
                return ("interrupted", exc.cause, sim.now)
            return "slept"

        proc = sim.process(sleeper())
        sim.schedule(5.0, proc.interrupt, "wake up")
        sim.run()
        assert proc.result == ("interrupted", "wake up", 5.0)

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield Timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        proc.interrupt("too late")
        sim.run()
        assert proc.alive is False

    def test_uncaught_interrupt_kills_quietly(self):
        sim = Simulator()

        def sleeper():
            yield Timeout(100.0)

        proc = sim.process(sleeper())
        sim.schedule(1.0, proc.interrupt)
        sim.run()  # must not raise
        assert proc.alive is False


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                yield Timeout(delay)
                trace.append((tag, sim.now))
                yield Timeout(delay * 2)
                trace.append((tag, sim.now))

            for tag in range(5):
                sim.process(worker(tag, 0.5 + tag * 0.25))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()
