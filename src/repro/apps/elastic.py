"""Elasticsearch application model — paper §VI-F / Fig. 9.

* :class:`Elasticsearch` — a functional sharded search engine: documents
  hash across shards, each shard holds an inverted tag index plus date
  and answer-count indexes, queries fan out to every shard and merge
  (sorted when the challenge asks for it). Per-operation thread pools
  queue requests like the real engine's ``search`` pool.
* :class:`ElasticsearchModel` — throughput model for the four reported
  "nested" challenges. A query's cost is per-shard work (scales down
  with more shards) plus a per-shard merge/coordination term (scales
  *up* with more shards — why sync-heavy challenges degrade when shards
  scale). Configurations enter through the CPI ratio of the search
  profile (pointer-chasing over postings — miss-heavy) and through the
  channel bandwidth bound for postings scans; the scale-out cluster has
  2× cores but pays inter-node coordination per query.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..mem.cache import AccessProfile
from ..perf.cpi import CpiModel
from ..testbed.configurations import (
    AccessEnvironment,
    MemoryConfigKind,
    make_environment,
)
from ..workloads.esrally import Challenge, NestedQuery, StackOverflowPost

__all__ = ["Elasticsearch", "ElasticsearchModel", "CHALLENGE_PROFILES"]


# --------------------------------------------------------------------------- #
# Functional layer                                                            #
# --------------------------------------------------------------------------- #
class _Shard:
    """One shard: a fully-functional independent index (§VI-F)."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.documents: Dict[int, StackOverflowPost] = {}
        self.tag_index: Dict[str, List[int]] = defaultdict(list)

    def index(self, post: StackOverflowPost) -> None:
        self.documents[post.doc_id] = post
        for tag in post.tags:
            self.tag_index[tag].append(post.doc_id)

    def by_tag(self, tag: str) -> List[int]:
        return list(self.tag_index.get(tag, ()))

    def answers_before(self, min_answers: int, date: int) -> List[int]:
        matches = []
        for post in self.documents.values():
            answered = sum(1 for d in post.answer_dates if d < date)
            if answered >= min_answers:
                matches.append(post.doc_id)
        return matches

    def all_ids(self) -> List[int]:
        return list(self.documents.keys())


class Elasticsearch:
    """Functional sharded engine with per-operation thread pools."""

    def __init__(self, shards: int = 5):
        if shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        self.shards = [_Shard(i) for i in range(shards)]
        self.indexed = 0
        self.thread_pool_queued: Dict[str, int] = defaultdict(int)
        self.thread_pool_completed: Dict[str, int] = defaultdict(int)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, doc_id: int) -> _Shard:
        return self.shards[doc_id % len(self.shards)]

    # -- indexing -------------------------------------------------------------------
    def index(self, post: StackOverflowPost) -> None:
        self.thread_pool_queued["write"] += 1
        self.shard_of(post.doc_id).index(post)
        self.indexed += 1
        self.thread_pool_completed["write"] += 1

    def index_many(self, posts: Sequence[StackOverflowPost]) -> None:
        for post in posts:
            self.index(post)

    # -- search ----------------------------------------------------------------------
    def search(self, query: NestedQuery) -> List[int]:
        """Fan out to every shard, merge, optionally sort by date."""
        self.thread_pool_queued["search"] += 1
        per_shard: List[List[int]] = []
        for shard in self.shards:
            if query.challenge is Challenge.RTQ:
                per_shard.append(shard.by_tag(query.tag))
            elif query.challenge is Challenge.RSTQ:
                per_shard.append(shard.by_tag(query.tag))
            elif query.challenge is Challenge.RNQIHBS:
                per_shard.append(
                    shard.answers_before(query.min_answers, query.before_date)
                )
            elif query.challenge is Challenge.MA:
                per_shard.append(shard.all_ids())
            else:  # pragma: no cover - future challenges
                raise ValueError(f"unknown challenge {query.challenge!r}")
        merged = [doc_id for shard_hits in per_shard for doc_id in shard_hits]
        if query.sort_by_date:
            merged.sort(
                key=lambda doc_id: self.shard_of(doc_id)
                .documents[doc_id]
                .created,
                reverse=True,
            )
        else:
            merged.sort()
        self.thread_pool_completed["search"] += 1
        return merged

    def document_count(self) -> int:
        return sum(len(shard.documents) for shard in self.shards)


# --------------------------------------------------------------------------- #
# Performance layer                                                           #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChallengeProfile:
    """Calibrated cost structure of one nested-track challenge.

    Times are expressed for the LOCAL configuration at the reference
    shard count of 5; other configurations scale with the search
    profile's CPI ratio. ``query_bytes`` is the postings/doc-values
    volume one query streams (drives the channel bandwidth bound), and
    ``client_cap_qps`` is the 10 GbE client-path ceiling (dominant for
    match-all, whose responses are huge).
    """

    shard_seconds_local: float     #: per-shard work at 5 shards, local
    merge_seconds_local: float     #: per-shard merge/coordination cost
    query_bytes: float
    client_cap_qps: float
    scale_out_sync: float          #: extra coordination of the 2-node cluster


#: Lucene postings/doc-values scans are sequential and prefetch-friendly,
#: so the search path's LLC miss ratio is small — latency alone barely
#: separates the configurations; the *bandwidth* each query streams is
#: what differentiates them (single channel saturates first).
_SEARCH_PROFILE = AccessProfile(
    memory_instruction_fraction=0.35,
    llc_miss_ratio=0.0011,
    write_fraction=0.10,
    write_stall_factor=0.25,
)

CHALLENGE_PROFILES: Dict[Challenge, ChallengeProfile] = {
    # RTQ: cheap per-shard tag lookups at high QPS, but each query
    # streams ~100 MB of postings — the disaggregated channel is the
    # bottleneck, and scale-out (2x cores, little sync) wins outright.
    Challenge.RTQ: ChallengeProfile(
        shard_seconds_local=11.5e-3,
        merge_seconds_local=0.20e-3,
        query_bytes=95e6,
        client_cap_qps=5_000.0,
        scale_out_sync=0.10,
    ),
    # RNQIHBS: nested answer-count filter — heavy per-shard work, large
    # streamed volume, and a merge that grows with shards (throughput
    # degrades 5 -> 32); the 2-node cluster pays heavy coordination.
    Challenge.RNQIHBS: ChallengeProfile(
        shard_seconds_local=97e-3,
        merge_seconds_local=3.0e-3,
        query_bytes=451e6,
        client_cap_qps=500.0,
        scale_out_sync=0.80,
    ),
    # RSTQ: tag query + global date sort (merge-dominated at 32 shards).
    Challenge.RSTQ: ChallengeProfile(
        shard_seconds_local=55e-3,
        merge_seconds_local=3.2e-3,
        query_bytes=265e6,
        client_cap_qps=800.0,
        scale_out_sync=0.80,
    ),
    # MA: match-all streams everything back to the client — the 10 GbE
    # client path is the bottleneck, so every configuration converges.
    Challenge.MA: ChallengeProfile(
        shard_seconds_local=2.0e-3,
        merge_seconds_local=0.2e-3,
        query_bytes=1e6,
        client_cap_qps=1_900.0,
        scale_out_sync=0.03,
    ),
}

#: Shard count the profile's ``shard_seconds_local`` is calibrated at.
_REFERENCE_SHARDS = 5

#: Reference environment for CPI ratios.
_LOCAL_ENV = make_environment(MemoryConfigKind.LOCAL)


class ElasticsearchModel:
    """Analytic nested-track throughput under one configuration."""

    def __init__(
        self,
        environment: AccessEnvironment,
        shards: int,
        cpi: Optional[CpiModel] = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1: {shards}")
        self.environment = environment
        self.shards = shards
        self.cpi = cpi or CpiModel()

    def _cpi_ratio(self) -> float:
        """Search-path slowdown of this configuration vs local."""
        here = self.cpi.evaluate(_SEARCH_PROFILE, self.environment)
        local = self.cpi.evaluate(_SEARCH_PROFILE, _LOCAL_ENV)
        return here.total_cpi / local.total_cpi

    def query_cpu_seconds(self, challenge: Challenge) -> float:
        """Total CPU work of one query across all shards + merge."""
        profile = CHALLENGE_PROFILES[challenge]
        # The documents don't change with the shard count, so the total
        # per-shard scan work is constant; merge/coordination cost grows
        # linearly with shards — that is why the sync-heavy challenges
        # degrade when scaling 5 → 32 shards (§VI-F).
        total_shard_work = profile.shard_seconds_local * _REFERENCE_SHARDS
        merge_work = profile.merge_seconds_local * self.shards
        return (total_shard_work + merge_work) * self._cpi_ratio()

    def throughput_qps(self, challenge: Challenge) -> float:
        """Queries/s: soft-min of CPU, channel-bandwidth and client caps."""
        profile = CHALLENGE_PROFILES[challenge]
        env = self.environment
        cpu_seconds = self.query_cpu_seconds(challenge)
        cpu_cap = env.total_cores / cpu_seconds
        if env.kind is MemoryConfigKind.SCALE_OUT:
            cpu_cap /= 1.0 + profile.scale_out_sync
        bounds = [cpu_cap, profile.client_cap_qps]
        if env.remote_fraction > 0:
            remote_bytes = profile.query_bytes * env.remote_fraction
            if remote_bytes > 0:
                bounds.append(env.remote_bandwidth_bytes_s / remote_bytes)
        total = sum(bound ** -4.0 for bound in bounds)
        return total ** -0.25
