"""Exporter validation on empty and degenerate runs.

Every exporter in ``repro.obs`` must emit *valid* output for a run
that produced nothing: an idle testbed, an empty registry, a journal
with no events, a profiler that never sampled, a tracer that saw no
transactions. Degenerate-but-valid beats crashing in the last mile of
a CI job.
"""

import json

import pytest

from repro.obs import (
    EventLog,
    MetricsRegistry,
    SimProfiler,
    SloEngine,
    Tracer,
    chrome_trace,
    parse_prometheus,
    render_prometheus,
    validate_chrome_trace,
    validate_event_jsonl,
    write_chrome_trace,
)
from repro.obs.summary import summary_from_snapshot
from repro.sim import Simulator


class TestEmptyRegistry:
    def test_renders_as_valid_empty_exposition(self):
        text = render_prometheus(MetricsRegistry())
        assert text == ""
        parsed = parse_prometheus(text)
        assert parsed["samples"] == {} and parsed["types"] == {}

    def test_registry_with_only_silent_collectors(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda reg: None)
        assert render_prometheus(registry) == ""

    def test_zero_valued_metrics_still_render(self):
        registry = MetricsRegistry()
        registry.counter("dram.reads", node="node0")
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["samples"][("dram_reads", (("node", "node0"),))] == 0

    def test_empty_histogram_family_is_internally_consistent(self):
        registry = MetricsRegistry()
        registry.histogram("rtt", low=0.0, high=1.0, bins=4)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["samples"][("rtt_count", ())] == 0
        assert parsed["samples"][("rtt_bucket", (("le", "+Inf"),))] == 0
        assert parsed["samples"][("rtt_sum", ())] == 0

    def test_empty_snapshot_summary_renders(self):
        assert summary_from_snapshot("idle", {}).render()


class TestEmptyTracer:
    def test_idle_tracer_exports_a_valid_chrome_trace(self):
        document = chrome_trace(Tracer())
        assert validate_chrome_trace(document) >= 0
        json.dumps(document)

    def test_idle_tracer_writes_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(Tracer(), str(path))
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) >= 0


class TestEmptyJournal:
    def test_empty_journal_is_valid(self):
        log = EventLog()
        assert validate_event_jsonl(log.to_jsonl()) == 0
        assert log.to_dicts() == []
        assert log.evicted == 0

    def test_empty_journal_writes_empty_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog().write_jsonl(str(path))
        assert path.read_text() == ""


class TestIdleProfiler:
    def test_zero_sample_profiler_exports_cleanly(self, tmp_path):
        profiler = SimProfiler()
        assert profiler.folded() == ""
        path = tmp_path / "profile.folded"
        profiler.write_folded(str(path))
        assert path.read_text() == ""
        assert profiler.top_table().render()
        assert json.dumps(profiler.describe())

    def test_profiling_a_run_with_no_events(self):
        from repro.obs import disable_profiling, enable_profiling

        enable_profiling(stride=1)
        try:
            sim = Simulator()
            drained_at = sim.run()
        finally:
            profiler = disable_profiling()
        assert drained_at == 0.0
        assert profiler.samples_taken == 0
        assert profiler.folded() == ""


class TestEmptySloEngine:
    def test_no_specs_is_a_passing_report(self):
        report = SloEngine([]).evaluate(MetricsRegistry())
        assert report.ok and report.exit_code() == 0
        assert report.describe()["total"] == 0
        assert report.render()


class TestIdleTestbedEndToEnd:
    def test_attach_only_run_exports_everything_validly(self, tmp_path):
        """A testbed that attached memory but moved no data still
        produces a parseable exposition, a valid (empty) journal, and a
        valid trace document."""
        from repro.mem import MIB
        from repro.obs import (
            disable_events,
            disable_tracing,
            enable_events,
            enable_tracing,
        )
        from repro.testbed import Testbed

        tracer = enable_tracing()
        enable_events()
        try:
            testbed = Testbed()
            testbed.attach("node0", 2 * MIB, memory_host="node1")
        finally:
            disable_tracing()
            log = disable_events()

        registry = MetricsRegistry()
        testbed.register_observability(registry)
        parsed = parse_prometheus(render_prometheus(registry))
        loads = parsed["samples"][
            ("bus_loads", (("bus", "node0.bus"), ("node", "node0")))
        ]
        assert loads == 0
        assert validate_chrome_trace(chrome_trace(tracer)) >= 0
        assert validate_event_jsonl(log.to_jsonl()) == log.total
        assert log.total >= 2  # the control verbs journaled
