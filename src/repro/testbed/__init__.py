"""Prototype assembly: nodes, the 3-node testbed, §VI-A configurations."""

from . import calibration
from .base import TestbedBase, TestbedProtocol
from .configurations import (
    AccessEnvironment,
    MemoryConfigKind,
    all_environments,
    make_environment,
)
from .node import Ac922Node, NodeSpec
from .prototype import EthernetSpec, Testbed
from .packet_rack import PacketRackTestbed
from .rack import RackTestbed
from .remote_buffer import RemoteBuffer

__all__ = [
    "Ac922Node",
    "NodeSpec",
    "TestbedProtocol",
    "TestbedBase",
    "Testbed",
    "RackTestbed",
    "PacketRackTestbed",
    "RemoteBuffer",
    "EthernetSpec",
    "MemoryConfigKind",
    "AccessEnvironment",
    "make_environment",
    "all_environments",
    "calibration",
]
