"""CPI-stack performance model.

Converts a workload's :class:`~repro.mem.cache.AccessProfile` plus an
:class:`~repro.testbed.configurations.AccessEnvironment` into the
quantities the paper's profiling campaign reports (§VI-D, Fig. 6):
retired instructions per cycle (IPC), utilized CPU cores (UCC from the
task-clock event), and front-end/back-end stall fractions.

The model is the classic additive CPI stack::

    CPI = CPI_base + CPI_frontend + CPI_backend(memory)

with the memory component::

    CPI_backend = f_mem * m_LLC * blocking * (latency * f_clk) / MLP

where *MLP* (memory-level parallelism) grows with latency — out-of-order
cores overlap more independent misses when each one takes longer, which
is why the measured stall fraction grows from 55.5 % to 80.9 % (a 1.5×
stall-cycle CPI growth per instruction... observed 3.4× in total stall
cycles) rather than the naive 11× the raw latency ratio would suggest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mem.cache import AccessProfile
from ..testbed.configurations import AccessEnvironment

__all__ = ["CpiModel", "CpiBreakdown"]


@dataclass(frozen=True)
class CpiBreakdown:
    """One evaluated CPI stack."""

    base_cpi: float
    frontend_stall_cpi: float
    backend_stall_cpi: float
    mlp: float

    @property
    def total_cpi(self) -> float:
        return self.base_cpi + self.frontend_stall_cpi + self.backend_stall_cpi

    @property
    def ipc(self) -> float:
        """Per-hardware-thread retired instructions per cycle."""
        return 1.0 / self.total_cpi

    @property
    def backend_stall_fraction(self) -> float:
        """Fraction of cycles stalled in the back-end (perf's
        ``stalled-cycles-backend`` / ``cycles``)."""
        return self.backend_stall_cpi / self.total_cpi

    @property
    def frontend_stall_fraction(self) -> float:
        return self.frontend_stall_cpi / self.total_cpi


class CpiModel:
    """POWER9-flavoured CPI stack with latency-adaptive MLP."""

    def __init__(
        self,
        base_cpi: float = 0.45,
        frontend_stall_cpi: float = 0.15,
        frequency_hz: float = 3.8e9,
        mlp_base: float = 2.0,
        mlp_alpha: float = 0.94,
        mlp_max: float = 8.0,
    ):
        if base_cpi <= 0:
            raise ValueError(f"base_cpi must be > 0: {base_cpi}")
        if mlp_base < 1.0:
            raise ValueError(f"mlp_base must be >= 1: {mlp_base}")
        self.base_cpi = base_cpi
        self.frontend_stall_cpi = frontend_stall_cpi
        self.frequency_hz = frequency_hz
        self.mlp_base = mlp_base
        self.mlp_alpha = mlp_alpha
        self.mlp_max = mlp_max

    # -- components -------------------------------------------------------------------
    def mlp_for_latency(self, miss_latency_s: float,
                        local_latency_s: float) -> float:
        """Effective overlap of outstanding misses at a given latency.

        Longer-latency misses leave the out-of-order window more time to
        expose independent misses, so the effective parallelism grows
        logarithmically with the latency ratio, saturating at the
        load-miss-queue depth.
        """
        if miss_latency_s <= local_latency_s:
            return self.mlp_base
        ratio = miss_latency_s / local_latency_s
        return min(
            self.mlp_max, self.mlp_base * (1.0 + self.mlp_alpha * math.log(ratio))
        )

    def backend_stall_cpi(
        self, profile: AccessProfile, environment: AccessEnvironment
    ) -> float:
        """Memory back-end stall cycles per instruction."""
        miss_latency = (
            (1.0 - profile.remote_fraction) * environment.local_latency_s
            + profile.remote_fraction * environment.remote_latency_s
        )
        if miss_latency <= 0:
            miss_latency = environment.local_latency_s
        mlp = self.mlp_for_latency(miss_latency, environment.local_latency_s)
        # Stores retire through the store queue; only a fraction of their
        # latency stalls the pipeline.
        blocking = (
            (1.0 - profile.write_fraction)
            + profile.write_fraction * profile.write_stall_factor
        )
        penalty_cycles = miss_latency * self.frequency_hz
        return (
            profile.memory_instruction_fraction
            * profile.llc_miss_ratio
            * blocking
            * penalty_cycles
            / mlp
        )

    # -- top level ---------------------------------------------------------------------
    def evaluate(
        self, profile: AccessProfile, environment: AccessEnvironment
    ) -> CpiBreakdown:
        """Evaluate the stack for a profile under an environment.

        ``profile.remote_fraction`` is overridden by the environment's
        NUMA split — the environment is the ground truth for where pages
        live.
        """
        effective = profile.with_remote_fraction(environment.remote_fraction)
        miss_latency = (
            (1.0 - effective.remote_fraction) * environment.local_latency_s
            + effective.remote_fraction * environment.remote_latency_s
        )
        if miss_latency <= 0:
            miss_latency = environment.local_latency_s
        return CpiBreakdown(
            base_cpi=self.base_cpi,
            frontend_stall_cpi=self.frontend_stall_cpi,
            backend_stall_cpi=self.backend_stall_cpi(effective, environment),
            mlp=self.mlp_for_latency(
                miss_latency, environment.local_latency_s
            ),
        )

    def instructions_per_second(
        self,
        profile: AccessProfile,
        environment: AccessEnvironment,
        threads: float = 1.0,
    ) -> float:
        """Aggregate instruction throughput of ``threads`` busy threads."""
        breakdown = self.evaluate(profile, environment)
        return breakdown.ipc * self.frequency_hz * threads
