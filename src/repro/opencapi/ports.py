"""OpenCAPI attachment ports: M1 (memory-controller) and C1 (accelerator).

* **M1 mode** — the off-chip device *receives* cacheline traffic from the
  SoC processors: firmware maps a real-address window to the port, and
  every load/store the CPU issues inside that window is handed to the
  attached device. The ThymesisFlow **compute** endpoint uses this mode.
* **C1 mode** — the device *masters* cache-coherent transactions into the
  effective address space of an associated process (identified by
  PASID), with no host-CPU or DMA-engine involvement. The
  **memory-stealing** endpoint uses this mode (paper §IV-A).

Port latencies model the OpenCAPI FPGA-stack crossing: the prototype's
950 ns RTT includes "four crossings of the FPGA stack and six serDES
crossings" (§V); the serdes crossings live in :mod:`repro.net`, and the
stack crossings are accounted here.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..mem.address import AddressRange
from ..sim.engine import Process, Simulator
from .bus import BusError, BusTarget, SystemBus
from .pasid import PasidRegistry
from .transactions import MemTransaction, ResponseCode, TLCommand

__all__ = ["OpenCapiM1Port", "OpenCapiC1Port"]

#: One traversal of the OpenCAPI FPGA stack (TLx/DLx pipeline). The RTT
#: budget of §V counts four of these: compute Tx, memory Rx, memory Tx,
#: compute Rx.
FPGA_STACK_CROSSING_S = 150e-9

#: One serdes (PHY) crossing on the host↔FPGA OpenCAPI link. The RTT
#: budget counts "2x at compute endpoint side … and two at the memory
#: stealing endpoint side" — one per direction at each host link.
HOST_LINK_SERDES_S = 55e-9


class OpenCapiM1Port:
    """Host-side M1 port: presents an attached device as bus memory.

    The port is itself a :class:`BusTarget`; firmware attaches it to the
    system bus over the window assigned to the device. Each transaction
    pays the host-link crossing cost before reaching the device logic.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "m1",
        crossing_latency_s: float = HOST_LINK_SERDES_S,
    ):
        self.sim = sim
        self.name = name
        self.crossing_latency_s = crossing_latency_s
        self._device: Optional[BusTarget] = None
        self.window: Optional[AddressRange] = None
        self.transactions = 0

    def connect_device(self, device: BusTarget) -> None:
        self._device = device

    def attach_to_bus(self, bus: SystemBus, window: AddressRange) -> None:
        """Firmware assigns a real-address window to this port."""
        if self._device is None:
            raise BusError(f"{self.name}: no device connected")
        self.window = window
        bus.attach(window, self)

    # -- BusTarget protocol -------------------------------------------------------
    def handle(self, txn: MemTransaction) -> Process:
        return self.sim.process(self._forward(txn), name=f"{self.name}.fwd")

    def _forward(self, txn: MemTransaction) -> Generator:
        if self._device is None:
            return txn.make_response(code=ResponseCode.ADDRESS_ERROR)
        self.transactions += txn.burst
        yield self.crossing_latency_s
        response = yield self._device.handle(txn)
        yield self.crossing_latency_s
        return response


class OpenCapiC1Port:
    """Device-side C1 port: masters transactions into host memory.

    Accesses carry a PASID and are validated against the registry's
    pinned windows before touching the bus — the hardware enforcement
    behind the paper's "memory transactions forwarding only towards
    legal destinations" guarantee.
    """

    def __init__(
        self,
        sim: Simulator,
        bus: SystemBus,
        pasids: PasidRegistry,
        name: str = "c1",
        crossing_latency_s: float = HOST_LINK_SERDES_S,
    ):
        self.sim = sim
        self.bus = bus
        self.pasids = pasids
        self.name = name
        self.crossing_latency_s = crossing_latency_s
        self.mastered = 0
        self.denied = 0

    def master(self, txn: MemTransaction) -> Process:
        """Master a request into the host's effective address space.

        The result is the response transaction; a PASID violation yields
        an ``ACCESS_DENIED`` response rather than an exception, because
        on real hardware this surfaces as a bus error response.
        """
        return self.sim.process(self._master(txn), name=f"{self.name}.master")

    def _master(self, txn: MemTransaction) -> Generator:
        try:
            self.pasids.check_access(txn.pasid, txn.address, txn.size)
        except PermissionError:
            self.denied += txn.burst
            return txn.make_response(code=ResponseCode.ACCESS_DENIED)
        self.mastered += txn.burst
        yield self.crossing_latency_s
        response = yield self.bus.issue(txn)
        yield self.crossing_latency_s
        return response
