"""Path planning over the control-plane state graph.

"For each disaggregated memory allocation request, the control plane
traverses the graph looking for the best available path connecting the
compute and memory stealing endpoints involved. Once a suitable path is
found and its resources are reserved, the control plane generates the
suitable configurations and pushes them to the appropriate agents."
(§IV-C)

Paths are ranked by hop count (fewer switch crossings = lower RTT) and
then by how loaded their transceivers are, which spreads flows across
channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from .graph import GraphError, NodeKind, StateGraph

__all__ = ["PathPlanner", "PlannedPath", "NoPathError"]


class NoPathError(GraphError):
    """No usable path between the requested endpoints."""

    code = "graph/no-path"


@dataclass(frozen=True)
class PlannedPath:
    """A reserved route between a compute and a memory endpoint.

    ``channel_indices`` are the compute-side transceiver (channel)
    numbers the flow will use — what the agent programs into the route
    table. ``reserved_nodes`` is everything the planner reserved, for
    symmetric release.
    """

    compute_host: str
    memory_host: str
    channel_indices: Tuple[int, ...]
    reserved_nodes: Tuple[str, ...]
    hop_count: int
    #: Full cep→…→mep node sequences, one per planned channel. Used by
    #: the orchestrator to program intermediate switching layers.
    node_paths: Tuple[Tuple[str, ...], ...] = ()

    @property
    def bonded(self) -> bool:
        return len(self.channel_indices) > 1


class PathPlanner:
    """Finds and reserves channel paths between endpoint pairs."""

    def __init__(self, state: StateGraph):
        self.state = state

    # -- path discovery ---------------------------------------------------------------
    def candidate_paths(
        self, compute_host: str, memory_host: str
    ) -> List[List[str]]:
        """All simple cep→mep paths with free capacity, best first."""
        graph = self.state.graph
        source = self.state.cep(compute_host)
        target = self.state.mep(memory_host)
        if not graph.has_node(source) or not graph.has_node(target):
            raise NoPathError(
                f"unknown endpoint(s): {compute_host!r} / {memory_host!r}"
            )
        usable = []
        try:
            paths = nx.all_simple_paths(graph, source, target, cutoff=6)
        except nx.NetworkXError as exc:  # pragma: no cover - defensive
            raise NoPathError(str(exc)) from exc
        for path in paths:
            middle = path[1:-1]
            if any(
                graph.nodes[node]["kind"]
                in (NodeKind.COMPUTE_ENDPOINT, NodeKind.MEMORY_ENDPOINT)
                for node in middle
            ):
                continue  # paths must not tunnel through other endpoints
            if all(self.state.free_capacity(node) > 0 for node in middle):
                usable.append(path)
        usable.sort(
            key=lambda p: (
                len(p),
                -min(self.state.free_capacity(n) for n in p[1:-1]),
            )
        )
        return usable

    # -- reservation -------------------------------------------------------------------
    def plan(
        self,
        compute_host: str,
        memory_host: str,
        channels: int = 1,
    ) -> PlannedPath:
        """Reserve ``channels`` disjoint paths (2 = bonding).

        Raises :class:`NoPathError` when fewer than ``channels`` disjoint
        usable paths exist.
        """
        if channels < 1:
            raise GraphError(f"channels must be >= 1: {channels}")
        if compute_host == memory_host:
            raise GraphError("compute and memory host must differ")
        chosen: List[List[str]] = []
        used_transceivers: set = set()
        for path in self.candidate_paths(compute_host, memory_host):
            middle = set(path[1:-1])
            if middle & used_transceivers:
                continue  # bonded channels must be physically disjoint
            chosen.append(path)
            used_transceivers |= middle
            if len(chosen) == channels:
                break
        if len(chosen) < channels:
            raise NoPathError(
                f"only {len(chosen)} disjoint path(s) from "
                f"{compute_host} to {memory_host}, need {channels}"
            )
        reserved: List[str] = []
        channel_indices: List[int] = []
        for path in chosen:
            middle = path[1:-1]
            self.state.reserve(middle)
            reserved.extend(middle)
            first_xcvr = middle[0]
            channel_indices.append(
                self.state.node_attr(first_xcvr, "channel")
            )
        return PlannedPath(
            compute_host=compute_host,
            memory_host=memory_host,
            channel_indices=tuple(channel_indices),
            reserved_nodes=tuple(reserved),
            hop_count=max(len(path) - 2 for path in chosen),
            node_paths=tuple(tuple(path) for path in chosen),
        )

    def release(self, planned: PlannedPath) -> None:
        self.state.release(planned.reserved_nodes)

    # -- capacity headroom --------------------------------------------------------------
    def capacity_headroom(self) -> Tuple[int, int]:
        """Cluster-wide donor capacity as ``(free_bytes, total_bytes)``.

        The admission side of QoS: best-effort attaches are denied when
        granting them would leave less free donor capacity than the
        reserve fraction kept for guaranteed tenants (see
        :meth:`~repro.control.orchestrator.ControlPlane.attach`).
        """
        free = 0
        total = 0
        for host in self.state.hosts():
            free += self.state.donor_free(host)
            total += self.state.node_attr(
                self.state.mep(host), "donor_capacity"
            )
        return free, total

    # -- donor selection ----------------------------------------------------------------
    def pick_donor(
        self, compute_host: str, size: int, exclude: Tuple[str, ...] = ()
    ) -> str:
        """Choose the donor with the most free memory that is reachable."""
        best: Optional[Tuple[int, str]] = None
        for host in self.state.hosts():
            if host == compute_host or host in exclude:
                continue
            free = self.state.donor_free(host)
            if free < size:
                continue
            if not self.candidate_paths(compute_host, host):
                continue
            if best is None or free > best[0]:
                best = (free, host)
        if best is None:
            raise NoPathError(
                f"no reachable donor with {size} bytes free for "
                f"{compute_host}"
            )
        return best[1]
