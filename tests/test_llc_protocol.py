"""Protocol-level tests of a bare LLC endpoint pair over one channel.

These bypass the device/routing layers entirely: transactions go in on
one side and must come out the other side exactly once, in order,
whatever the wire does.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LlcConfig, LlcEndpoint
from repro.net import DuplexChannel, FaultInjector, LinkConfig
from repro.opencapi import MemTransaction
from repro.sim import Simulator


def make_pair(config=None, faults_ab=None, faults_ba=None):
    sim = Simulator()
    channel = DuplexChannel(
        sim, LinkConfig(), faults_ab=faults_ab, faults_ba=faults_ba
    )
    a = LlcEndpoint(sim, channel.endpoint_view("a"), config, name="a")
    b = LlcEndpoint(sim, channel.endpoint_view("b"), config, name="b")
    return sim, a, b


def pump(sim, source, sink, count, payload_size=128):
    """Send ``count`` writes a→b; return the txn ids b received."""
    sent_ids = []

    def sender():
        for index in range(count):
            txn = MemTransaction.write(
                index * 128, bytes([index % 251]) * payload_size
            )
            sent_ids.append(txn.txn_id)
            yield source.submit(txn)

    received = []

    def receiver():
        for _ in range(count):
            txn = yield sink.receive()
            received.append(txn)

    sim.process(sender(), name="sender")
    proc = sim.process(receiver(), name="receiver")
    # Generous relative bound; LLC timers may extend past the traffic.
    sim.run(until=sim.now + 1.0)
    assert not proc.alive, "receiver did not get every transaction"
    return sent_ids, received


class TestCleanChannel:
    def test_in_order_exactly_once(self):
        sim, a, b = make_pair()
        sent, received = pump(sim, a, b, 40)
        assert [t.txn_id for t in received] == sent

    def test_payload_integrity(self):
        sim, a, b = make_pair()
        _sent, received = pump(sim, a, b, 20)
        for index, txn in enumerate(received):
            assert txn.data == bytes([index % 251]) * 128

    def test_no_replays_on_clean_wire(self):
        sim, a, b = make_pair()
        pump(sim, a, b, 30)
        assert a.replays_served == 0
        assert b.replays_requested == 0
        assert b.frames_corrupted == 0

    def test_nop_padding_counted(self):
        sim, a, b = make_pair()
        pump(sim, a, b, 3)  # 3 writes = 15 flits + padding
        assert a.nops_padded >= 1

    def test_retention_drains_after_acks(self):
        sim, a, b = make_pair()
        pump(sim, a, b, 25)
        sim.run(until=2.0)
        assert a.retention_depth == 0

    def test_credits_fully_restored(self):
        config = LlcConfig(rx_queue_slots=16)
        sim, a, b = make_pair(config)
        pump(sim, a, b, 50)
        sim.run(until=2.0)
        assert a.credits_available == 16


class TestLossyChannel:
    def test_single_drop_recovered(self):
        faults = FaultInjector()
        faults.force_drop_next()
        sim, a, b = make_pair(faults_ab=faults)
        sent, received = pump(sim, a, b, 10)
        assert [t.txn_id for t in received] == sent

    def test_burst_drop_recovered(self):
        faults = FaultInjector()
        faults.force_drop_next(3)
        sim, a, b = make_pair(faults_ab=faults)
        sent, received = pump(sim, a, b, 20)
        assert [t.txn_id for t in received] == sent

    def test_corruption_triggers_replay_request(self):
        faults = FaultInjector()
        faults.force_corrupt_next()
        sim, a, b = make_pair(faults_ab=faults)
        sent, received = pump(sim, a, b, 10)
        assert [t.txn_id for t in received] == sent
        assert b.frames_corrupted >= 1
        assert b.replays_requested >= 1
        assert a.replays_served >= 1

    def test_tail_loss_recovered_by_timer(self):
        # Drop the *last* frame: no later frame reveals the gap, so only
        # the Tx retention timeout can recover it.
        faults = FaultInjector()
        sim, a, b = make_pair(faults_ab=faults)
        # Send 5, then arrange the 6th (final) frame to drop.
        sent_ids = []

        def sender():
            for index in range(5):
                txn = MemTransaction.write(index * 128, bytes(128))
                sent_ids.append(txn.txn_id)
                yield a.submit(txn)
            yield sim.timeout(10e-6)  # let earlier frames flush
            faults.force_drop_next()
            txn = MemTransaction.write(5 * 128, bytes(128))
            sent_ids.append(txn.txn_id)
            yield a.submit(txn)

        received = []

        def receiver():
            for _ in range(6):
                txn = yield b.receive()
                received.append(txn.txn_id)

        sim.process(sender())
        proc = sim.process(receiver())
        sim.run(until=1.0)
        assert not proc.alive
        assert received == sent_ids
        assert a.timeout_recoveries >= 1

    @settings(max_examples=12, deadline=None)
    @given(
        drop_p=st.floats(min_value=0.0, max_value=0.15),
        corrupt_p=st.floats(min_value=0.0, max_value=0.15),
        count=st.integers(min_value=5, max_value=60),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_property_exactly_once_in_order(
        self, drop_p, corrupt_p, count, seed
    ):
        """The LLC invariant: any loss/corruption pattern, the receiver
        sees exactly the sent sequence."""
        from repro.sim import SeededRNG

        faults = FaultInjector(
            rng=SeededRNG(seed),
            drop_probability=drop_p,
            corrupt_probability=corrupt_p,
        )
        sim, a, b = make_pair(faults_ab=faults)
        sent, received = pump(sim, a, b, count)
        assert [t.txn_id for t in received] == sent


class TestLinkBringUp:
    def test_reset_link_resynchronizes_ids(self):
        sim, a, b = make_pair()
        pump(sim, a, b, 8)
        assert a._next_frame_id > 0
        a.reset_link()
        b.reset_link()
        assert a._next_frame_id == 0 and b._expected_id == 0
        # Traffic flows cleanly after bring-up.
        sent, received = pump(sim, a, b, 8)
        assert [t.txn_id for t in received] == sent

    def test_reset_restores_credits_and_clears_retention(self):
        config = LlcConfig(rx_queue_slots=8)
        sim, a, b = make_pair(config)
        pump(sim, a, b, 12)
        a.reset_link()
        assert a.credits_available == 8
        assert a.retention_depth == 0

    def test_mismatched_ids_without_bringup_deadlock(self):
        """Demonstrates *why* bring-up exists: stale ids stall the link."""
        sim, a, b = make_pair()
        pump(sim, a, b, 5)
        # Simulate a circuit re-pointing: only the receiver is fresh.
        b.reset_link()
        a._credits.reset(a.config.rx_queue_slots)

        def sender():
            yield a.submit(MemTransaction.write(0, bytes(128)))

        got = []

        def receiver():
            txn = yield b.receive()
            got.append(txn)

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=50e-6)
        # b expects frame 0 but a sends frame 5: b treats it as a future
        # frame and requests a replay of 0..4 that a cannot serve; the
        # transaction is stuck until a real bring-up happens.
        assert got == []
