"""Deterministic discrete-event simulation kernel.

Every timed component in the ThymesisFlow reproduction (serdes lanes, LLC
framers, DRAM banks, application thread pools) runs on this engine. The
design goals are:

* **Determinism** — events scheduled for the same timestamp fire in a
  stable order (priority, then insertion sequence), so simulations are
  bit-reproducible for a given seed.
* **Coroutine processes** — model code is written as generators that
  ``yield`` waitable objects (:class:`Timeout`, :class:`Signal`,
  :class:`Process`), in the style of SimPy, which keeps pipeline stages
  readable.
* **No wall-clock dependence** — simulated time is a plain ``float`` of
  seconds; nothing here ever consults the host clock.

Performance notes (see ``docs/performance.md``): the kernel is the hot
loop under every benchmark, so it uses a bucketed two-tier event queue:

* ``_buckets`` — a dict mapping an exact float timestamp to the list of
  ``(key, target, payload)`` entries pending at that instant, plus
  ``_times``, a heap of the *distinct* timestamps only.  Simulations of
  clocked hardware dispatch many events per instant (every flit of a
  frame, every line of a burst), so scheduling is usually a dict hit
  and a list append — the heap is touched once per distinct timestamp
  instead of once per event, and heap entries are bare floats, which
  compare much faster than tuples.  ``key`` folds priority and
  insertion sequence into one integer; appends are naturally
  key-ordered, so a bucket only needs sorting when a non-zero priority
  was scheduled into it (tracked in ``_dirty``).
* ``_ready`` — a plain list of ``(key, target, payload)`` entries for
  the timestamp currently being dispatched.  Zero-delay wakeups (signal
  fires, process spawns, join notifications — the bulk of datapath
  traffic) append here and are consumed by index, skipping the bucket
  machinery entirely.  Entries landing in ``_ready`` always carry
  larger keys than the bucket being dispatched, so draining the bucket
  and then ``_ready`` preserves global key order.

``target`` is either a :class:`Process` (resume its generator with
``payload``) or a plain callback (apply ``payload`` as an args tuple);
:meth:`Simulator.run` discriminates by class and resumes generators
inline — send plus bucket re-insert — without any intermediate Python
call per event.
"""

from __future__ import annotations

import heapq
import itertools
from heapq import heappush
from operator import itemgetter
from types import GeneratorType
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..obs import profiler as _obs_profiler
from ..obs import trace as _obs_trace

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "Interrupt",
    "SimulationError",
]

#: Priority occupies the high bits of the heap key; sequence numbers the
#: low ``_SEQ_BITS``. 2**48 events is far beyond any plausible run.
_SEQ_BITS = 48
_PRIORITY_SHIFT = 1 << _SEQ_BITS

#: Sort key for re-ordering a bucket whose keys arrived out of order.
_ENTRY_KEY = itemgetter(0)


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding junk)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Waitable:
    """Base class for things a process may ``yield``.

    A waitable either completes immediately or records the waiting
    process and resumes it later by pushing an event entry.
    """

    __slots__ = ()

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Suspend the yielding process for ``delay`` simulated seconds.

    The optional ``value`` is returned from the ``yield`` expression,
    which is occasionally handy for modelling data that arrives with a
    fixed latency.  A Timeout holds no per-wait state, so one instance
    may be yielded repeatedly (hot loops hoist the allocation).
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        delay = self.delay
        if delay == 0.0 and sim._running:
            sim._ready.append((next(sim._seq), process, self.value))
        else:
            sim._push(sim._now + delay, next(sim._seq), process, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


class Signal(_Waitable):
    """A one-shot or reusable event that processes can wait on.

    ``fire(value)`` wakes every currently-waiting process with ``value``.
    By default a signal is *reusable*: after firing it resets and can be
    waited on again (useful for "new frame arrived" notifications).  Pass
    ``oneshot=True`` for latching semantics: once fired, later waiters
    resume immediately with the fired value.
    """

    __slots__ = ("name", "oneshot", "fired", "value", "_waiters")

    def __init__(self, name: str = "", oneshot: bool = False):
        self.name = name
        self.oneshot = oneshot
        self.fired = False
        self.value: Any = None
        self._waiters: List[Process] = []

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        if self.oneshot and self.fired:
            sim._wake(process, self.value)
        else:
            self._waiters.append(process)

    def fire(self, value: Any = None) -> None:
        """Wake all waiters, delivering ``value`` from their ``yield``."""
        self.fired = True
        self.value = value
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            sim = process.sim
            if sim._running:
                sim._ready.append((next(sim._seq), process, value))
            else:
                sim._push(sim._now, next(sim._seq), process, value)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else "pending"
        return f"Signal({self.name!r}, {state})"


class Process(_Waitable):
    """A coroutine running inside the simulator.

    Wraps a generator; each ``yield`` hands a :class:`_Waitable` to the
    kernel. A process is itself waitable: yielding a process suspends the
    yielder until the target returns, delivering its return value.
    """

    __slots__ = (
        "sim",
        "_name",
        "_generator",
        "alive",
        "result",
        "error",
        "_joiners",
        "_join_signal",
        "_pending_interrupt",
    )

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if generator.__class__ is not GeneratorType and not hasattr(
            generator, "send"
        ):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        #: Resolved lazily by the ``name`` property — reading the
        #: generator's ``__name__`` per spawn is measurable overhead in
        #: spawn-heavy datapaths (every bus load/store is a process).
        self._name = name
        self._generator = generator
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: List[Process] = []
        #: Created lazily on first access: most processes finish with no
        #: external observer, and the Signal + f-string name allocation
        #: showed up hot in datapath profiles.
        self._join_signal: Optional[Signal] = None
        #: Exception to throw into the generator at the next resume:
        #: an :class:`Interrupt` (via :meth:`interrupt`) or a crashed
        #: dependency's error being propagated to this joiner.
        self._pending_interrupt: Optional[BaseException] = None

    @property
    def name(self) -> str:
        n = self._name
        if not n:
            n = self._name = getattr(self._generator, "__name__", "process")
        return n

    @property
    def join_signal(self) -> Signal:
        """Oneshot signal fired with the process result on completion."""
        if self._join_signal is None:
            self._join_signal = Signal(name=f"{self.name}.done", oneshot=True)
            if not self.alive:
                self._join_signal.fire(self.result)
        return self._join_signal

    # -- waitable protocol -------------------------------------------------
    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        if not self.alive:
            if self.error is not None and not isinstance(
                self.error, Interrupt
            ):
                # Joining an already-crashed process re-raises its error
                # in the joiner (same contract as joining before the
                # crash — see _finish).
                process._pending_interrupt = self.error
                sim._wake(process, None)
            else:
                sim._wake(process, self.result)
        else:
            self._joiners.append(process)

    # -- kernel internals --------------------------------------------------
    def _resume(self, value: Any = None) -> None:
        """Advance the generator by one yield (slow / generic path).

        :meth:`Simulator.run` inlines an equivalent of this body for
        process-shaped entries; this method serves :meth:`Simulator.step`,
        interrupt delivery, and any externally scheduled resume.
        """
        if not self.alive:
            return
        try:
            if self._pending_interrupt is not None:
                exc, self._pending_interrupt = self._pending_interrupt, None
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except BaseException as exc:
            self._handle_exception(exc)
            return
        cls = target.__class__
        if cls is Timeout:
            sim = self.sim
            sim._push(
                sim._now + target.delay, next(sim._seq), self, target.value
            )
            return
        if cls is float or cls is int:
            # Bare-number yield: a timeout with no value, minus the
            # Timeout allocation (the repo's hot-path idiom).
            if target >= 0:
                sim = self.sim
                sim._push(sim._now + target, next(sim._seq), self, None)
                return
            self._bad_yield(target)
            return
        if isinstance(target, _Waitable):
            target._subscribe(self.sim, self)
            return
        self._bad_yield(target)

    def _handle_exception(self, exc: BaseException) -> None:
        """Terminate the process after its generator raised ``exc``."""
        if isinstance(exc, StopIteration):
            self._finish(exc.value)
        elif isinstance(exc, Interrupt):
            # An un-caught interrupt terminates the process quietly.
            self._finish(None, error=exc, raise_error=False)
        else:
            self._finish(None, error=exc, raise_error=True)

    def _bad_yield(self, target: Any) -> None:
        exc = SimulationError(
            f"process {self.name!r} yielded {target!r}; expected "
            "Timeout, Signal, Process or a non-negative number of seconds"
        )
        self._finish(None, error=exc, raise_error=True)

    def _finish(
        self,
        result: Any,
        error: Optional[BaseException] = None,
        raise_error: bool = False,
    ) -> None:
        self.alive = False
        self.result = result
        self.error = error
        propagated = False
        if self._joiners:
            joiners, self._joiners = self._joiners, []
            sim = self.sim
            if error is not None and raise_error:
                # Crash propagation: the error is thrown *into* every
                # joiner at its next resume, so model code can catch
                # domain errors across process waits (``try: yield
                # bus.store(...) except RemoteMemoryError``) and the
                # whole waiting chain unwinds via normal exception
                # semantics instead of resuming with a bogus None.
                propagated = True
                for joiner in joiners:
                    joiner._pending_interrupt = error
                    sim._wake(joiner, None)
            else:
                for joiner in joiners:
                    sim._wake(joiner, result)
        if self._join_signal is not None:
            self._join_signal.fire(result)
        if error is not None and raise_error and not propagated:
            # Nobody was waiting: surface the crash out of run().
            self.sim._record_crash(self, error)

    # -- public API ---------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        The interrupt is delivered immediately (as a zero-delay event), so
        a process blocked on a long timeout wakes up now.
        """
        if not self.alive:
            return
        self._pending_interrupt = Interrupt(cause)
        self.sim._wake(self, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The event loop: a two-tier priority queue of timestamped events."""

    __slots__ = (
        "_times",
        "_buckets",
        "_dirty",
        "_ready",
        "_running",
        "_now",
        "_seq",
        "_crashed",
        "event_count",
    )

    def __init__(self):
        self._times: List[float] = []
        self._buckets: Dict[float, List[Tuple[int, Any, Any]]] = {}
        self._dirty: set = set()
        self._ready: List[Tuple[int, Any, Any]] = []
        self._running = False
        self._now = 0.0
        self._seq = itertools.count()
        self._crashed: List[Tuple[Process, BaseException]] = []
        self.event_count = 0

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------
    def _push(self, time: float, key: int, target: Any, payload: Any) -> None:
        """Insert one event entry into its timestamp bucket."""
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(key, target, payload)]
            heappush(self._times, time)
        else:
            bucket.append((key, target, payload))

    def schedule(
        self,
        delay: float,
        callback: Callable,
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        key = next(self._seq)
        if priority:
            key += priority * _PRIORITY_SHIFT
            time = self._now + delay
            self._push(time, key, callback, args)
            self._dirty.add(time)
            return
        if delay == 0.0 and self._running:
            self._ready.append((key, callback, args))
            return
        self._push(self._now + delay, key, callback, args)

    def schedule_at(
        self,
        time: float,
        callback: Callable,
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Run ``callback(*args)`` at absolute simulated ``time``.

        Unlike ``schedule(time - now, ...)`` this keys the bucket by the
        exact float ``time``, which matters when reproducing event
        timestamps computed incrementally (``a + b`` followed by
        ``+ c`` is not always ``now + ((a + b + c) - now)`` in floating
        point).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time!r} < {self._now!r}"
            )
        key = next(self._seq)
        if priority:
            key += priority * _PRIORITY_SHIFT
            self._push(time, key, callback, args)
            self._dirty.add(time)
            return
        if time == self._now and self._running:
            self._ready.append((key, callback, args))
            return
        self._push(time, key, callback, args)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process and start it at time now."""
        proc = Process(self, generator, name=name)
        self._wake(proc, None)
        return proc

    def _wake(self, process: Process, value: Any) -> None:
        """Enqueue a zero-delay resume of ``process`` with ``value``."""
        if self._running:
            self._ready.append((next(self._seq), process, value))
        else:
            self._push(self._now, next(self._seq), process, value)

    # -- execution -----------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event. Returns False when queue empty."""
        times = self._times
        if not times:
            return False
        time = times[0]
        bucket = self._buckets[time]
        if self._dirty and time in self._dirty:
            self._dirty.discard(time)
            bucket.sort(key=_ENTRY_KEY)
        _key, target, payload = bucket.pop(0)
        if not bucket:
            heapq.heappop(times)
            del self._buckets[time]
        self._now = time
        self.event_count += 1
        if target.__class__ is Process:
            target._resume(payload)
        else:
            target(*payload)
        self._raise_if_crashed()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or simulated time exceeds ``until``.

        Returns the simulated time at which execution stopped.  A
        ``max_events`` guard turns accidental infinite event loops into a
        loud failure instead of a hang.

        The loop is deliberately inlined: per timestamp it takes the
        whole bucket, resumes process generators right here (send plus
        bucket re-insert), then drains the zero-delay wakeups the batch
        produced, handling StopIteration completion without leaving the
        loop.  This is the hottest code in the repository; keep it
        boring.
        """
        # Observability hooks live at entry/exit only — the dispatch loop
        # below stays branch-free with respect to tracing. The sampling
        # profiler is the one exception, and it reduces to a single
        # local-int truthiness check per event while disabled and a
        # countdown decrement while enabled; the expensive work happens
        # only once per `stride` events inside profiler.sample().
        trace_start = self._now if _obs_trace.ENABLED else None
        profiler = _obs_profiler._PROFILER if _obs_profiler.ENABLED else None
        if profiler is not None:
            prof_stride = profiler.stride
            prof_left = prof_stride
            profiler.begin_run(self._now)
        else:
            prof_left = 0
        events_before = self.event_count
        times = self._times
        buckets = self._buckets
        dirty = self._dirty
        ready = self._ready
        pop = heapq.heappop
        push = heappush
        seq = self._seq
        crashed = self._crashed
        events = 0
        entries: List[Tuple[int, Any, Any]] = ready
        pos = 0
        self._running = True
        try:
            while times:
                time = times[0]
                if until is not None and time > until:
                    self._now = until
                    break
                pop(times)
                bucket = buckets.pop(time)
                if dirty and time in dirty:
                    dirty.discard(time)
                    bucket.sort(key=_ENTRY_KEY)
                self._now = time
                # Dispatch the batch at `time`: the bucket first, then
                # the zero-delay wakeups it produced (their keys are
                # always younger than every bucket entry's, so this is
                # exactly global key order).
                entries = bucket
                pos = 0
                while True:
                    if pos >= len(entries):
                        if entries is ready:
                            break
                        entries = ready
                        pos = 0
                        continue
                    _key, target, payload = entries[pos]
                    pos += 1
                    if prof_left:
                        prof_left -= 1
                        if not prof_left:
                            prof_left = prof_stride
                            profiler.sample(time, target)
                    if target.__class__ is Process:
                        if target.alive:
                            if target._pending_interrupt is None:
                                try:
                                    yielded = target._generator.send(payload)
                                except StopIteration as stop:
                                    target.alive = False
                                    result = stop.value
                                    target.result = result
                                    joiners = target._joiners
                                    if joiners:
                                        target._joiners = []
                                        for joiner in joiners:
                                            ready.append(
                                                (next(seq), joiner, result)
                                            )
                                    if target._join_signal is not None:
                                        target._join_signal.fire(result)
                                except BaseException as exc:
                                    target._handle_exception(exc)
                                    if crashed:
                                        self.event_count += events + 1
                                        events = 0
                                        self._raise_if_crashed()
                                else:
                                    ycls = yielded.__class__
                                    if ycls is float:
                                        # Bare-number timeout (hot-path
                                        # idiom): no value, no object.
                                        if yielded > 0.0:
                                            when = time + yielded
                                            bkt = buckets.get(when)
                                            if bkt is None:
                                                buckets[when] = [
                                                    (next(seq), target, None)
                                                ]
                                                push(times, when)
                                            else:
                                                bkt.append(
                                                    (next(seq), target, None)
                                                )
                                        elif yielded == 0.0:
                                            ready.append(
                                                (next(seq), target, None)
                                            )
                                        else:
                                            target._bad_yield(yielded)
                                            if crashed:
                                                self.event_count += events + 1
                                                events = 0
                                                self._raise_if_crashed()
                                    elif ycls is Timeout:
                                        delay = yielded.delay
                                        if delay:
                                            when = time + delay
                                            entry = (
                                                next(seq),
                                                target,
                                                yielded.value,
                                            )
                                            bkt = buckets.get(when)
                                            if bkt is None:
                                                buckets[when] = [entry]
                                                push(times, when)
                                            else:
                                                bkt.append(entry)
                                        else:
                                            ready.append(
                                                (
                                                    next(seq),
                                                    target,
                                                    yielded.value,
                                                )
                                            )
                                    elif ycls is Signal:
                                        if yielded.oneshot and yielded.fired:
                                            ready.append(
                                                (
                                                    next(seq),
                                                    target,
                                                    yielded.value,
                                                )
                                            )
                                        else:
                                            yielded._waiters.append(target)
                                    elif ycls is Process:
                                        if yielded.alive:
                                            yielded._joiners.append(target)
                                        elif (
                                            yielded.error is not None
                                            and not isinstance(
                                                yielded.error, Interrupt
                                            )
                                        ):
                                            target._pending_interrupt = (
                                                yielded.error
                                            )
                                            ready.append(
                                                (next(seq), target, None)
                                            )
                                        else:
                                            ready.append(
                                                (
                                                    next(seq),
                                                    target,
                                                    yielded.result,
                                                )
                                            )
                                    elif ycls is int:
                                        if yielded >= 0:
                                            if yielded:
                                                when = time + yielded
                                                bkt = buckets.get(when)
                                                if bkt is None:
                                                    buckets[when] = [
                                                        (
                                                            next(seq),
                                                            target,
                                                            None,
                                                        )
                                                    ]
                                                    push(times, when)
                                                else:
                                                    bkt.append(
                                                        (
                                                            next(seq),
                                                            target,
                                                            None,
                                                        )
                                                    )
                                            else:
                                                ready.append(
                                                    (next(seq), target, None)
                                                )
                                        else:
                                            target._bad_yield(yielded)
                                            if crashed:
                                                self.event_count += events + 1
                                                events = 0
                                                self._raise_if_crashed()
                                    elif isinstance(yielded, _Waitable):
                                        yielded._subscribe(self, target)
                                    else:
                                        target._bad_yield(yielded)
                                        if crashed:
                                            self.event_count += events + 1
                                            events = 0
                                            self._raise_if_crashed()
                            else:
                                target._resume(payload)
                                if crashed:
                                    self.event_count += events + 1
                                    events = 0
                                    self._raise_if_crashed()
                        # else: stale wakeup of a finished process — drop.
                    else:
                        target(*payload)
                        if crashed:
                            self.event_count += events + 1
                            events = 0
                            self._raise_if_crashed()
                    events += 1
                    if events > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; probable "
                            f"livelock at t={self._now}"
                        )
                del ready[:]
                pos = 0
        finally:
            self._running = False
            if entries is ready:
                leftover = ready[pos:]
            else:
                leftover = entries[pos:]
                leftover.extend(ready)
            del ready[:]
            pos = 0
            if leftover:
                # Exceptional exit mid-batch: spill undispatched wakeups
                # back into a bucket so a later run()/step() sees them.
                now = self._now
                existing = buckets.get(now)
                if existing is None:
                    buckets[now] = leftover
                    push(times, now)
                else:
                    # Entries for this same instant were scheduled
                    # mid-batch; merge and restore key order.
                    leftover.extend(existing)
                    leftover.sort(key=_ENTRY_KEY)
                    buckets[now] = leftover
            self.event_count += events
        if until is not None and self._now < until and not times:
            self._now = until
        if trace_start is not None and _obs_trace.ENABLED:
            _obs_trace.span(
                "sim.run",
                trace_start,
                self._now,
                "sim",
                events=self.event_count - events_before,
            )
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process return value; re-raises any crash.
        """
        proc = self.process(generator, name=name)
        self.run()
        if proc.error is not None:
            raise proc.error
        if proc.alive:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock?)"
            )
        return proc.result

    # -- crash plumbing --------------------------------------------------------
    def _record_crash(self, process: Process, error: BaseException) -> None:
        self._crashed.append((process, error))

    def _raise_if_crashed(self) -> None:
        if self._crashed:
            process, error = self._crashed[0]
            self._crashed.clear()
            # Re-raise the original exception so callers can catch the
            # domain error type; annotate with the crashing process.
            if hasattr(error, "add_note"):  # Python 3.11+
                error.add_note(f"raised inside process {process.name!r}")
            raise error

    # -- helpers ----------------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Shorthand so model code reads ``yield sim.timeout(x)``."""
        return Timeout(delay, value)

    def all_of(self, waitables: Iterable[_Waitable]) -> Process:
        """A process completing when every waitable in the list has."""

        def _waiter():
            results = []
            for waitable in waitables:
                results.append((yield waitable))
            return results

        return self.process(_waiter(), name="all_of")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pending = sum(len(b) for b in self._buckets.values())
        return f"Simulator(now={self._now!r}, pending={pending})"
