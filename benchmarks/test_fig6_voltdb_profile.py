"""Fig. 6 — VoltDB profiling: package IPC and utilized CPU cores.

Series: YCSB workloads A–F × partitions {4, 16, 32, 64} for the local
and single-disaggregated configurations (perf-derived metrics).

Shape claims asserted (§VI-D):
* local, mixed workloads (A, F): IPC rises with partitions, the largest
  jump between 4 and 16;
* read-dominated workloads (B–E): much flatter IPC scaling;
* disaggregated: UCC consistently *higher* than local (stalled threads
  do not yield), IPC lower at small partition counts;
* back-end stall cycles: ≈55.5 % local vs ≈80.9 % single-disaggregated.
"""

import pytest
from conftest import print_table, save_results

from repro.apps import VoltDbModel
from repro.testbed import MemoryConfigKind, make_environment

WORKLOADS = tuple("ABCDEF")
PARTITIONS = (4, 16, 32, 64)
CONFIGS = (
    MemoryConfigKind.LOCAL,
    MemoryConfigKind.SINGLE_DISAGGREGATED,
)


def run_profile():
    environments = {kind: make_environment(kind) for kind in CONFIGS}
    metrics = {}
    for kind in CONFIGS:
        for workload in WORKLOADS:
            for partitions in PARTITIONS:
                model = VoltDbModel(environments[kind], partitions)
                metrics[(kind.value, workload, partitions)] = model.evaluate(
                    workload
                )
    return metrics


def test_fig6_voltdb_profile(once):
    metrics = once(run_profile)

    rows = []
    for workload in WORKLOADS:
        for partitions in PARTITIONS:
            local = metrics[("local", workload, partitions)]
            single = metrics[("single-disaggregated", workload, partitions)]
            rows.append(
                (
                    workload,
                    partitions,
                    f"{local.package_ipc:.2f}",
                    f"{local.utilized_cores:.1f}",
                    f"{single.package_ipc:.2f}",
                    f"{single.utilized_cores:.1f}",
                )
            )
    print_table(
        "Fig. 6 — VoltDB package IPC / utilized cores",
        ["wl", "parts", "IPC(local)", "UCC(local)",
         "IPC(single)", "UCC(single)"],
        rows,
    )
    save_results(
        "fig6",
        {
            f"{kind}/{workload}/{partitions}": {
                "package_ipc": m.package_ipc,
                "ucc": m.utilized_cores,
                "backend_stall": m.backend_stall_fraction,
            }
            for (kind, workload, partitions), m in metrics.items()
        },
    )

    # Back-end stall calibration (§VI-D text).
    local_a = metrics[("local", "A", 32)]
    single_a = metrics[("single-disaggregated", "A", 32)]
    assert local_a.backend_stall_fraction == pytest.approx(0.555, abs=0.03)
    assert single_a.backend_stall_fraction == pytest.approx(0.809, abs=0.03)

    for workload in WORKLOADS:
        local_series = [
            metrics[("local", workload, p)].package_ipc for p in PARTITIONS
        ]
        # IPC is non-decreasing in partitions for every workload.
        assert local_series == sorted(local_series), workload

    # Mixed workloads gain more from partitions than read-heavy ones.
    gain = lambda w: (
        metrics[("local", w, 64)].package_ipc
        / metrics[("local", w, 4)].package_ipc
    )
    assert gain("A") > gain("E")

    # Disaggregation raises UCC and lowers IPC at small partition counts.
    for workload in WORKLOADS:
        for partitions in (16, 32, 64):
            local = metrics[("local", workload, partitions)]
            single = metrics[("single-disaggregated", workload, partitions)]
            assert single.utilized_cores >= local.utilized_cores * 0.99, (
                workload,
                partitions,
            )
        local4 = metrics[("local", workload, 4)]
        single4 = metrics[("single-disaggregated", workload, 4)]
        assert single4.package_ipc <= local4.package_ipc
