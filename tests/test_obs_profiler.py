"""Sim-time sampling profiler: phase classification, kernel sampling,
and the folded-stacks / top-N reporting formats.
"""

import re

import pytest

from repro.mem import MIB
from repro.obs import (
    SimProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profiling,
)
from repro.obs.profiler import classify_phase
from repro.testbed import Testbed

FOLDED_LINE = re.compile(r"^sim;[a-z]+;\S+ \d+$")


class TestPhaseClassification:
    @pytest.mark.parametrize(
        ("name", "phase"),
        [
            ("node0.tf.link0.pump", "link"),
            ("serdes-lane3", "link"),
            ("node1.dram.bank2", "dram"),
            ("node1.tf.memory.serve", "dram"),
            ("node0.tf.llc0.submit", "llc"),
            ("L2-cache", "llc"),
            ("node0.tf.rmmu", "rmmu"),
            ("address-translation", "rmmu"),
            ("node0.bus", "bus"),
            ("packet-switch", "bus"),
            ("node0.tf.compute", "endpoint"),
            ("LenderAgent", "endpoint"),
            ("mystery-object", "other"),
        ],
    )
    def test_name_maps_to_phase(self, name, phase):
        assert classify_phase(name) == phase

    def test_classification_is_case_insensitive(self):
        assert classify_phase("DRAM-Bank0") == "dram"


class TestSamplingMechanics:
    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            SimProfiler(stride=0)

    def test_sample_attributes_deltas_to_target(self):
        profiler = SimProfiler(stride=1)

        class Pump:
            name = "node0.link.pump"

        pump = Pump()
        profiler.begin_run(0.0)
        profiler.sample(2e-6, pump)
        profiler.sample(5e-6, pump)
        stats = profiler.stats()
        samples, sim_s, host_s = stats[("link", "node0.link.pump")]
        assert samples == 2
        assert sim_s == pytest.approx(5e-6)
        assert host_s >= 0.0
        assert profiler.samples_taken == 2

    def test_unnamed_target_falls_back_to_type_name(self):
        profiler = SimProfiler(stride=1)
        profiler.begin_run(0.0)

        class DramBank:
            pass

        profiler.sample(1e-6, DramBank())
        assert ("dram", "DramBank") in profiler.stats()

    def test_bound_method_uses_owner_name(self):
        profiler = SimProfiler(stride=1)
        profiler.begin_run(0.0)

        class Llc:
            name = "node0.llc0"

            def handle(self):
                pass

        profiler.sample(1e-6, Llc().handle)
        assert ("llc", "node0.llc0") in profiler.stats()

    def test_kernel_sampling_through_a_real_run(self):
        """The dispatch loop feeds the profiler: a testbed workload at
        stride 1 produces samples across multiple datapath phases and
        attributes the full sim-time span."""
        profiler = enable_profiling(stride=1)
        try:
            testbed = Testbed()
            attachment = testbed.attach(
                "node0", 2 * MIB, memory_host="node1"
            )
            window = testbed.remote_window_range(attachment)
            testbed.node0.run_store(window.start, bytes(1024))
            testbed.node0.run_load(window.start)
        finally:
            assert disable_profiling() is profiler
        assert profiler.samples_taken > 10
        phases = {phase for phase, _name in profiler.stats()}
        assert {"llc", "dram"} <= phases
        total_sim = sum(v[1] for v in profiler.stats().values())
        assert total_sim > 0.0

    def test_stride_thins_sampling(self):
        def run(stride):
            profiler = enable_profiling(stride=stride)
            try:
                testbed = Testbed()
                attachment = testbed.attach(
                    "node0", 2 * MIB, memory_host="node1"
                )
                window = testbed.remote_window_range(attachment)
                testbed.node0.run_store(window.start, bytes(4096))
            finally:
                disable_profiling()
            return profiler.samples_taken

        dense, sparse = run(1), run(64)
        assert dense > sparse
        assert sparse >= 1


class TestReporting:
    def _profiled(self):
        profiler = SimProfiler(stride=1)
        profiler.begin_run(0.0)

        class Named:
            def __init__(self, name):
                self.name = name

        profiler.sample(1e-6, Named("node0.link.pump"))
        profiler.sample(3e-6, Named("node1.dram.bank0"))
        profiler.sample(4e-6, Named("node1.dram.bank0"))
        return profiler

    def test_folded_stacks_format(self):
        folded = self._profiled().folded()
        lines = folded.strip().splitlines()
        assert all(FOLDED_LINE.match(line) for line in lines)
        assert "sim;dram;node1.dram.bank0 2" in lines
        assert "sim;link;node0.link.pump 1" in lines

    def test_folded_escapes_frame_separators(self):
        profiler = SimProfiler(stride=1)
        profiler.begin_run(0.0)

        class Odd:
            name = "dram bank;weird"

        profiler.sample(1e-6, Odd())
        assert "sim;dram;dram_bank_weird 1" in profiler.folded()

    def test_top_table_ranks_by_sim_time(self):
        text = self._profiled().top_table(5).render()
        # dram got 3 µs of the 4 µs span, link 1 µs: dram ranks first.
        dram_pos = text.index("dram:node1.dram.bank0")
        link_pos = text.index("link:node0.link.pump")
        assert dram_pos < link_pos
        assert "samples" in text

    def test_describe_aggregates_by_phase(self):
        described = self._profiled().describe()
        assert described["samples"] == 3
        assert described["phases"]["dram"]["samples"] == 2
        assert described["phases"]["dram"]["sim_s"] == pytest.approx(3e-6)

    def test_write_folded(self, tmp_path):
        path = tmp_path / "profile.folded"
        self._profiled().write_folded(str(path))
        for line in path.read_text().strip().splitlines():
            assert FOLDED_LINE.match(line)

    def test_empty_profiler_reports_cleanly(self):
        profiler = SimProfiler()
        assert profiler.folded() == ""
        text = profiler.top_table().render()
        assert "samples" in text  # renders, zero rows ranked
        assert profiler.describe()["phases"] == {}


class TestModuleSwitch:
    def test_disabled_by_default(self):
        assert active_profiler() is None

    def test_context_manager_scopes_profiling(self):
        with profiling(stride=7) as profiler:
            assert active_profiler() is profiler
            assert profiler.stride == 7
        assert active_profiler() is None
